"""RW — readers and writers (Table 1, rows 13-16).

``n`` symmetric processes share a database.  Any number may read
simultaneously; a writer needs exclusive access, modeled by the writer's
start transition consuming the ``free`` token of *every* process at once.
All end transitions additionally cycle a shared controller token, so that
every transition of the net participates in one global conflict structure.

This is the benchmark the paper highlights as the worst case for classical
partial-order reduction: every transition (transitively) conflicts with
every other through the shared ``free``/controller places, so stubborn-set
closures always contain all enabled transitions and the reduced state
space *equals* the full one (§4: "the reduced state space which equals the
complete state space").  Generalized analysis, in contrast, finds every
maximal conflict set multiple-enabled in both of its states and fires them
simultaneously: 2 GPN states regardless of ``n``.  The net is
deadlock-free.
"""

from __future__ import annotations

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["rw"]


def rw(n: int) -> PetriNet:
    """Build the readers-writers net for ``n`` processes (``n >= 2``)."""
    if n < 2:
        raise ValueError("need at least 2 processes")
    builder = NetBuilder(f"rw_{n}")
    controller = builder.place("controller", marked=True)
    frees = [builder.place(f"free{i}", marked=True) for i in range(n)]
    for i in range(n):
        reading = builder.place(f"reading{i}")
        writing = builder.place(f"writing{i}")
        builder.transition(
            f"startread{i}", inputs=[frees[i]], outputs=[reading]
        )
        # A writer must atomically acquire every process's free token.
        builder.transition(
            f"startwrite{i}", inputs=list(frees), outputs=[writing]
        )
        # End transitions cycle the controller token (self-loop): the
        # "conditional behavior" that welds the whole net into one
        # conflict component and defeats stubborn-set reduction.
        builder.transition(
            f"endread{i}",
            inputs=[reading, controller],
            outputs=[frees[i], controller],
        )
        builder.transition(
            f"endwrite{i}",
            inputs=[writing, controller],
            outputs=list(frees) + [controller],
        )
    return builder.build()
