"""ASAT — the asynchronous arbiter tree (Table 1, rows 6-8).

``n`` users (``n`` a power of two) compete for one shared resource through
a balanced binary tree of asynchronous two-input arbiter cells.  Every
edge of the tree carries a 4-phase request/grant/release handshake, and
each cell serializes its two children: when both request concurrently the
cell makes a free choice — the conflict structure the generalized analysis
exploits.

Structure per user ``i``::

    idle --request--> wait --(grant)--> use --release--> idle

Structure per cell ``v`` (children interfaces ``l``/``r``, own upstream
interface)::

    fwdL: req_l  + free_v -> wl_v + req_v     (forward request upstream)
    gntL: gnt_v  + wl_v   -> hl_v + gnt_l     (pass grant down)
    relL: rel_l  + hl_v   -> free_v + rel_v   (propagate release)
    (and symmetrically for the right child)

The root's upstream interface talks to a trivial resource manager holding
the single resource token.  The net is deadlock-free (the resource always
returns), strongly concurrent (every user and every cell acts
independently), and its full state space explodes roughly two orders of
magnitude per doubling of users — the Table 1 shape.
"""

from __future__ import annotations

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["asat"]


def asat(n: int) -> PetriNet:
    """Build the arbiter tree for ``n`` users (a power of two, ``>= 2``)."""
    if n < 2 or n & (n - 1) != 0:
        raise ValueError("number of users must be a power of two >= 2")
    builder = NetBuilder(f"asat_{n}")

    def make_interface(tag: str) -> tuple[str, str, str]:
        """Request/grant/release places of one handshake channel."""
        return (
            builder.place(f"req_{tag}"),
            builder.place(f"gnt_{tag}"),
            builder.place(f"rel_{tag}"),
        )

    def make_user(i: int, upstream: tuple[str, str, str]) -> None:
        req, gnt, rel = upstream
        idle = builder.place(f"idle{i}", marked=True)
        wait = builder.place(f"wait{i}")
        use = builder.place(f"use{i}")
        builder.transition(f"request{i}", inputs=[idle], outputs=[wait, req])
        builder.transition(f"acquire{i}", inputs=[wait, gnt], outputs=[use])
        builder.transition(f"release{i}", inputs=[use], outputs=[idle, rel])

    def make_cell(
        tag: str,
        left: tuple[str, str, str],
        right: tuple[str, str, str],
        upstream: tuple[str, str, str],
    ) -> None:
        free = builder.place(f"free_{tag}", marked=True)
        for side, (c_req, c_gnt, c_rel) in (("l", left), ("r", right)):
            waiting = builder.place(f"w{side}_{tag}")
            holding = builder.place(f"h{side}_{tag}")
            u_req, u_gnt, u_rel = upstream
            builder.transition(
                f"fwd{side}_{tag}",
                inputs=[c_req, free],
                outputs=[waiting, u_req],
            )
            builder.transition(
                f"gnt{side}_{tag}",
                inputs=[u_gnt, waiting],
                outputs=[holding, c_gnt],
            )
            builder.transition(
                f"rel{side}_{tag}",
                inputs=[c_rel, holding],
                outputs=[free, u_rel],
            )

    # Build the tree bottom-up.  Level 0 holds the user interfaces; each
    # pass pairs adjacent interfaces under a new cell until one remains.
    interfaces = []
    for i in range(n):
        upstream = make_interface(f"u{i}")
        make_user(i, upstream)
        interfaces.append(upstream)
    level = 0
    while len(interfaces) > 1:
        next_interfaces = []
        for k in range(0, len(interfaces), 2):
            tag = f"c{level}_{k // 2}"
            upstream = make_interface(tag)
            make_cell(tag, interfaces[k], interfaces[k + 1], upstream)
            next_interfaces.append(upstream)
        interfaces = next_interfaces
        level += 1

    root_req, root_gnt, root_rel = interfaces[0]
    res_free = builder.place("res_free", marked=True)
    builder.transition(
        "res_grant", inputs=[root_req, res_free], outputs=[root_gnt]
    )
    builder.transition("res_release", inputs=[root_rel], outputs=[res_free])
    return builder.build()
