"""Random safe-net generators for property-based testing.

Two families:

* :func:`random_net` — unconstrained random structure; may be unsafe, so
  callers must be prepared for :class:`~repro.net.exceptions.UnsafeNetError`
  during exploration (the property tests filter those out).
* :func:`random_state_machine_product` — a composition of cyclic state
  machines synchronized through shared resource places.  Safe *by
  construction* (each component is a strongly-connected state machine with
  one token; resources are acquired and returned), rich in both
  concurrency and conflicts, and frequently deadlocking through circular
  waits — the structure the paper's benchmarks exhibit.

Both accept a :class:`random.Random` instance so hypothesis / tests can
control the seed.
"""

from __future__ import annotations

import random

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["random_net", "random_state_machine_product"]


def random_net(
    rng: random.Random,
    *,
    num_places: int = 6,
    num_transitions: int = 5,
    marking_probability: float = 0.5,
    max_inputs: int = 3,
    max_outputs: int = 2,
) -> PetriNet:
    """A fully random net; not guaranteed safe or deadlock-free."""
    builder = NetBuilder("random")
    places = [f"p{i}" for i in range(num_places)]
    for place in places:
        builder.place(place, marked=rng.random() < marking_probability)
    for j in range(num_transitions):
        inputs = rng.sample(places, rng.randint(1, max_inputs))
        pool = [p for p in places if p not in inputs]
        want = rng.randint(0, max_outputs)
        outputs = rng.sample(pool, min(want, len(pool)))
        builder.transition(f"t{j}", inputs=inputs, outputs=outputs)
    return builder.build()


def random_state_machine_product(
    rng: random.Random,
    *,
    num_components: int = 3,
    states_per_component: int = 3,
    num_resources: int = 2,
    acquire_probability: float = 0.6,
) -> PetriNet:
    """Synchronized state machines: safe by construction.

    Each component is a token ring ``s0 -> s1 -> ... -> s0``.  Each step
    may acquire a shared resource (consumed from its place) while possibly
    *still holding* previously acquired ones — the hold-and-wait pattern
    that produces circular-wait deadlocks between components.  Every
    resource acquired during a lap is released again before the lap ends
    (the last step releases any leftovers), which keeps the net 1-safe.
    """
    if states_per_component < 2:
        raise ValueError("components need at least 2 states")
    builder = NetBuilder("sm_product")
    resources = [
        builder.place(f"res{r}", marked=True) for r in range(num_resources)
    ]
    for c in range(num_components):
        states = [
            builder.place(f"c{c}_s{k}", marked=k == 0)
            for k in range(states_per_component)
        ]
        held: list[str] = []
        for k in range(states_per_component):
            inputs = [states[k]]
            outputs = [states[(k + 1) % states_per_component]]
            last_step = k == states_per_component - 1
            if last_step:
                # Close the lap: everything still held goes back.
                outputs.extend(held)
                held = []
            else:
                if held and rng.random() < 0.5:
                    outputs.append(held.pop(rng.randrange(len(held))))
                available = [r for r in resources if r not in held]
                if available and rng.random() < acquire_probability:
                    resource = rng.choice(available)
                    inputs.append(resource)
                    if resource in outputs:
                        # Released and re-acquired in one step: keep as a
                        # self-loop instead of a double arc.
                        outputs.remove(resource)
                        outputs.append(resource)
                    held.append(resource)
            builder.transition(f"c{c}_t{k}", inputs=inputs, outputs=outputs)
    return builder.build()
