"""OVER — the overtake protocol (Table 1, rows 9-12).

``n`` cars drive in a ring; car ``i`` may overtake the car ahead of it
(car ``i+1 mod n``) after a message handshake: it signals its intent, the
car ahead — if it is itself cruising — yields and acknowledges, the
overtaker pulls out, passes, signals completion, and a final acknowledge
settles both cars back to cruising.

Per car ``i`` (indices mod ``n``)::

    ask_i     : cruise_i              -> asking_i + req_i
    grant_i   : req_{i-1} + cruise_i  -> yielding_i + ack_{i-1}
    pullout_i : asking_i + ack_i      -> out_i
    pass_i    : out_i                 -> passing_i
    done_i    : passing_i             -> waitfin_i + fin_i
    resume_i  : yielding_i + fin_{i-1} -> cruise_i + finack_{i-1}
    settle_i  : waitfin_i + finack_i  -> cruise_i

The choice at ``cruise_i`` — overtake yourself or yield to the car behind
— is a conflict place; with all cars cruising, ``n`` such conflicts are
marked concurrently (the Figure 2 pattern embedded in a protocol).  The
protocol deadlocks: when every car signals intent simultaneously nobody is
left cruising to yield, and all handshakes stall in a circular wait.
"""

from __future__ import annotations

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["over"]


def over(n: int) -> PetriNet:
    """Build the overtake-protocol net for ``n`` cars (``n >= 2``)."""
    if n < 2:
        raise ValueError("need at least 2 cars")
    builder = NetBuilder(f"over_{n}")
    for i in range(n):
        builder.place(f"cruise{i}", marked=True)
        for name in ("asking", "out", "passing", "waitfin", "yielding"):
            builder.place(f"{name}{i}")
        for channel in ("req", "ack", "fin", "finack"):
            builder.place(f"{channel}{i}")
    for i in range(n):
        behind = (i - 1) % n
        builder.transition(
            f"ask{i}",
            inputs=[f"cruise{i}"],
            outputs=[f"asking{i}", f"req{i}"],
        )
        builder.transition(
            f"grant{i}",
            inputs=[f"req{behind}", f"cruise{i}"],
            outputs=[f"yielding{i}", f"ack{behind}"],
        )
        builder.transition(
            f"pullout{i}",
            inputs=[f"asking{i}", f"ack{i}"],
            outputs=[f"out{i}"],
        )
        builder.transition(
            f"pass{i}",
            inputs=[f"out{i}"],
            outputs=[f"passing{i}"],
        )
        builder.transition(
            f"done{i}",
            inputs=[f"passing{i}"],
            outputs=[f"waitfin{i}", f"fin{i}"],
        )
        builder.transition(
            f"resume{i}",
            inputs=[f"yielding{i}", f"fin{behind}"],
            outputs=[f"cruise{i}", f"finack{behind}"],
        )
        builder.transition(
            f"settle{i}",
            inputs=[f"waitfin{i}", f"finack{i}"],
            outputs=[f"cruise{i}"],
        )
    return builder.build()
