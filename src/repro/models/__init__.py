"""Benchmark model families and illustrative nets.

The four parameterized families of the paper's Table 1:

* :func:`nsdp` — non-serialized dining philosophers (deadlocks);
* :func:`asat` — asynchronous arbiter tree (deadlock-free);
* :func:`over` — overtake protocol (deadlocks);
* :func:`rw` — readers and writers (deadlock-free; defeats classical PO).

Plus the nets of Figures 1, 2, 3, 5 and 7, a producer/consumer system for
the examples/ablations, and random-net generators for property testing.
"""

from repro.models.arbiter import asat
from repro.models.figures import (
    choice_net,
    concurrent_net,
    conflict_pairs_net,
    figure3_net,
    figure5_net,
    figure7_net,
)
from repro.models.modem import modem
from repro.models.overtake import over
from repro.models.philosophers import nsdp
from repro.models.producer_consumer import bounded_buffer
from repro.models.random_nets import random_net, random_state_machine_product
from repro.models.readers_writers import rw

__all__ = [
    "nsdp",
    "asat",
    "over",
    "rw",
    "bounded_buffer",
    "modem",
    "choice_net",
    "concurrent_net",
    "conflict_pairs_net",
    "figure3_net",
    "figure5_net",
    "figure7_net",
    "random_net",
    "random_state_machine_product",
]
