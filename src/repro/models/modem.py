"""An embedded-system model: a QAM-modem-like receive pipeline.

The paper's motivation ([16], §5) is the verification of embedded-system
specifications — it reports applying the method to a QAM modem.  That
design is not published, so this module provides a representative
reconstruction: a multi-lane receive datapath (source → FIR filter →
equalizer → decoder per lane, connected by capacity-1 handshake channels)
supervised by a controller that can *retrain* the equalizers — a mode
switch that competes with normal data processing for the equalizer
(a conflict place) while the lanes run concurrently (interleaving
explosion).  Exactly the concurrency-plus-conflict mix generalized
partial-order analysis targets.

Two variants:

* ``modem(lanes, bug=True)`` — the retrain completion waits for the
  FIR→EQ channel to drain ("quiesce the pipeline first"), but with the
  equalizer paused that channel can never drain: a realistic
  mode-switch/flow-control deadlock.
* ``modem(lanes, bug=False)`` — retraining completes on its own and the
  pipeline resumes: live.
"""

from __future__ import annotations

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["modem"]


def _channel(builder: NetBuilder, name: str) -> tuple[str, str]:
    """A capacity-1 handshake channel: (full, empty) places."""
    full = builder.place(f"{name}_full")
    empty = builder.place(f"{name}_empty", marked=True)
    return full, empty


def modem(lanes: int = 2, *, bug: bool = False) -> PetriNet:
    """Build the modem net with ``lanes`` parallel I/Q lanes (``>= 1``)."""
    if lanes < 1:
        raise ValueError("need at least one lane")
    suffix = "_bug" if bug else ""
    builder = NetBuilder(f"modem_{lanes}{suffix}")

    # Controller: may trigger an equalizer retrain at any time.
    ctl_idle = builder.place("ctl_idle", marked=True)
    ctl_wait = builder.place("ctl_wait")
    retrain_req = builder.place("retrain_req")
    retrain_done = builder.place("retrain_done")
    builder.transition(
        "start_retrain", inputs=[ctl_idle], outputs=[ctl_wait, retrain_req]
    )
    builder.transition(
        "ack_retrain", inputs=[ctl_wait, retrain_done], outputs=[ctl_idle]
    )

    # The lanes share one adaptation engine: a retrain pauses *every*
    # equalizer (they must adapt against the same training sequence).
    eq_idles: list[str] = []
    first_ch2_empty: str | None = None
    for lane in range(lanes):
        tag = f"l{lane}"
        # source
        src_idle = builder.place(f"src_idle_{tag}", marked=True)
        src_loaded = builder.place(f"src_loaded_{tag}")
        ch1_full, ch1_empty = _channel(builder, f"ch1_{tag}")
        builder.transition(
            f"sample_{tag}", inputs=[src_idle], outputs=[src_loaded]
        )
        builder.transition(
            f"emit_{tag}",
            inputs=[src_loaded, ch1_empty],
            outputs=[src_idle, ch1_full],
        )
        # FIR filter
        fir_idle = builder.place(f"fir_idle_{tag}", marked=True)
        fir_busy = builder.place(f"fir_busy_{tag}")
        ch2_full, ch2_empty = _channel(builder, f"ch2_{tag}")
        builder.transition(
            f"fir_take_{tag}",
            inputs=[fir_idle, ch1_full],
            outputs=[fir_busy, ch1_empty],
        )
        builder.transition(
            f"fir_put_{tag}",
            inputs=[fir_busy, ch2_empty],
            outputs=[fir_idle, ch2_full],
        )
        # equalizer (the conflict site: process data vs accept retrain)
        eq_idle = builder.place(f"eq_idle_{tag}", marked=True)
        eq_busy = builder.place(f"eq_busy_{tag}")
        ch3_full, ch3_empty = _channel(builder, f"ch3_{tag}")
        builder.transition(
            f"eq_take_{tag}",
            inputs=[eq_idle, ch2_full],
            outputs=[eq_busy, ch2_empty],
        )
        builder.transition(
            f"eq_put_{tag}",
            inputs=[eq_busy, ch3_empty],
            outputs=[eq_idle, ch3_full],
        )
        eq_idles.append(eq_idle)
        if lane == 0:
            first_ch2_empty = ch2_empty
        # decoder (sink)
        dec_idle = builder.place(f"dec_idle_{tag}", marked=True)
        dec_busy = builder.place(f"dec_busy_{tag}")
        builder.transition(
            f"dec_take_{tag}",
            inputs=[dec_idle, ch3_full],
            outputs=[dec_busy, ch3_empty],
        )
        builder.transition(
            f"dec_done_{tag}", inputs=[dec_busy], outputs=[dec_idle]
        )

    # Shared retrain engine: grabs every equalizer at once (conflicting
    # with each lane's eq_take on the eq_idle places).
    training = builder.place("eq_training")
    builder.transition(
        "eq_accept_retrain",
        inputs=eq_idles + [retrain_req],
        outputs=[training],
    )
    assert first_ch2_empty is not None
    if bug:
        # "Finish only once lane 0's input channel has drained" — but the
        # FIR happily refills it while the equalizers are paused, so once
        # every channel upstream backs up the whole modem wedges.
        builder.transition(
            "eq_finish_retrain",
            inputs=[training, first_ch2_empty],
            outputs=eq_idles + [retrain_done, first_ch2_empty],
        )
    else:
        builder.transition(
            "eq_finish_retrain",
            inputs=[training],
            outputs=eq_idles + [retrain_done],
        )
    return builder.build()
