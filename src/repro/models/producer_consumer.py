"""Producer/consumer over a bounded buffer — an extra workload.

Not part of Table 1; used by the examples and the ablation benchmarks as
a system with heavy concurrency but *few* conflicts, the regime where
classical partial-order reduction already performs well and generalized
analysis adds little — a useful contrast to RW (all conflict, no PO
reduction).

The buffer of capacity ``k`` is modeled safely as ``k`` cells, each either
``empty`` or ``full``; producers fill any empty cell, consumers drain any
full cell.  The choice of cell makes produce/consume transitions conflict
within each group.
"""

from __future__ import annotations

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["bounded_buffer"]


def bounded_buffer(
    producers: int = 2, consumers: int = 2, capacity: int = 2
) -> PetriNet:
    """Build the producer/consumer net.

    Each producer cycles ``working -> ready -> working`` (produce an item,
    then deposit it into some empty cell); each consumer cycles
    ``idle -> busy -> idle`` (fetch from some full cell, then process).
    The net is deadlock-free for any parameters.
    """
    if producers < 1 or consumers < 1 or capacity < 1:
        raise ValueError("producers, consumers and capacity must be >= 1")
    builder = NetBuilder(f"pc_{producers}_{consumers}_{capacity}")
    empties = [
        builder.place(f"empty{c}", marked=True) for c in range(capacity)
    ]
    fulls = [builder.place(f"full{c}") for c in range(capacity)]
    for i in range(producers):
        working = builder.place(f"prod_working{i}", marked=True)
        ready = builder.place(f"prod_ready{i}")
        builder.transition(f"produce{i}", inputs=[working], outputs=[ready])
        for c in range(capacity):
            builder.transition(
                f"deposit{i}_cell{c}",
                inputs=[ready, empties[c]],
                outputs=[working, fulls[c]],
            )
    for j in range(consumers):
        idle = builder.place(f"cons_idle{j}", marked=True)
        busy = builder.place(f"cons_busy{j}")
        for c in range(capacity):
            builder.transition(
                f"fetch{j}_cell{c}",
                inputs=[idle, fulls[c]],
                outputs=[busy, empties[c]],
            )
        builder.transition(f"process{j}", inputs=[busy], outputs=[idle])
    return builder.build()
