"""NSDP — the non-serialized dining philosophers (Table 1, rows 1-5).

``n`` philosophers sit around a table with ``n`` forks between them;
philosopher ``i`` shares fork ``i`` with philosopher ``i-1`` and fork
``i+1 (mod n)`` with philosopher ``i+1``.  *Non-serialized* means fork
acquisition is not protected by a global serializer: philosophers grab one
fork at a time, so the classic circular-wait deadlock (everybody holding
one fork) is reachable.

Two structural knobs reproduce the published growth shapes:

* ``order`` — ``"either"`` (default): a philosopher may pick up either
  fork first and put them down in either order (six local states; the full
  state space grows by ≈ φ³ ≈ 4.24 per philosopher, matching Table 1's
  ×17.9 per *pair* of philosophers); ``"left-first"``: the textbook
  three-state cycle (smaller growth, kept for tests and ablations).

Every variant deadlocks: when all philosophers simultaneously hold their
first fork, nobody can proceed.
"""

from __future__ import annotations

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["nsdp"]


def nsdp(n: int, *, order: str = "either") -> PetriNet:
    """Build the NSDP net for ``n`` philosophers (``n >= 2``)."""
    if n < 2:
        raise ValueError("need at least 2 philosophers")
    if order == "either":
        return _nsdp_either(n)
    if order == "left-first":
        return _nsdp_left_first(n)
    raise ValueError(f"unknown order {order!r}; use 'either' or 'left-first'")


def _nsdp_either(n: int) -> PetriNet:
    """Either-order pickup and putdown — the Table 1 configuration.

    Philosopher local cycle (fork ``L = fork i``, ``R = fork i+1``)::

        think --takeL--> hasL --takeR--> eat
        think --takeR--> hasR --takeL2--> eat
        eat --dropL--> relR --dropR2--> think     (released left first)
        eat --dropR--> relL --dropL2--> think     (released right first)
    """
    builder = NetBuilder(f"nsdp_{n}")
    for i in range(n):
        builder.place(f"fork{i}", marked=True)
    for i in range(n):
        left = f"fork{i}"
        right = f"fork{(i + 1) % n}"
        think = builder.place(f"think{i}", marked=True)
        has_left = builder.place(f"hasL{i}")
        has_right = builder.place(f"hasR{i}")
        eat = builder.place(f"eat{i}")
        rel_left = builder.place(f"relL{i}")  # still holding left fork
        rel_right = builder.place(f"relR{i}")  # still holding right fork
        builder.transition(f"takeL{i}", inputs=[think, left], outputs=[has_left])
        builder.transition(
            f"takeR{i}", inputs=[has_left, right], outputs=[eat]
        )
        builder.transition(f"takeR'{i}", inputs=[think, right], outputs=[has_right])
        builder.transition(
            f"takeL'{i}", inputs=[has_right, left], outputs=[eat]
        )
        builder.transition(
            f"dropL{i}", inputs=[eat], outputs=[rel_right, left]
        )
        builder.transition(
            f"dropR{i}", inputs=[rel_right], outputs=[think, right]
        )
        builder.transition(
            f"dropR'{i}", inputs=[eat], outputs=[rel_left, right]
        )
        builder.transition(
            f"dropL'{i}", inputs=[rel_left], outputs=[think, left]
        )
    return builder.build()


def _nsdp_left_first(n: int) -> PetriNet:
    """Textbook three-state cycle: take left, take right, release both."""
    builder = NetBuilder(f"nsdp_leftfirst_{n}")
    for i in range(n):
        builder.place(f"fork{i}", marked=True)
    for i in range(n):
        left = f"fork{i}"
        right = f"fork{(i + 1) % n}"
        think = builder.place(f"think{i}", marked=True)
        waiting = builder.place(f"wait{i}")
        eat = builder.place(f"eat{i}")
        builder.transition(f"takeL{i}", inputs=[think, left], outputs=[waiting])
        builder.transition(f"takeR{i}", inputs=[waiting, right], outputs=[eat])
        builder.transition(
            f"release{i}", inputs=[eat], outputs=[think, left, right]
        )
    return builder.build()
