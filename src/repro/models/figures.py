"""The illustrative nets from the paper's figures.

* :func:`concurrent_net` — Figure 1: ``n`` concurrently enabled transitions
  with no interaction; the full reachability graph is the Boolean lattice
  (``2^n`` states, ``n!`` maximal interleavings) while partial-order
  reduction explores one path (``n + 1`` states).
* :func:`conflict_pairs_net` — Figure 2: ``n`` concurrently marked conflict
  places, each the shared input of a pair ``(A_i, B_i)``; partial-order
  reduction still needs ``2^(n+1) - 1`` states, GPO needs 2.
* :func:`figure3_net` — the 4-transition GPN walkthrough of Figure 3
  (conflict pair A/B; C joins two A-outputs, D joins an A-output with the
  B-output so it can never fire).
* :func:`figure5_net` — the single-firing-semantics example of Figure 5.
* :func:`figure7_net` — the multiple-firing example of Figure 7 with two
  MCSs ``{A,B}`` and ``{C,D}`` whose second firing induces the *extended
  conflict* ``r2 = {{A,C},{B,D}}``.

The exact arc structure of Figures 5 and 7 is reconstructed to satisfy every
statement the paper makes about them (memberships of ``m_enabled``,
``s_enabled``, the mappings and the ``r`` updates); the corresponding unit
tests assert those statements literally.
"""

from __future__ import annotations

from repro.net.petrinet import NetBuilder, PetriNet

__all__ = [
    "concurrent_net",
    "conflict_pairs_net",
    "figure3_net",
    "figure5_net",
    "figure7_net",
    "choice_net",
]


def concurrent_net(n: int = 3) -> PetriNet:
    """Figure 1: ``n`` independent transitions, all enabled initially.

    Transition ``t{i}`` moves the token from ``in{i}`` to ``out{i}``.  The
    full reachability graph has ``2^n`` states; one interleaving suffices.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    builder = NetBuilder(f"figure1_concurrent_{n}")
    for i in range(n):
        builder.place(f"in{i}", marked=True)
        builder.place(f"out{i}")
        builder.transition(f"t{i}", inputs=[f"in{i}"], outputs=[f"out{i}"])
    return builder.build()


def conflict_pairs_net(n: int = 3) -> PetriNet:
    """Figure 2: ``n`` concurrently marked conflict places.

    Place ``c{i}`` is marked and feeds the conflicting pair ``A{i}`` /
    ``B{i}`` with private output places.  Classical partial-order analysis
    must branch on every pair: ``2^(n+1) - 1`` states in the anticipated
    reachability graph of Figure 2(b).  GPO fires all pairs simultaneously:
    2 states.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    builder = NetBuilder(f"figure2_conflict_pairs_{n}")
    for i in range(n):
        builder.place(f"c{i}", marked=True)
        builder.place(f"a_out{i}")
        builder.place(f"b_out{i}")
        builder.transition(f"A{i}", inputs=[f"c{i}"], outputs=[f"a_out{i}"])
        builder.transition(f"B{i}", inputs=[f"c{i}"], outputs=[f"b_out{i}"])
    return builder.build()


def figure3_net() -> PetriNet:
    """Figure 3: the colored-token walkthrough net.

    ``p1`` is marked and feeds the conflict pair A/B.  A outputs to ``p2``
    and ``p3``; B outputs to ``p4``.  C consumes ``p2`` and ``p3`` (both on
    the A path, so C can fire); D consumes ``p3`` and ``p4`` (mixed A/B
    origins with conflicting colors, so D can never fire).
    """
    builder = NetBuilder("figure3")
    builder.place("p1", marked=True)
    for name in ("p2", "p3", "p4", "p5", "p6"):
        builder.place(name)
    builder.transition("A", inputs=["p1"], outputs=["p2", "p3"])
    builder.transition("B", inputs=["p1"], outputs=["p4"])
    builder.transition("C", inputs=["p2", "p3"], outputs=["p5"])
    builder.transition("D", inputs=["p3", "p4"], outputs=["p6"])
    return builder.build()


def figure5_net() -> PetriNet:
    """Figure 5: single-firing example.

    Reconstruction satisfying every statement the paper makes about the
    depicted state ``m(p0)={{A},{B}}``, ``m(p1)={{A}}``, ``m(p2)={{B}}``
    with ``r = {{A},{B}}``:

    * ``A : p0 p1 -> p3`` — ``s_enabled(A) = m(p0) ∩ m(p1) ∩ r = {{A}}``;
    * ``B : p1 p2 -> p4`` — ``s_enabled(B) = m(p1) ∩ m(p2) ∩ r = {}``
      (no common history: p1 carries the A color, p2 the B color);
    * ``mapping(⟨m,r⟩) = {{p0,p1},{p0,p2}}`` before firing A and
      ``mapping(⟨m',r⟩) = {{p3},{p0,p2}}`` after — both as printed, which
      forces A and B to conflict on ``p1`` (not ``p0``).

    The *state* of Figure 5 is constructed in the tests/examples via the
    GPN API; the net here only fixes the structure.
    """
    builder = NetBuilder("figure5")
    builder.place("p0", marked=True)
    builder.place("p1", marked=True)
    builder.place("p2", marked=True)
    builder.place("p3")
    builder.place("p4")
    builder.transition("A", inputs=["p0", "p1"], outputs=["p3"])
    builder.transition("B", inputs=["p1", "p2"], outputs=["p4"])
    return builder.build()


def figure7_net() -> PetriNet:
    """Figure 7: two sequential conflict pairs building extended conflicts.

    ``p0`` (marked) feeds the conflict pair A/B; ``p3`` (marked) feeds the
    conflict pair C/D.  A outputs to ``p1``, B to ``p2``; C consumes
    ``{p1, p3}`` and D consumes ``{p2, p3}``, both producing ``p5``.  After
    multiple-firing ``{A,B}`` and then ``{C,D}``, the valid sets collapse to
    ``{{A,C},{B,D}}`` — the extended conflict between A/D and B/C — and the
    state maps to the single classical marking ``{p5}``.
    """
    builder = NetBuilder("figure7")
    builder.place("p0", marked=True)
    builder.place("p3", marked=True)
    for name in ("p1", "p2", "p5"):
        builder.place(name)
    builder.transition("A", inputs=["p0"], outputs=["p1"])
    builder.transition("B", inputs=["p0"], outputs=["p2"])
    builder.transition("C", inputs=["p1", "p3"], outputs=["p5"])
    builder.transition("D", inputs=["p2", "p3"], outputs=["p5"])
    return builder.build()


def choice_net() -> PetriNet:
    """A minimal two-way choice used throughout the unit tests."""
    builder = NetBuilder("choice")
    builder.place("p0", marked=True)
    builder.place("p1")
    builder.place("p2")
    builder.transition("a", inputs=["p0"], outputs=["p1"])
    builder.transition("b", inputs=["p0"], outputs=["p2"])
    return builder.build()
