"""Uniform execution of the analyzers with resource budgets.

Historically this module owned the budget logic; that now lives in
:mod:`repro.engine.jobs` (so the worker pool can reuse it in child
processes), and ``runner`` is the stable harness-facing API:

* :func:`run_analyzer` — run one analyzer in-process under a budget,
  never raising on overruns (the paper's "> 24 hours" entries);
* :func:`run_analyzer_isolated` — same contract, but delegated to a
  :class:`repro.engine.pool.WorkerPool` worker process, adding **hard**
  wall-clock preemption and crash isolation on top of the cooperative
  budgets.

``Budget`` and ``ANALYZERS`` are re-exported for backward compatibility.
"""

from __future__ import annotations

from repro.analysis.stats import AnalysisResult
from repro.engine.jobs import ANALYZERS, Budget, VerificationJob, execute_job
from repro.net.petrinet import PetriNet

__all__ = ["ANALYZERS", "Budget", "run_analyzer", "run_analyzer_isolated"]


def run_analyzer(
    name: str, net: PetriNet, budget: Budget | None = None, *, reduce: str = "off"
) -> AnalysisResult:
    """Run one analyzer under a budget; never raises on budget overruns.

    On overrun the returned result has ``exhaustive=False``, ``states``
    equal to the progress actually made at abort, and an
    ``extras["aborted"]`` note.  Time budgets are enforced cooperatively
    inside every exploration loop; use :func:`run_analyzer_isolated` when
    hard preemption is required.  ``reduce`` (``"off"`` | ``"auto"`` |
    ``"aggressive"``) applies the :mod:`repro.reduce` structural pre-pass;
    the result then carries ``extras["reduce"]`` and any witness is
    mapped back to the original net.
    """
    return execute_job(
        VerificationJob(
            net=net,
            method=name,
            budget=budget if budget is not None else Budget(),
            reduce=reduce,
        )
    )


def run_analyzer_isolated(
    name: str, net: PetriNet, budget: Budget | None = None
) -> AnalysisResult:
    """Run one analyzer in its own worker process (hard preemption).

    A worker that outlives its ``max_seconds`` budget is terminated and
    reported as a non-exhaustive result; a worker crash yields an
    ``extras["error"]`` result instead of propagating.
    """
    from repro.engine.pool import WorkerPool

    job = VerificationJob(
        net=net, method=name, budget=budget if budget is not None else Budget()
    )
    if job.method not in ANALYZERS:
        raise ValueError(
            f"unknown analyzer {name!r}; expected one of {sorted(ANALYZERS)}"
        )
    return WorkerPool(max_workers=1).run_one(job).result
