"""Uniform execution of the four analyzers with resource budgets.

The Table 1 experiments run four very differently-scaling analyzers on
instances whose full state spaces range from a dozen states to millions.
:func:`run_analyzer` wraps each one with a state/time budget and converts
budget overruns into a non-exhaustive :class:`AnalysisResult` instead of
an exception, mirroring the paper's "> 24 hours" entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis import analyze as full_analyze
from repro.analysis.stats import (
    AnalysisResult,
    ExplorationLimitReached,
    TimeLimitReached,
    stopwatch,
)
from repro.gpo import analyze as gpo_analyze
from repro.net.petrinet import PetriNet
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze
from repro.unfolding import analyze as unfolding_analyze

__all__ = ["ANALYZERS", "Budget", "run_analyzer"]

#: Registered analyzers: name -> callable(net, **kwargs) -> AnalysisResult.
ANALYZERS: dict[str, Callable[..., AnalysisResult]] = {
    "full": full_analyze,
    "stubborn": stubborn_analyze,
    "symbolic": symbolic_analyze,
    "gpo": gpo_analyze,
    "unfolding": unfolding_analyze,
}


@dataclass(frozen=True)
class Budget:
    """Resource budget applied to one analyzer run.

    ``max_states`` limits explicit explorers (full/stubborn/gpo);
    ``max_seconds`` limits the symbolic fixpoint.  ``None`` disables the
    corresponding limit.
    """

    max_states: int | None = 200_000
    max_seconds: float | None = 120.0
    extra: dict[str, Any] = field(default_factory=dict)


def run_analyzer(
    name: str, net: PetriNet, budget: Budget | None = None
) -> AnalysisResult:
    """Run one analyzer under a budget; never raises on budget overruns.

    On overrun the returned result has ``exhaustive=False``, ``states``
    equal to the budget (explicit engines) or 0 (symbolic), and an
    ``extras["aborted"]`` note.
    """
    if budget is None:
        budget = Budget()
    try:
        fn = ANALYZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown analyzer {name!r}; expected one of {sorted(ANALYZERS)}"
        ) from None

    kwargs: dict[str, Any] = dict(budget.extra)
    if name == "symbolic":
        if budget.max_seconds is not None:
            kwargs.setdefault("max_seconds", budget.max_seconds)
    elif name == "unfolding":
        if budget.max_states is not None:
            kwargs.setdefault("max_events", budget.max_states)
    else:
        if budget.max_states is not None:
            kwargs.setdefault("max_states", budget.max_states)

    with stopwatch() as elapsed:
        try:
            result = fn(net, **kwargs)
            if not result.exhaustive:
                # Some analyzers absorb the budget internally (the full
                # explorer returns a bounded graph); normalize the marker.
                result.extras.setdefault(
                    "aborted", f"> {budget.max_states} states"
                )
            return result
        except ExplorationLimitReached as overrun:
            aborted: dict[str, Any] = {"aborted": f"> {overrun.limit} states"}
            states = overrun.limit
        except TimeLimitReached as overrun:
            aborted = {"aborted": f"> {overrun.seconds:.0f}s"}
            states = 0
    return AnalysisResult(
        analyzer=name,
        net_name=net.name,
        states=states,
        edges=0,
        deadlock=False,
        time_seconds=elapsed[0],
        exhaustive=False,
        extras=aborted,
    )
