"""Command-line interface: ``gpo`` (or ``python -m repro``).

Subcommands::

    gpo verify FILE [--method gpo|full|stubborn|symbolic] [--backend ...]
                [--property PROP]    # decide PROP with one analyzer
    gpo query FILE PROP       # decide a property: structural layer, then
                              # a compat-filtered portfolio race
    gpo safety FILE --bad "cs0 & cs1 & !lock" [--bad ...]
    gpo reach FILE --target "a & b" [--method full|stubborn] [--order bfs|dfs]
    gpo race FILE [--methods gpo,symbolic] [--jobs N] [--property PROP]
                [--shards N]  # N > 1 adds the sharded parallel explorer
    gpo table1 [--problems NSDP,RW] [--jobs N] [--portfolio] [--stats]
    gpo figures [--figure 1|2|3]
    gpo profile FAMILY SIZE [--analyzer gpo|full|...|timed]
                [--trace-out trace.json] [--metrics-out metrics.prom]
                              # traced+metered in-process run, span tree
    gpo check FILE [--shards N]
                              # structural diagnostics + safety check;
                              # --shards N > 1 runs the bounded walk on
                              # the sharded parallel explorer
    gpo lint FILE [--format human|json|sarif]
                              # full structural report (invariants, siphons,
                              # safety certificate, net class, reduction
                              # opportunities)
    gpo reduce FILE [--level count|reachability|deadlock] [--explain]
                [--diff] [--out PATH] [--trace-out PATH]
                              # structural reduction: emit the shrunk net
                              # and its replayable back-mapping trace
    gpo dot FILE [--rg]       # DOT export of the net (or its full RG)
    gpo bench-model NAME SIZE # run all analyzers on one benchmark instance
    gpo bench-kernel [--quick] [--out BENCH_kernel.json]
                [--shards 1,2,4] [--parallel-out BENCH_parallel.json]
                              # bitmask kernel vs frozenset reference
                              # path; --shards sweeps the sharded
                              # parallel explorer too
    gpo serve [--port 8080] [--jobs N] [--queue-capacity N]
                              # verification-as-a-service HTTP daemon
    gpo loadtest [--quick] [--requests N] [--out BENCH_serve.json]
                              # replay a mixed workload against gpo serve
    gpo bench-diff OLD NEW [--fail-threshold 25] [--min-seconds 0.5]
                              # compare two BENCH_*.json artifacts;
                              # exit 1 on regression, 2 on shape error
    gpo slo [--url URL | --file metrics.prom]
                              # per-phase serve SLO report (queue wait,
                              # reduce, search, serialize) from /metrics
    gpo debug flight [--url URL] [--limit N] [--json]
                              # dump the daemon's flight-recorder ring

``check`` decides 1-safeness with the structural certificate first (zero
states explored) and falls back to the bounded dynamic check; exit status
is 0 = safe, 1 = unsafe, 2 = unknown (bound exhausted).  ``table1`` and
``bench-model`` accept ``--lint`` to refuse structurally broken models
before spending any exploration budget.

``FILE`` is a net in the textual format of :mod:`repro.net.parser` or PNML
(detected by a leading ``<``).

``PROP`` is a :mod:`repro.props` property: ``deadlock``,
``reachable(<pred>)``, ``invariant(<pred>)``, ``safe``, or boolean
combinations (``!``/``&``/``|``) of these; predicates are boolean
combinations of place names plus bound comparisons (``p <= 1``).
Property-taking commands share one exit convention: 0 = holds,
1 = violated, 2 = undecided or refused.

``table1`` / ``bench-model`` / ``race`` run through the parallel execution
engine (:mod:`repro.engine`): ``--jobs N`` analyzer processes at a time,
hard-preempted at their deadline, with an on-disk result cache (disable
with ``--no-cache``; directory from ``--cache-dir`` or ``$GPO_CACHE_DIR``,
default ``.gpo-cache``) and a JSONL lifecycle-event log (``--events PATH``,
default ``<cache-dir>/events.jsonl`` when caching is on).

``profile`` runs one analyzer in-process under the observability layer
(:mod:`repro.obs`) and prints the span tree; ``check`` / ``table1`` /
``bench-kernel`` accept ``--trace PATH`` / ``--metrics PATH`` to export a
Chrome trace and Prometheus metrics from an otherwise normal run.

``check`` / ``race`` / ``query`` / ``table1`` / ``bench-model`` /
``reach`` accept ``--reduce[=auto|aggressive]``: the :mod:`repro.reduce`
structural pre-pass shrinks the net with property-preserving rules before
any exploration, and every verdict, witness and trace is mapped back to
the original net (``gpo reduce`` shows what the pre-pass would do).

``serve`` runs the long-lived verification daemon (:mod:`repro.serve`):
nets are submitted over HTTP (native format or PNML), queued with
priorities and per-tenant quotas, dispatched onto one warm worker pool
sharing one result cache, with per-job NDJSON event streams, live
``/metrics`` and ``/healthz``.  ``loadtest`` replays a deterministic
mixed workload against a running daemon and writes ``BENCH_serve.json``
(p50/p99 latency, throughput, cache-hit rate, differential verdict
checks); it exits 1 on any conclusive verdict mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import verify
from repro.analysis import explore
from repro.engine.cache import ResultCache
from repro.engine.events import EventSink, JsonlEventSink
from repro.engine.jobs import ANALYZERS
from repro.engine.portfolio import DEFAULT_PORTFOLIO, run_race
from repro.harness import benchdiff as benchdiff_defaults
from repro.harness.figures import (
    figure1_series,
    figure2_series,
    figure3_walkthrough,
    format_series,
)
from repro.harness.profile import PROFILE_ANALYZERS, observed, run_profile
from repro.obs import names
from repro.obs.tracer import span as obs_span
from repro.harness.runner import Budget
from repro.harness.table1 import (
    DEFAULT_SIZES,
    PROBLEMS,
    format_table1,
    run_table1,
)
from repro.net import (
    diagnose,
    check_safe,
    net_to_dot,
    parse_net,
    parse_pnml,
    reachability_to_dot,
)
from repro.static import certify_safety
from repro.static import lint as run_lint

__all__ = ["main"]


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if text.lstrip().startswith("<"):
        return parse_pnml(text)
    return parse_net(text)


def _verdict_exit(result) -> int:
    """Map an :class:`AnalysisResult` to the CLI exit convention.

    Property runs: 0 = holds, 1 = violated, 2 = undecided.  Legacy
    deadlock runs: 0 = no deadlock, 1 = deadlock.  Shared by ``verify``,
    ``race`` and ``query`` so the convention cannot drift.
    """
    if result.property_text is not None:
        holds = result.property_holds
        if holds is None:
            return 2
        return 0 if holds else 1
    return 1 if result.deadlock else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.props.ast import PropertyError

    try:
        if args.timed:
            from repro.net import parse_timed_net
            from repro.timed import analyze as timed_analyze

            with open(args.file, "r", encoding="utf-8") as handle:
                tpn = parse_timed_net(handle.read())
            kwargs = {}
            if args.property:
                kwargs["prop"] = args.property
            result = timed_analyze(tpn, **kwargs)
        else:
            net = _load(args.file)
            kwargs = {}
            if args.method == "gpo":
                kwargs["backend"] = args.backend
            if args.property:
                kwargs["prop"] = args.property
            result = verify(net, method=args.method, **kwargs)
    except PropertyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(result.describe())
    if result.witness is not None:
        print(str(result.witness))
    return _verdict_exit(result)


def _parse_constraint(text: str):
    """Parse ``"a & b & !c"`` into a :class:`MarkingConstraint`."""
    from repro.gpo import MarkingConstraint

    marked: list[str] = []
    unmarked: list[str] = []
    for token in text.split("&"):
        token = token.strip()
        if not token:
            raise ValueError(f"empty conjunct in constraint {text!r}")
        if token.startswith("!"):
            unmarked.append(token[1:].strip())
        else:
            marked.append(token)
    return MarkingConstraint(marked=tuple(marked), unmarked=tuple(unmarked))


def _cmd_safety(args: argparse.Namespace) -> int:
    from repro.gpo import check_safety

    net = _load(args.file)
    try:
        constraints = [_parse_constraint(text) for text in args.bad]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for constraint in constraints:
        for place in constraint.marked + constraint.unmarked:
            if place not in net.place_index:
                print(f"unknown place {place!r}", file=sys.stderr)
                return 2
    result = check_safety(net, constraints, screen=not args.no_screen)
    print(result.describe())
    return 1 if not result.safe else 0


def _reach_property(constraints):
    """The :mod:`repro.props` property a ``reach`` query asks."""
    from repro.props.ast import And, Marked, Not, Or, Reachable

    cubes = []
    for constraint in constraints:
        literals = [Marked(place) for place in constraint.marked]
        literals += [Not(Marked(place)) for place in constraint.unmarked]
        cubes.append(And(tuple(literals)) if len(literals) > 1 else literals[0])
    return Reachable(Or(tuple(cubes)) if len(cubes) > 1 else cubes[0])


def _cmd_reach(args: argparse.Namespace) -> int:
    from repro.analysis.reachability import MarkingSpace
    from repro.props.compat import unsupported_reason
    from repro.search.query import find_state
    from repro.stubborn.explorer import StubbornSpace

    net = _load(args.file)
    try:
        constraints = [_parse_constraint(text) for text in args.target]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for constraint in constraints:
        for place in constraint.marked + constraint.unmarked:
            if place not in net.place_index:
                print(f"unknown place {place!r}", file=sys.stderr)
                return 2

    # The preservation matrix is the single authority on which reduced
    # searches may take which questions: a reach target is a
    # ``reachable(...)`` property, which the stubborn-set reduction does
    # not preserve — refuse up front instead of searching inconclusively.
    reason = unsupported_reason(args.method, _reach_property(constraints))
    if reason is not None:
        print(
            f"reach --method {args.method} refused: {reason}",
            file=sys.stderr,
        )
        return 2

    reduction = None
    search_net = net
    if args.reduce != "off":
        # Reachability-preserving rules only, with every place the target
        # predicates mention protected, so the hit test still sees them.
        from repro.reduce import reduce_net

        protect = sorted(
            {
                place
                for constraint in constraints
                for place in constraint.marked + constraint.unmarked
            }
        )
        reduction = reduce_net(
            net, level="reachability", mode=args.reduce, protect=protect
        )
        if reduction.reduced:
            search_net = reduction.net
            (pre_p, pre_t, pre_a), (post_p, post_t, post_a) = reduction.sizes()
            print(
                f"[reduce] reachability-preserving pre-pass: "
                f"{pre_p}/{pre_t}/{pre_a} -> {post_p}/{post_t}/{post_a} "
                "places/transitions/arcs"
            )

    space = (
        StubbornSpace(search_net)
        if args.method == "stubborn"
        else MarkingSpace(search_net)
    )

    def hit(marking) -> bool:
        names = search_net.marking_names(marking)
        return any(c.holds_in(names) for c in constraints)

    result = find_state(
        space,
        hit,
        order=args.order,
        max_states=args.max_states,
        max_seconds=args.max_seconds,
    )
    stats = result.outcome.stats
    searched = (
        f"searched {result.outcome.graph.num_states} states "
        f"({args.method}, {args.order})"
    )
    if result.reached:
        print(f"REACHED  {searched}")
        trace = result.trace
        if (
            trace is not None
            and reduction is not None
            and reduction.reduced
        ):
            from repro.reduce import BackMapError, replay

            mapped = reduction.trace.map_sequence(trace)
            try:
                replay(net, mapped)
            except BackMapError as exc:
                print(f"[reduce] trace replay failed: {exc}", file=sys.stderr)
                return 2
            trace = mapped
        if trace is not None:
            print("trace: " + (" ; ".join(trace) or "<initial>"))
        return 0
    # A stubborn-set search only preserves deadlocks, not general
    # reachability: a miss is inconclusive even when exhaustive.
    if result.exhaustive and args.method == "full":
        print(f"not reachable  {searched}")
        return 1
    reason = (
        result.outcome.stop_reason or "reduced search misses are inconclusive"
    )
    print(f"INCONCLUSIVE ({reason})  {searched}")
    print(f"explored {stats.expanded} states at {stats.states_per_second:.0f}/s")
    return 2


def _engine_setup(
    args: argparse.Namespace,
) -> tuple[ResultCache | None, EventSink | None]:
    """Build the cache and event sink the engine-backed commands share."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.events:
        sink: EventSink | None = JsonlEventSink(args.events)
    elif cache is not None:
        sink = JsonlEventSink(cache.root / "events.jsonl")
    else:
        sink = None
    return cache, sink


def _cmd_table1(args: argparse.Namespace) -> int:
    problems = args.problems.split(",") if args.problems else None
    if problems:
        for problem in problems:
            if problem not in PROBLEMS:
                print(f"unknown problem {problem!r}; choose from "
                      f"{', '.join(PROBLEMS)}", file=sys.stderr)
                return 2
    budget = Budget(max_states=args.max_states, max_seconds=args.max_seconds)
    if args.lint:
        refusal = _lint_refusal(
            PROBLEMS[problem](size)
            for problem in (problems or PROBLEMS)
            for size in DEFAULT_SIZES[problem]
        )
        if refusal is not None:
            return refusal
    with observed(trace_out=args.trace, metrics_out=args.metrics):
        return _run_table1(args, problems, budget)


def _run_table1(
    args: argparse.Namespace, problems: list[str] | None, budget: Budget
) -> int:
    cache, sink = _engine_setup(args)
    try:
        if args.portfolio:
            for problem in problems or PROBLEMS:
                for size in DEFAULT_SIZES[problem]:
                    outcome = run_race(
                        PROBLEMS[problem](size),
                        budget=budget,
                        jobs=args.jobs,
                        cache=cache,
                        events=sink,
                        reduce=args.reduce,
                    )
                    print(outcome.describe())
            return 0
        rows = run_table1(
            problems=problems,
            budget=budget,
            jobs=args.jobs,
            cache=cache,
            events=sink,
            reduce=args.reduce,
        )
        print(
            format_table1(
                rows, with_paper=not args.no_paper, with_stats=args.stats
            )
        )
        if cache is not None and cache.hits:
            print(
                f"[cache] {cache.hits} hit(s), {cache.misses} miss(es) "
                f"in {cache.root}"
            )
        return 0
    finally:
        if sink is not None:
            sink.close()


def _cmd_race(args: argparse.Namespace) -> int:
    from repro.props.ast import PropertyError

    net = _load(args.file)
    methods = (
        args.methods.split(",") if args.methods else list(DEFAULT_PORTFOLIO)
    )
    for method in methods:
        if method not in ANALYZERS:
            print(
                f"unknown analyzer {method!r}; choose from "
                f"{', '.join(sorted(ANALYZERS))}",
                file=sys.stderr,
            )
            return 2
    budget = Budget(max_states=args.max_states, max_seconds=args.max_seconds)
    cache, sink = _engine_setup(args)
    try:
        outcome = run_race(
            net,
            methods=methods,
            budget=budget,
            jobs=args.jobs,
            cache=cache,
            events=sink,
            query=args.property or "deadlock",
            reduce=args.reduce,
            shards=args.shards,
        )
    except PropertyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        if sink is not None:
            sink.close()
    print(outcome.describe())
    if not outcome.conclusive:
        return 2
    return _verdict_exit(outcome.winner.result)


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.props.ast import PropertyError
    from repro.props.decide import decide

    net = _load(args.file)
    methods = args.methods.split(",") if args.methods else None
    for method in methods or ():
        if method not in ANALYZERS:
            print(
                f"unknown analyzer {method!r}; choose from "
                f"{', '.join(sorted(ANALYZERS))}",
                file=sys.stderr,
            )
            return 2
    budget = Budget(max_states=args.max_states, max_seconds=args.max_seconds)
    cache, sink = _engine_setup(args)
    try:
        try:
            decision = decide(
                net,
                args.property,
                methods=methods,
                budget=budget,
                jobs=args.jobs,
                cache=cache,
                events=sink,
                use_static=not args.no_static,
                reduce=args.reduce,
            )
        except PropertyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    finally:
        if sink is not None:
            sink.close()
    print(decision.describe())
    # query speaks the property convention even for 'deadlock': 0 means
    # the property holds (a deadlock exists), unlike verify's legacy
    # 0-means-deadlock-free exit.
    if decision.holds is None:
        return 2
    return 0 if decision.holds else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    return run_profile(
        args.family,
        args.size,
        analyzer=args.analyzer,
        max_states=args.max_states,
        max_seconds=args.max_seconds,
        memory=args.memory,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        jsonl_out=args.jsonl_out,
    )


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.figure in (None, "1"):
        print(format_series(figure1_series(), title="Figure 1: n concurrent transitions"))
    if args.figure in (None, "2"):
        print(format_series(figure2_series(), title="Figure 2: n conflict pairs"))
    if args.figure in (None, "3"):
        print(figure3_walkthrough())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    with observed(trace_out=args.trace, metrics_out=args.metrics):
        return _run_check(args)


def _run_check(args: argparse.Namespace) -> int:
    net = _load(args.file)
    with obs_span(names.SPAN_DIAGNOSE, net=net.name):
        diagnostics = diagnose(net)
    if diagnostics.clean:
        print("structure: ok")
    else:
        print(diagnostics.summary())
    with obs_span(names.SPAN_CERTIFICATE, net=net.name) as cert_span:
        certificate = certify_safety(net)
        cert_span.set(certified=certificate.certified)
    if certificate.certified:
        print("safety: 1-safe (structural certificate, 0 states explored)")
        return 0
    walk_net = net
    if args.reduce != "off":
        # Only the count-preserving rules are sound here: they keep a
        # marking bijection, so a violation on the reduced net is a
        # violation on the original and vice versa.
        from repro.reduce import reduce_net

        reduction = reduce_net(net, level="count", mode=args.reduce)
        if reduction.reduced:
            walk_net = reduction.net
            (pre_p, pre_t, pre_a), (post_p, post_t, post_a) = reduction.sizes()
            print(
                f"[reduce] count-preserving pre-pass: "
                f"{pre_p}/{pre_t}/{pre_a} -> {post_p}/{post_t}/{post_a} "
                "places/transitions/arcs"
            )
    if args.shards > 1:
        return _check_sharded(walk_net, args)
    with obs_span(names.SPAN_BOUNDED_CHECK, net=net.name):
        verdict = check_safe(
            walk_net, max_states=args.max_states, use_kernel=not args.no_kernel
        )
    if verdict.status == "safe":
        print(f"safety: 1-safe (exhaustive, {verdict.states} states)")
        return 0
    if verdict.status == "unsafe":
        print(f"safety: VIOLATION — {verdict.violation}")
        return 1
    print(
        f"safety: unknown — no certificate and the {args.max_states}-state "
        "bound was exhausted without a verdict"
    )
    return 2


def _check_sharded(walk_net, args: argparse.Namespace) -> int:
    """The ``--shards N`` bounded safety walk: sharded parallel BFS.

    The sharded explorer fires through the same 1-safety-checking kernel
    rules, so an :class:`UnsafeNetError` surfaces exactly where the
    sequential walk's violation would; an exhaustive clean run proves
    1-safety over the same state space.
    """
    from repro.net.exceptions import UnsafeNetError
    from repro.search.parallel import explore_parallel

    with obs_span(names.SPAN_BOUNDED_CHECK, net=walk_net.name):
        try:
            outcome = explore_parallel(
                walk_net, shards=args.shards, max_states=args.max_states
            )
        except UnsafeNetError as exc:
            print(f"safety: VIOLATION — {exc}")
            return 1
    if outcome.exhaustive:
        print(
            f"safety: 1-safe (exhaustive, {outcome.states} states, "
            f"{args.shards} shards, {outcome.workers})"
        )
        return 0
    print(
        f"safety: unknown — no certificate and the {args.max_states}-state "
        "bound was exhausted without a verdict "
        f"({args.shards} shards, {outcome.levels} levels)"
    )
    return 2


def _cmd_lint(args: argparse.Namespace) -> int:
    net = _load(args.file)
    fmt = "json" if args.json else args.format
    report = run_lint(net, reduce=not args.no_reduce)
    if fmt == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif fmt == "sarif":
        print(json.dumps(report.to_sarif(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 1 if report.broken else 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    from repro.net.parser import to_text
    from repro.reduce import ReductionLevelError, explain, reduce_net

    net = _load(args.file)
    for place in args.protect or ():
        if place not in net.place_index:
            print(f"unknown place {place!r}", file=sys.stderr)
            return 2
    try:
        reduction = reduce_net(
            net,
            level=args.level,
            mode=args.mode,
            protect=tuple(args.protect or ()),
        )
    except ReductionLevelError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.explain:
        print(explain(reduction))
    elif args.diff:
        print(_reduce_diff(net, reduction))
    else:
        print(to_text(reduction.net), end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(to_text(reduction.net))
        print(f"[reduce] wrote {args.out}", file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(reduction.trace.to_json(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"[reduce] wrote {args.trace_out}", file=sys.stderr)
    return 0


def _reduce_diff(net, reduction) -> str:
    """Unified-diff-flavoured summary: what the reduction removed/added."""
    pre, post = reduction.sizes()
    lines = [
        f"--- {net.name} ({pre[0]}P/{pre[1]}T/{pre[2]}A)",
        f"+++ {net.name} reduced ({post[0]}P/{post[1]}T/{post[2]}A)",
    ]
    kept_places = set(reduction.net.places)
    kept_transitions = set(reduction.net.transitions)
    for place in net.places:
        if place not in kept_places:
            lines.append(f"-place {place}")
    for name in net.transitions:
        if name not in kept_transitions:
            lines.append(f"-transition {name}")
    for name in reduction.net.transitions:
        if name not in set(net.transitions):
            lines.append(f"+transition {name}")
    if not reduction.reduced:
        lines.append(" (irreducible: no rule applied)")
    return "\n".join(lines)


def _lint_refusal(instances) -> int | None:
    """The ``--lint`` pre-pass: lint each net, refuse on any broken one.

    Returns the exit status (2) when some model is refused, else ``None``.
    """
    broken = False
    for net in instances:
        report = run_lint(net)
        verdict = "BROKEN" if report.broken else "ok"
        print(f"[lint] {net.name}: {verdict}", file=sys.stderr)
        if report.broken:
            for line in report.summary().splitlines():
                print(f"[lint]   {line}", file=sys.stderr)
            broken = True
    if broken:
        print("[lint] refusing to run structurally broken models",
              file=sys.stderr)
        return 2
    return None


def _cmd_dot(args: argparse.Namespace) -> int:
    net = _load(args.file)
    if args.rg:
        graph = explore(net, max_states=args.max_states)
        print(
            reachability_to_dot(
                net,
                graph.states(),
                graph.edges(),
                initial=net.initial_marking,
                deadlocks=graph.deadlocks,
            )
        )
    else:
        print(net_to_dot(net))
    return 0


def _cmd_bench_model(args: argparse.Namespace) -> int:
    if args.name not in PROBLEMS:
        print(f"unknown model {args.name!r}; choose from {', '.join(PROBLEMS)}",
              file=sys.stderr)
        return 2
    budget = Budget(max_states=args.max_states, max_seconds=args.max_seconds)
    if args.lint:
        refusal = _lint_refusal([PROBLEMS[args.name](args.size)])
        if refusal is not None:
            return refusal
    cache, sink = _engine_setup(args)
    try:
        if args.portfolio:
            outcome = run_race(
                PROBLEMS[args.name](args.size),
                budget=budget,
                jobs=args.jobs,
                cache=cache,
                events=sink,
                reduce=args.reduce,
                shards=args.shards,
            )
            print(outcome.describe())
            return 0
        rows = run_table1(
            problems=[args.name],
            sizes={args.name: [args.size]},
            budget=budget,
            jobs=args.jobs,
            cache=cache,
            events=sink,
            reduce=args.reduce,
        )
        print(
            format_table1(rows, with_paper=True, with_stats=args.stats)
        )
        if args.shards > 1:
            # The sharded explorer is not a Table 1 column (the paper
            # has none); report its run as a trailer line instead.
            from repro.search.parallel import analyze_parallel

            result = analyze_parallel(
                PROBLEMS[args.name](args.size),
                shards=args.shards,
                max_states=budget.max_states,
                max_seconds=budget.max_seconds,
            )
            print(
                f"parallel({args.shards} shards, "
                f"{result.extras.get('workers', 'inline')}): "
                f"states={result.states} edges={result.edges} "
                f"deadlock={'yes' if result.deadlock else 'no'} "
                f"time={result.time_seconds:.3f}s"
            )
        return 0
    finally:
        if sink is not None:
            sink.close()


def _cmd_bench_kernel(args: argparse.Namespace) -> int:
    from repro.harness.benchkernel import (
        format_bench,
        run_bench,
        write_bench,
    )

    problems = args.problems.split(",") if args.problems else None
    if problems:
        for problem in problems:
            if problem not in PROBLEMS:
                print(f"unknown problem {problem!r}; choose from "
                      f"{', '.join(PROBLEMS)}", file=sys.stderr)
                return 2
    shard_sweep: list[int] | None = None
    if args.shards:
        try:
            shard_sweep = [int(part) for part in args.shards.split(",")]
        except ValueError:
            print(
                f"--shards expects a comma list of counts, got {args.shards!r}",
                file=sys.stderr,
            )
            return 2
        if any(count < 1 for count in shard_sweep):
            print("--shards counts must be >= 1", file=sys.stderr)
            return 2
    with observed(trace_out=args.trace, metrics_out=args.metrics):
        rows = run_bench(quick=args.quick, problems=problems)
        parallel_rows = None
        baseline = None
        if shard_sweep:
            from repro.harness.benchparallel import (
                format_bench_parallel,
                run_bench_parallel,
                write_bench_parallel,
            )

            parallel_rows, baseline = run_bench_parallel(
                shards=shard_sweep, quick=args.quick, problems=problems
            )
    print(format_bench(rows))
    if args.out:
        write_bench(rows, args.out)
        print(f"[bench] wrote {args.out}")
    if parallel_rows is not None and baseline is not None:
        print()
        print(format_bench_parallel(parallel_rows, baseline))
        if args.parallel_out:
            write_bench_parallel(parallel_rows, baseline, args.parallel_out)
            print(f"[bench] wrote {args.parallel_out}")
    mismatched = not all(row.counts_match for row in rows)
    if parallel_rows is not None:
        mismatched = mismatched or not all(
            row.counts_match for row in parallel_rows
        )
    if mismatched:
        print(
            "[bench] kernel/reference state or edge counts disagree",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeApp, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        queue_capacity=args.queue_capacity,
        tenant_quota=args.tenant_quota,
        max_body_bytes=args.max_body_kb * 1024,
        default_max_seconds=args.max_seconds,
        max_seconds_cap=max(args.max_seconds, ServeConfig.max_seconds_cap),
    )
    app = ServeApp(config, events_path=args.events)

    async def _serve() -> None:
        await app.start()
        print(
            f"[serve] listening on http://{config.host}:{app.port} "
            f"(workers={config.workers}, queue={config.queue_capacity}, "
            f"cache={'off' if args.no_cache else 'on'})",
            flush=True,
        )
        await app.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("[serve] interrupted; shutting down")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio
    from urllib.parse import urlsplit

    from repro.serve import (
        LoadtestConfig,
        format_report,
        mismatch_count,
        quick_config,
        run_loadtest,
        write_report,
    )

    split = urlsplit(args.url if "//" in args.url else f"http://{args.url}")
    host = split.hostname or "127.0.0.1"
    port = split.port or 8080
    overrides = dict(
        seed=args.seed,
        verify=not args.no_verify,
        repeat=args.repeat,
    )
    for key in ("requests", "concurrency", "tenants", "skew", "property_mix"):
        value = getattr(args, key)
        if value is not None:
            overrides[key] = value
    if args.families:
        overrides["families"] = tuple(args.families.split(","))
    if args.methods:
        overrides["methods"] = tuple(args.methods.split(","))
    if args.quick:
        config = quick_config(host, port, **overrides)
    else:
        config = LoadtestConfig(host=host, port=port, **overrides)
    try:
        report = asyncio.run(run_loadtest(config))
    except (OSError, ConnectionError) as exc:
        print(f"loadtest: cannot reach {host}:{port} — {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    if args.out:
        write_report(report, args.out)
        print(f"[loadtest] wrote {args.out}")
    if mismatch_count(report):
        print(
            f"[loadtest] {mismatch_count(report)} verdict mismatch(es) "
            "against local runs",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.harness.benchdiff import (
        BenchDiffError,
        diff_bench,
        format_diff,
        load_bench,
    )

    try:
        old = load_bench(args.old)
        new = load_bench(args.new)
        diff = diff_bench(
            old,
            new,
            fail_threshold=args.fail_threshold,
            min_seconds=args.min_seconds,
        )
    except BenchDiffError as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    print(format_diff(diff, old, new))
    return diff.exit_code


def _fetch_url(url: str, timeout: float = 10.0) -> bytes:
    """GET one daemon URL (stdlib only); raises OSError on failure."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:  # noqa: S310
        return response.read()  # type: ignore[no-any-return]


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs.slo import format_slo

    if args.file:
        try:
            with open(args.file, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"slo: cannot read {args.file}: {exc}", file=sys.stderr)
            return 2
    else:
        url = args.url.rstrip("/") + "/metrics"
        try:
            text = _fetch_url(url).decode("utf-8", errors="replace")
        except (OSError, ValueError) as exc:
            print(f"slo: cannot fetch {url} — {exc}", file=sys.stderr)
            return 2
    print(format_slo(text))
    return 0


def _cmd_debug_flight(args: argparse.Namespace) -> int:
    url = args.url.rstrip("/") + "/v1/debug/flight"
    try:
        payload = json.loads(_fetch_url(url))
    except (OSError, ValueError) as exc:
        print(f"debug flight: cannot fetch {url} — {exc}", file=sys.stderr)
        return 2
    records = payload.get("records", [])
    if args.limit is not None:
        records = records[-args.limit :]
    if args.json:
        print(
            json.dumps(
                {**payload, "records": records}, indent=2, sort_keys=True
            )
        )
        return 0
    print(
        f"flight recorder: {len(records)} shown / "
        f"{payload.get('recorded', '?')} recorded "
        f"(capacity {payload.get('capacity', '?')})"
    )
    for record in records:
        kind = record.get("kind", record.get("name", "?"))
        rest = {
            k: v
            for k, v in record.items()
            if k not in ("kind", "name", "ts", "ts_ns")
        }
        stamp = record.get("ts") or record.get("ts_ns") or ""
        print(f"  {stamp} {kind} {json.dumps(rest, sort_keys=True)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="gpo",
        description="Generalized Partial Order Analysis for safe Petri nets "
        "(reproduction of Vercauteren et al., DATE 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="deadlock-check a net file")
    p_verify.add_argument("file")
    p_verify.add_argument(
        "--method",
        choices=("gpo", "full", "stubborn", "symbolic", "unfolding"),
        default="gpo",
    )
    p_verify.add_argument(
        "--backend", choices=("bdd", "explicit"), default="bdd"
    )
    p_verify.add_argument(
        "--timed",
        action="store_true",
        help="interpret @ [eft,lft] intervals: state-class analysis",
    )
    p_verify.add_argument(
        "--property",
        default=None,
        metavar="PROP",
        help="decide a repro.props property with the chosen analyzer "
        "instead of the deadlock question, e.g. 'reachable(cs0 & cs1)'",
    )
    p_verify.set_defaults(fn=_cmd_verify)

    p_safety = sub.add_parser(
        "safety", help="check that bad markings are unreachable"
    )
    p_safety.add_argument("file")
    p_safety.add_argument(
        "--bad",
        action="append",
        required=True,
        help="bad-marking conjunction, e.g. 'cs0 & cs1 & !lock'; repeatable",
    )
    p_safety.add_argument(
        "--no-screen",
        action="store_true",
        help="skip the GPO refutation screen (symbolic check only)",
    )
    p_safety.set_defaults(fn=_cmd_safety)

    def add_engine_flags(p: argparse.ArgumentParser, *, jobs: int) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=jobs,
            help=f"worker processes (default {jobs}); 1 = sequential",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the on-disk result cache",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            help="cache directory (default $GPO_CACHE_DIR or .gpo-cache)",
        )
        p.add_argument(
            "--events",
            default=None,
            metavar="PATH",
            help="JSONL job-event log (default <cache-dir>/events.jsonl)",
        )

    def add_reduce_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--reduce",
            nargs="?",
            const="auto",
            default="off",
            choices=("off", "auto", "aggressive"),
            help="structural reduction pre-pass (bare --reduce = auto); "
            "the rule subset is chosen from what the question must "
            "preserve, and verdicts/witnesses are mapped back to the "
            "original net",
        )

    def add_obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="write a Chrome trace_event JSON of the run "
            "(open in chrome://tracing or Perfetto)",
        )
        p.add_argument(
            "--metrics",
            default=None,
            metavar="PATH",
            help="write Prometheus text-exposition metrics of the run",
        )

    p_race = sub.add_parser(
        "race", help="race a portfolio of analyzers on one net"
    )
    p_race.add_argument("file")
    p_race.add_argument(
        "--methods",
        help=f"comma list (default {','.join(DEFAULT_PORTFOLIO)})",
    )
    p_race.add_argument("--max-states", type=int, default=200_000)
    p_race.add_argument("--max-seconds", type=float, default=120.0)
    p_race.add_argument(
        "--property",
        default=None,
        metavar="PROP",
        help="race on a repro.props property instead of the deadlock "
        "question; incompatible methods are dropped with their reason",
    )
    p_race.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="also enter the sharded parallel explorer with N shards "
        "(deadlock races only; the compat filter drops it otherwise)",
    )
    add_engine_flags(p_race, jobs=2)
    add_reduce_flag(p_race)
    p_race.set_defaults(fn=_cmd_race)

    p_query = sub.add_parser(
        "query",
        help="decide a property: structural layer first, then a "
        "compat-filtered portfolio race (exit 0 holds / 1 violated / "
        "2 undecided)",
    )
    p_query.add_argument("file")
    p_query.add_argument(
        "property",
        help="repro.props property, e.g. 'deadlock', 'reachable(a & !b)', "
        "'invariant(!(cs0 & cs1))', 'safe', 'reachable(a) | deadlock'",
    )
    p_query.add_argument(
        "--methods",
        help=f"comma list (default {','.join(DEFAULT_PORTFOLIO)}); "
        "incompatible methods are dropped with the declared reason",
    )
    p_query.add_argument(
        "--no-static",
        action="store_true",
        help="skip the structural (P-invariant / siphon-trap) fast path",
    )
    p_query.add_argument("--max-states", type=int, default=200_000)
    p_query.add_argument("--max-seconds", type=float, default=120.0)
    add_engine_flags(p_query, jobs=1)
    add_reduce_flag(p_query)
    p_query.set_defaults(fn=_cmd_query)

    p_table = sub.add_parser("table1", help="regenerate Table 1")
    p_table.add_argument("--problems", help="comma list, e.g. NSDP,RW")
    p_table.add_argument("--max-states", type=int, default=200_000)
    p_table.add_argument("--max-seconds", type=float, default=120.0)
    p_table.add_argument("--no-paper", action="store_true")
    p_table.add_argument(
        "--stats",
        action="store_true",
        help="append instrumentation columns (states/sec, reduction ratio, "
        "mean scenario-family size)",
    )
    p_table.add_argument(
        "--portfolio",
        action="store_true",
        help="race the analyzers per instance instead of tabulating all",
    )
    p_table.add_argument(
        "--lint",
        action="store_true",
        help="structurally lint every instance first; refuse broken models",
    )
    add_engine_flags(p_table, jobs=1)
    add_obs_flags(p_table)
    add_reduce_flag(p_table)
    p_table.set_defaults(fn=_cmd_table1)

    p_profile = sub.add_parser(
        "profile",
        help="traced in-process run of one analyzer on one benchmark "
        "instance: span tree, metrics, exportable trace",
    )
    p_profile.add_argument("family", help="NSDP | ASAT | OVER | RW "
                           "(case-insensitive)")
    p_profile.add_argument("size", type=int)
    p_profile.add_argument(
        "--analyzer", choices=PROFILE_ANALYZERS, default="gpo"
    )
    p_profile.add_argument("--max-states", type=int, default=200_000)
    p_profile.add_argument("--max-seconds", type=float, default=120.0)
    p_profile.add_argument(
        "--memory",
        action="store_true",
        help="attribute tracemalloc/RSS memory figures to spans",
    )
    p_profile.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON (chrome://tracing, Perfetto)",
    )
    p_profile.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write Prometheus text-exposition metrics",
    )
    p_profile.add_argument(
        "--jsonl-out",
        default=None,
        metavar="PATH",
        help="write the raw JSONL trace records",
    )
    p_profile.set_defaults(fn=_cmd_profile)

    p_fig = sub.add_parser("figures", help="regenerate the figure claims")
    p_fig.add_argument("--figure", choices=("1", "2", "3"))
    p_fig.set_defaults(fn=_cmd_figures)

    p_check = sub.add_parser("check", help="diagnose a net file")
    p_check.add_argument("file")
    p_check.add_argument("--max-states", type=int, default=100_000)
    p_check.add_argument(
        "--no-kernel",
        action="store_true",
        help="run the dynamic safety walk on the frozenset reference "
        "rules instead of the bitmask marking kernel",
    )
    p_check.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run the bounded safety walk on the sharded parallel "
        "explorer with N shards (N > 1; same verdict, level-granular "
        "bound)",
    )
    add_obs_flags(p_check)
    add_reduce_flag(p_check)
    p_check.set_defaults(fn=_cmd_check)

    p_lint = sub.add_parser(
        "lint",
        help="structural report: invariants, siphons/traps, safety "
        "certificate, net class",
    )
    p_lint.add_argument("file")
    p_lint.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json (kept for compatibility)",
    )
    p_lint.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (sarif = SARIF 2.1.0 for editors/CI "
        "annotators)",
    )
    p_lint.add_argument(
        "--no-reduce",
        action="store_true",
        help="skip the structural-reduction opportunity findings",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_reduce = sub.add_parser(
        "reduce",
        help="structurally reduce a net: emit the shrunk net (default), "
        "an --explain report or a --diff, plus the replayable trace",
    )
    p_reduce.add_argument("file")
    p_reduce.add_argument(
        "--level",
        choices=("count", "reachability", "deadlock"),
        default="deadlock",
        help="what the reduction must preserve (default deadlock; count "
        "= exact state/edge counts, the strictest subset)",
    )
    p_reduce.add_argument(
        "--mode",
        choices=("auto", "aggressive"),
        default="auto",
        help="fixpoint effort (aggressive = more passes, no siphon cap)",
    )
    p_reduce.add_argument(
        "--protect",
        action="append",
        default=None,
        metavar="PLACE",
        help="never remove this place (repeatable); e.g. places a "
        "property observes",
    )
    p_reduce.add_argument(
        "--explain",
        action="store_true",
        help="print one finding per rule application instead of the net",
    )
    p_reduce.add_argument(
        "--diff",
        action="store_true",
        help="print removed/added nodes instead of the net",
    )
    p_reduce.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the reduced net (textual format) to PATH",
    )
    p_reduce.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the replayable back-mapping trace JSON to PATH",
    )
    p_reduce.set_defaults(fn=_cmd_reduce)

    p_dot = sub.add_parser("dot", help="export DOT for a net (or its RG)")
    p_dot.add_argument("file")
    p_dot.add_argument("--rg", action="store_true")
    p_dot.add_argument("--max-states", type=int, default=5_000)
    p_dot.set_defaults(fn=_cmd_dot)

    p_bench = sub.add_parser(
        "bench-model", help="run all analyzers on one benchmark instance"
    )
    p_bench.add_argument("name", help="NSDP | ASAT | OVER | RW")
    p_bench.add_argument("size", type=int)
    p_bench.add_argument("--max-states", type=int, default=200_000)
    p_bench.add_argument("--max-seconds", type=float, default=120.0)
    p_bench.add_argument(
        "--portfolio",
        action="store_true",
        help="race the portfolio instead of running every analyzer",
    )
    p_bench.add_argument(
        "--stats",
        action="store_true",
        help="append instrumentation columns to the measured table",
    )
    p_bench.add_argument(
        "--lint",
        action="store_true",
        help="structurally lint the instance first; refuse a broken model",
    )
    p_bench.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="also run (or, with --portfolio, race) the sharded parallel "
        "explorer with N shards (N > 1)",
    )
    add_engine_flags(p_bench, jobs=1)
    add_reduce_flag(p_bench)
    p_bench.set_defaults(fn=_cmd_bench_model)

    p_kernel = sub.add_parser(
        "bench-kernel",
        help="benchmark the bitmask marking kernel against the frozenset "
        "reference path (fails on any count disagreement)",
    )
    p_kernel.add_argument(
        "--quick",
        action="store_true",
        help="small instances, one repetition (CI smoke; rates are noise)",
    )
    p_kernel.add_argument("--problems", help="comma list, e.g. NSDP,RW")
    p_kernel.add_argument(
        "--out",
        default="BENCH_kernel.json",
        metavar="PATH",
        help="JSON artifact path (default BENCH_kernel.json; '' disables)",
    )
    p_kernel.add_argument(
        "--shards",
        default=None,
        metavar="LIST",
        help="also sweep the sharded parallel explorer over these shard "
        "counts (comma list, e.g. 1,2,4) on the default instance",
    )
    p_kernel.add_argument(
        "--parallel-out",
        default="BENCH_parallel.json",
        metavar="PATH",
        help="JSON artifact for the --shards sweep "
        "(default BENCH_parallel.json; '' disables)",
    )
    add_obs_flags(p_kernel)
    p_kernel.set_defaults(fn=_cmd_bench_kernel)

    p_serve = sub.add_parser(
        "serve",
        help="verification-as-a-service HTTP daemon (shared pool + cache)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="concurrent verification worker processes (default 2)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared on-disk result cache",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default $GPO_CACHE_DIR or .gpo-cache)",
    )
    p_serve.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="append every job lifecycle event to this JSONL file too",
    )
    p_serve.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        help="total queued jobs before 429 (default 256)",
    )
    p_serve.add_argument(
        "--tenant-quota",
        type=int,
        default=64,
        help="queued jobs one tenant may hold before 429 (default 64)",
    )
    p_serve.add_argument(
        "--max-body-kb",
        type=int,
        default=2048,
        help="request-body size limit in KiB (default 2048)",
    )
    p_serve.add_argument(
        "--max-seconds",
        type=float,
        default=30.0,
        help="default per-job wall-clock budget (default 30)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_load = sub.add_parser(
        "loadtest",
        help="replay a mixed workload against a running gpo serve daemon",
    )
    p_load.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="daemon base URL (default http://127.0.0.1:8080)",
    )
    p_load.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke preset: 24 requests over NSDP/RW at tiny sizes",
    )
    # Workload-shape flags default to None so --quick's preset is only
    # overridden when a flag is given explicitly.
    p_load.add_argument("--requests", type=int, default=None)
    p_load.add_argument("--concurrency", type=int, default=None)
    p_load.add_argument("--tenants", type=int, default=None)
    p_load.add_argument(
        "--skew",
        type=float,
        default=None,
        help="fraction of requests pinned to tenant-0 (noisy neighbour)",
    )
    p_load.add_argument("--families", help="comma list, e.g. NSDP,RW")
    p_load.add_argument(
        "--methods", help="comma list, e.g. gpo,stubborn,symbolic,full"
    )
    p_load.add_argument(
        "--property-mix",
        type=float,
        default=None,
        help="fraction of requests submitting a property query via the "
        "v2 'property' field (default 0; --quick preset 0.25)",
    )
    p_load.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="replay the identical workload N times (2 = cold then warm)",
    )
    p_load.add_argument("--seed", type=int, default=1998)
    p_load.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the differential check against local in-process runs",
    )
    p_load.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report (e.g. BENCH_serve.json)",
    )
    p_load.set_defaults(fn=_cmd_loadtest)

    p_diff = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json artifacts; exit 1 on regression",
    )
    p_diff.add_argument("old", help="baseline artifact (e.g. committed)")
    p_diff.add_argument("new", help="candidate artifact (e.g. fresh run)")
    p_diff.add_argument(
        "--fail-threshold",
        type=float,
        default=benchdiff_defaults.DEFAULT_FAIL_THRESHOLD,
        metavar="PCT",
        help="percent-worse ceiling before a row fails the diff "
        f"(default {benchdiff_defaults.DEFAULT_FAIL_THRESHOLD:g})",
    )
    p_diff.add_argument(
        "--min-seconds",
        type=float,
        default=benchdiff_defaults.DEFAULT_MIN_SECONDS,
        metavar="S",
        help="noise floor: rows measured faster than this (either side) "
        "are shown but never gated "
        f"(default {benchdiff_defaults.DEFAULT_MIN_SECONDS:g}; 0 = strict)",
    )
    p_diff.set_defaults(fn=_cmd_bench_diff)

    p_slo = sub.add_parser(
        "slo",
        help="per-phase SLO report (queue/reduce/search/serialize) from a "
        "daemon's /metrics",
    )
    p_slo.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="daemon base URL (default http://127.0.0.1:8080)",
    )
    p_slo.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help="read a saved Prometheus exposition instead of fetching --url",
    )
    p_slo.set_defaults(fn=_cmd_slo)

    p_debug = sub.add_parser(
        "debug", help="introspection of a running gpo serve daemon"
    )
    debug_sub = p_debug.add_subparsers(dest="what", required=True)
    p_flight = debug_sub.add_parser(
        "flight",
        help="dump the daemon's always-on flight-recorder ring",
    )
    p_flight.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="daemon base URL (default http://127.0.0.1:8080)",
    )
    p_flight.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="show only the newest N records",
    )
    p_flight.add_argument(
        "--json",
        action="store_true",
        help="raw JSON instead of the one-line-per-record view",
    )
    p_flight.set_defaults(fn=_cmd_debug_flight)

    p_reach = sub.add_parser(
        "reach",
        help="on-the-fly marking-reachability query (early termination)",
    )
    p_reach.add_argument("file")
    p_reach.add_argument(
        "--target",
        action="append",
        required=True,
        help="target (sub)marking conjunction, e.g. 'cs0 & cs1 & !lock'; "
        "repeatable (any match terminates the search)",
    )
    p_reach.add_argument(
        "--method",
        choices=("full", "stubborn"),
        default="full",
        help="successor rule; stubborn misses are inconclusive "
        "(the reduction only preserves deadlocks)",
    )
    p_reach.add_argument("--order", choices=("bfs", "dfs"), default="bfs")
    p_reach.add_argument("--max-states", type=int, default=200_000)
    p_reach.add_argument("--max-seconds", type=float, default=120.0)
    add_reduce_flag(p_reach)
    p_reach.set_defaults(fn=_cmd_reach)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
