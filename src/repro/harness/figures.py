"""Regeneration of the paper's figure-level claims.

* **Figure 1** — ``n`` concurrent transitions: the full reachability graph
  is the ``2^n`` Boolean lattice (all interleavings), partial-order
  reduction explores a single path of ``n + 1`` states.
* **Figure 2 / §3.1** — ``n`` concurrently marked conflict pairs: the
  anticipated (PO-reduced) graph still has ``2^(n+1) - 1`` states, while
  generalized analysis explores 2.
* **Figure 3** — the colored-token walkthrough: a narrated trace of the
  GPN states, with the paper's statements (D can never fire, C fires on
  the red path) checked programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reachability import explore
from repro.gpo import Gpn, GpoOptions, explore_gpo, mapping_named
from repro.gpo.semantics import enabled_families, multiple_fire, single_fire
from repro.harness.report import format_table
from repro.models import concurrent_net, conflict_pairs_net, figure3_net
from repro.stubborn import explore_reduced

__all__ = [
    "FigureRow",
    "figure1_series",
    "figure2_series",
    "figure3_walkthrough",
    "format_series",
]


@dataclass
class FigureRow:
    """One point of a figure series."""

    n: int
    full_states: int
    reduced_states: int
    gpo_states: int

    def cells(self) -> list[str]:
        return [
            str(self.n),
            str(self.full_states),
            str(self.reduced_states),
            str(self.gpo_states),
        ]


def figure1_series(sizes: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)) -> list[FigureRow]:
    """Full vs reduced vs GPO state counts on the Figure 1 net."""
    rows = []
    for n in sizes:
        net = concurrent_net(n)
        rows.append(
            FigureRow(
                n=n,
                full_states=explore(net).num_states,
                reduced_states=explore_reduced(net).num_states,
                gpo_states=explore_gpo(net).graph.num_states,
            )
        )
    return rows


def figure2_series(sizes: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)) -> list[FigureRow]:
    """Full vs reduced vs GPO state counts on the Figure 2 net."""
    rows = []
    for n in sizes:
        net = conflict_pairs_net(n)
        rows.append(
            FigureRow(
                n=n,
                full_states=explore(net).num_states,
                reduced_states=explore_reduced(net).num_states,
                gpo_states=explore_gpo(net).graph.num_states,
            )
        )
    return rows


def format_series(rows: list[FigureRow], *, title: str) -> str:
    """Render a figure series as an ASCII table."""
    return format_table(
        ["n", "full", "PO-reduced", "GPO"],
        [row.cells() for row in rows],
        title=title,
    )


def figure3_walkthrough(*, backend: str = "explicit") -> str:
    """Narrate the Figure 3 walkthrough and check the paper's statements.

    Returns a human-readable transcript; raises ``AssertionError`` if any
    of the paper's claims fails (the unit tests call this too).
    """
    net = figure3_net()
    gpn = Gpn(net, backend=backend)  # type: ignore[arg-type]
    state = gpn.initial_state()
    lines = [f"net: {net.name}; scenarios r0 = {gpn.r0.count()}"]

    single, multiple = enabled_families(gpn, state)
    a = net.transition_id("A")
    b = net.transition_id("B")
    c = net.transition_id("C")
    d = net.transition_id("D")
    assert a in multiple and b in multiple, "A and B start multiple-enabled"
    lines.append("state 0: A and B multiple-enabled -> fire {A,B}")
    state = multiple_fire(gpn, state, frozenset([a, b]), families=(single, multiple))
    lines.append(
        "state 1 markings: "
        + "; ".join(
            f"{place}={sorted(tuple(sorted(net.transitions[t] for t in v)) for v in fam.iter_sets())}"
            for place, fam in gpn.iter_place_families(state)
        )
    )

    single, multiple = enabled_families(gpn, state)
    assert c in single, "C fires on the red (A) path"
    assert d not in single, "D sees conflicting colors and can never fire"
    lines.append("state 1: C single-enabled, D blocked (conflicting colors)")
    state = single_fire(gpn, state, c)
    covered = mapping_named(gpn, state)
    lines.append(f"state 2 classical markings covered: {sorted(map(sorted, covered))}")
    return "\n".join(lines) + "\n"
