"""The ``gpo bench-kernel --shards`` sweep: sharded-explorer benchmark.

For one Table 1 instance the sweep runs the sequential kernelized full
explorer once as the **baseline**, then the sharded level-synchronized
BFS (:func:`repro.search.parallel.explore_parallel`) at every requested
shard count — a scalar row per count, plus a numpy-batched row when the
``[fast]`` extra is installed.  Every row must reproduce the baseline's
state/edge/deadlock counts exactly (sharding and batching regroup the
work; they never change it), and any disagreement fails the benchmark —
the CI smoke job keys on that, like ``bench-kernel`` itself.

The measurements are persisted to ``BENCH_parallel.json``.  The artifact
records ``cpu_count`` and each row's resolved ``workers`` mode because
the wall-clock story is honest only in context: on a single-CPU host the
fork runner degenerates to inline level-stepping, so multi-shard rows
show the batching win (one vectorized op per transition per level)
rather than true core-parallel speedup.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Sequence

import repro.analysis.reachability as _full
from repro.analysis.stats import AnalysisResult
from repro.harness.table1 import PROBLEMS
from repro.net.batch import HAVE_NUMPY
from repro.obs.benchmeta import stamp_bench
from repro.search.parallel import ParallelOutcome, explore_parallel

__all__ = [
    "DEFAULT_SHARD_SWEEP",
    "PARALLEL_SIZES",
    "QUICK_PARALLEL_SIZES",
    "ParallelRow",
    "run_bench_parallel",
    "format_bench_parallel",
    "write_bench_parallel",
]

#: Shard counts the sweep measures by default.
DEFAULT_SHARD_SWEEP: tuple[int, ...] = (1, 2, 4)

#: Default instance: the acceptance target of the sharded explorer.
PARALLEL_SIZES: dict[str, int] = {"NSDP": 8}

#: ``--quick`` instance (CI smoke): count equality only, rates are noise.
QUICK_PARALLEL_SIZES: dict[str, int] = {"NSDP": 4}


@dataclass(frozen=True)
class ParallelRow:
    """One (instance, shard count, batch mode) measurement."""

    problem: str
    size: int
    shards: int
    inner: str
    batch: bool
    workers: str
    states: int
    edges: int
    deadlocks: int
    levels: int
    peak_frontier: int
    exchange_volume: int
    seconds: float
    states_per_second: float
    counts_match: bool


def _best_outcome(
    run: Callable[[], ParallelOutcome], repetitions: int
) -> tuple[ParallelOutcome, float]:
    """Best-of-N wall time (minimum filters scheduler noise)."""
    best = float("inf")
    outcome: ParallelOutcome | None = None
    for _ in range(repetitions):
        start = time.perf_counter()
        candidate = run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            outcome = candidate
    assert outcome is not None
    return outcome, best


def run_bench_parallel(
    *,
    shards: Sequence[int] = DEFAULT_SHARD_SWEEP,
    quick: bool = False,
    problems: Sequence[str] | None = None,
    repetitions: int | None = None,
) -> tuple[list[ParallelRow], AnalysisResult]:
    """Measure the shard sweep; returns ``(rows, sequential baseline)``.

    Each shard count contributes a scalar (``batch=False``) row and, when
    numpy is available, a batched row.  ``counts_match`` compares every
    row against the sequential full explorer's exact counts.
    """
    if problems:
        # Reuse the kernel benchmark's per-family sizes for non-default
        # instances, so the two artifacts describe the same state spaces.
        from repro.harness.benchkernel import BENCH_SIZES, QUICK_SIZES

        problem = problems[0]
        size = (QUICK_SIZES if quick else BENCH_SIZES)[problem]
    else:
        sizes = QUICK_PARALLEL_SIZES if quick else PARALLEL_SIZES
        problem, size = next(iter(sizes.items()))
    if repetitions is None:
        repetitions = 1 if quick else 3
    net = PROBLEMS[problem](size)
    net.kernel()
    net.static_analysis()
    baseline = _full.analyze(net, use_kernel=True, want_witness=False)
    rows: list[ParallelRow] = []
    modes = [False, True] if HAVE_NUMPY else [False]
    for count in shards:
        for batch in modes:
            outcome, seconds = _best_outcome(
                lambda c=count, b=batch: explore_parallel(
                    net, shards=c, inner="full", batch=b
                ),
                repetitions,
            )
            counts_match = (
                outcome.states == baseline.states
                and outcome.edges == baseline.edges
                and (outcome.deadlocks > 0) == baseline.deadlock
            )
            rows.append(
                ParallelRow(
                    problem=problem,
                    size=size,
                    shards=count,
                    inner="full",
                    batch=batch,
                    workers=outcome.workers,
                    states=outcome.states,
                    edges=outcome.edges,
                    deadlocks=outcome.deadlocks,
                    levels=outcome.levels,
                    peak_frontier=outcome.peak_frontier,
                    exchange_volume=outcome.exchange_volume,
                    seconds=round(seconds, 6),
                    states_per_second=round(outcome.states / seconds, 1)
                    if seconds > 0
                    else float(outcome.states),
                    counts_match=counts_match,
                )
            )
    return rows, baseline


def format_bench_parallel(
    rows: Sequence[ParallelRow], baseline: AnalysisResult
) -> str:
    """Human-readable sweep table, baseline first."""
    header = (
        f"{'instance':12s} {'shards':>6s} {'batch':>6s} {'workers':>7s} "
        f"{'states':>8s} {'states/s':>10s} {'vs-seq':>7s} {'counts':>7s}"
    )
    base_rate = (
        baseline.states / baseline.time_seconds
        if baseline.time_seconds > 0
        else float(baseline.states)
    )
    lines = [
        header,
        "-" * len(header),
        f"{baseline.net_name:12s} {'seq':>6s} {'-':>6s} {'-':>7s} "
        f"{baseline.states:8d} {base_rate:10.0f} {'1.00x':>7s} {'ok':>7s}",
    ]
    for row in rows:
        speedup = (
            base_rate and (row.states_per_second / base_rate) or 0.0
        )
        lines.append(
            f"{row.problem + '(' + str(row.size) + ')':12s} "
            f"{row.shards:6d} {'yes' if row.batch else 'no':>6s} "
            f"{row.workers:>7s} {row.states:8d} "
            f"{row.states_per_second:10.0f} {speedup:6.2f}x "
            f"{'ok' if row.counts_match else 'MISMATCH':>7s}"
        )
    return "\n".join(lines)


def write_bench_parallel(
    rows: Sequence[ParallelRow],
    baseline: AnalysisResult,
    path: str | Path,
) -> None:
    """Persist the sweep as the ``BENCH_parallel.json`` artifact."""
    payload = {
        "benchmark": "parallel-shards",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "have_numpy": HAVE_NUMPY,
        "baseline": {
            "analyzer": "full",
            "net": baseline.net_name,
            "states": baseline.states,
            "edges": baseline.edges,
            "deadlock": baseline.deadlock,
            "seconds": round(baseline.time_seconds, 6),
        },
        "rows": [asdict(row) for row in rows],
    }
    Path(path).write_text(
        json.dumps(stamp_bench(payload), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
