"""The ``gpo bench-diff`` regression gate: compare two BENCH artifacts.

Any two artifacts written by the repo's bench writers — ``gpo
bench-kernel`` (``marking-kernel``), the ``--shards`` sweep
(``parallel-shards``) or ``gpo loadtest --report`` (``serve-loadtest``)
— can be diffed row by row.  Rows are matched on a kind-specific key
(instance + analyzer, instance + shard/batch mode, or phase name), each
matched pair yields one comparable metric per direction (states/sec and
throughput are higher-better, latency p99 is lower-better), and a pair
counts as a **regression** when the new side is worse than the old by
more than ``fail_threshold`` percent.

Micro-benchmark noise is handled by a duration floor rather than by
statistics: rows whose measured wall time (on either side) is below
``min_seconds`` are *reported* but never *gated* — a 30 ms quick-mode
run can swing 2x on scheduler jitter alone, and failing CI on that
teaches people to ignore the gate.  ``--min-seconds 0`` restores strict
mode for synthetic tests.

Shape problems (unreadable file, missing/mismatched ``benchmark`` kind)
raise :class:`BenchDiffError`, which the CLI maps to exit code 2 so a
broken artifact is distinguishable from a real regression (exit 1).
Zero comparable rows is *not* an error — the default kernel sizes and
the ``--quick`` sizes are disjoint, so diffing a quick run against the
committed full artifact legitimately matches nothing — but it is loud:
the report says so in capitals rather than printing an empty table that
reads as "no regressions".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_FAIL_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
    "BenchDiff",
    "BenchDiffError",
    "DiffRow",
    "diff_bench",
    "diff_files",
    "format_diff",
    "load_bench",
]

#: Percent-worse ceiling before a matched row counts as a regression.
DEFAULT_FAIL_THRESHOLD = 25.0

#: Noise floor: rows measured in less wall time than this (either side)
#: are shown but never gated.
DEFAULT_MIN_SECONDS = 0.5


class BenchDiffError(Exception):
    """The artifacts cannot be compared (shape, not performance)."""


@dataclass(frozen=True)
class DiffRow:
    """One matched metric: ``worse_pct`` > 0 means the new side is worse."""

    key: str
    metric: str
    old: float
    new: float
    worse_pct: float
    higher_better: bool
    gated: bool
    regressed: bool
    skip_reason: str | None = None


@dataclass
class BenchDiff:
    """The full comparison of two same-kind artifacts."""

    kind: str
    fail_threshold: float
    min_seconds: float
    rows: list[DiffRow] = field(default_factory=list)
    #: Keys present in exactly one artifact (reported, never gated).
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read one BENCH_*.json artifact; shape errors become our own."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BenchDiffError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchDiffError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "benchmark" not in payload:
        raise BenchDiffError(
            f"{path} has no 'benchmark' kind — not a bench artifact"
        )
    return payload


def _metrics_kernel(
    payload: dict[str, Any],
) -> dict[tuple[str, str], tuple[float, float, bool]]:
    """``marking-kernel`` rows → {(key, metric): (value, duration, hi)}."""
    out: dict[tuple[str, str], tuple[float, float, bool]] = {}
    for row in payload.get("rows", []):
        key = f"{row['problem']}({row['size']})/{row['analyzer']}"
        duration = float(row.get("kernel_seconds", 0.0))
        out[(key, "kernel_states_per_sec")] = (
            float(row["kernel_states_per_second"]),
            duration,
            True,
        )
    return out


def _metrics_parallel(
    payload: dict[str, Any],
) -> dict[tuple[str, str], tuple[float, float, bool]]:
    """``parallel-shards`` rows, keyed by instance + shards + batch."""
    out: dict[tuple[str, str], tuple[float, float, bool]] = {}
    for row in payload.get("rows", []):
        batch = "batch" if row.get("batch") else "scalar"
        key = f"{row['problem']}({row['size']})/shards={row['shards']}/{batch}"
        out[(key, "states_per_sec")] = (
            float(row["states_per_second"]),
            float(row.get("seconds", 0.0)),
            True,
        )
    return out


def _metrics_serve(
    payload: dict[str, Any],
) -> dict[tuple[str, str], tuple[float, float, bool]]:
    """``serve-loadtest`` phases: throughput up, p99 latency down."""
    out: dict[tuple[str, str], tuple[float, float, bool]] = {}
    for phase in payload.get("phases", []):
        key = f"phase/{phase['phase']}"
        duration = float(phase.get("wall_seconds", 0.0))
        out[(key, "throughput_rps")] = (
            float(phase["throughput_rps"]),
            duration,
            True,
        )
        p99 = phase.get("latency_seconds", {}).get("p99")
        if p99 is not None:
            out[(key, "latency_p99_seconds")] = (float(p99), duration, False)
    return out


_EXTRACTORS = {
    "marking-kernel": _metrics_kernel,
    "parallel-shards": _metrics_parallel,
    "serve-loadtest": _metrics_serve,
}


def diff_bench(
    old: dict[str, Any],
    new: dict[str, Any],
    *,
    fail_threshold: float = DEFAULT_FAIL_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchDiff:
    """Compare two loaded artifacts of the same ``benchmark`` kind."""
    old_kind, new_kind = old.get("benchmark"), new.get("benchmark")
    if old_kind != new_kind:
        raise BenchDiffError(
            f"benchmark kinds differ: old={old_kind!r} new={new_kind!r}"
        )
    extractor = _EXTRACTORS.get(str(old_kind))
    if extractor is None:
        raise BenchDiffError(
            f"unknown benchmark kind {old_kind!r}; "
            f"expected one of {sorted(_EXTRACTORS)}"
        )
    try:
        old_metrics = extractor(old)
        new_metrics = extractor(new)
    except (KeyError, TypeError, ValueError) as exc:
        raise BenchDiffError(f"malformed {old_kind} rows: {exc}") from exc

    diff = BenchDiff(
        kind=str(old_kind),
        fail_threshold=fail_threshold,
        min_seconds=min_seconds,
    )
    diff.only_old = sorted(
        {k for k, _ in old_metrics} - {k for k, _ in new_metrics}
    )
    diff.only_new = sorted(
        {k for k, _ in new_metrics} - {k for k, _ in old_metrics}
    )
    for (key, metric), (old_value, old_dur, higher) in sorted(
        old_metrics.items()
    ):
        match = new_metrics.get((key, metric))
        if match is None:
            continue
        new_value, new_dur, _ = match
        if higher:
            worse_pct = (
                100.0 * (old_value - new_value) / old_value
                if old_value > 0
                else 0.0
            )
        else:
            worse_pct = (
                100.0 * (new_value - old_value) / old_value
                if old_value > 0
                else 0.0
            )
        skip_reason = None
        if min(old_dur, new_dur) < min_seconds:
            skip_reason = (
                f"measured in {min(old_dur, new_dur):.3f}s "
                f"< noise floor {min_seconds:g}s"
            )
        gated = skip_reason is None
        diff.rows.append(
            DiffRow(
                key=key,
                metric=metric,
                old=old_value,
                new=new_value,
                worse_pct=round(worse_pct, 2),
                higher_better=higher,
                gated=gated,
                regressed=gated and worse_pct > fail_threshold,
                skip_reason=skip_reason,
            )
        )
    return diff


def diff_files(
    old_path: str | Path,
    new_path: str | Path,
    *,
    fail_threshold: float = DEFAULT_FAIL_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchDiff:
    """Load and compare two artifact files."""
    return diff_bench(
        load_bench(old_path),
        load_bench(new_path),
        fail_threshold=fail_threshold,
        min_seconds=min_seconds,
    )


def _meta_line(payload: dict[str, Any]) -> str:
    meta = payload.get("meta", {})
    if not isinstance(meta, dict) or not meta:
        return "unstamped (no meta block)"
    return (
        f"host={meta.get('host', '?')} commit={meta.get('commit', '?')} "
        f"python={meta.get('python', '?')}"
    )


def format_diff(
    diff: BenchDiff,
    old: dict[str, Any] | None = None,
    new: dict[str, Any] | None = None,
) -> str:
    """Human-readable comparison table plus the verdict line."""
    lines = [f"bench-diff: {diff.kind} (fail above {diff.fail_threshold:g}%)"]
    if old is not None:
        lines.append(f"  old: {_meta_line(old)}")
    if new is not None:
        lines.append(f"  new: {_meta_line(new)}")
    header = (
        f"{'row':44s} {'metric':>22s} {'old':>12s} {'new':>12s} "
        f"{'worse%':>8s} {'gate':>8s}"
    )
    lines += [header, "-" * len(header)]
    for row in diff.rows:
        if row.regressed:
            gate = "REGRESS"
        elif not row.gated:
            gate = "noise"
        else:
            gate = "ok"
        lines.append(
            f"{row.key:44s} {row.metric:>22s} {row.old:12.4g} "
            f"{row.new:12.4g} {row.worse_pct:8.1f} {gate:>8s}"
        )
    for key in diff.only_old:
        lines.append(f"{key:44s} {'(only in old artifact)':>22s}")
    for key in diff.only_new:
        lines.append(f"{key:44s} {'(only in new artifact)':>22s}")
    if not diff.rows:
        lines.append(
            "NO COMPARABLE ROWS — the artifacts share no (row, metric) keys "
            "(e.g. --quick sizes vs the committed full-size artifact); "
            "nothing was gated."
        )
    elif diff.regressions:
        lines.append(
            f"FAIL: {len(diff.regressions)} metric(s) regressed more than "
            f"{diff.fail_threshold:g}%"
        )
    else:
        ungated = sum(1 for row in diff.rows if not row.gated)
        note = f" ({ungated} below the noise floor)" if ungated else ""
        lines.append(f"ok: no regression above {diff.fail_threshold:g}%{note}")
    return "\n".join(lines)
