"""Regeneration of the paper's Table 1.

For every instance of the four benchmark families the harness runs:

* **full** explicit reachability — the "States" column;
* **stubborn** (partial-order reduced) — the "SPIN+PO" columns;
* **symbolic** (BDD) — the "SMV" columns (peak BDD nodes + time);
* **gpo** — the "GPO" columns (GPN states + time).

The paper's published values are kept in :data:`PAPER_TABLE1` so reports
and tests can compare shapes side by side.  Absolute values are *not*
expected to match (different decade, different host, reconstructed
models — see EXPERIMENTS.md); the assertions in the benchmark suite check
the qualitative claims instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.analysis.stats import AnalysisResult
from repro.engine.cache import ResultCache
from repro.engine.events import EventSink
from repro.engine.jobs import VerificationJob
from repro.engine.pool import WorkerPool
from repro.harness.report import format_number, format_table
from repro.harness.runner import Budget, run_analyzer
from repro.models import asat, nsdp, over, rw
from repro.net.petrinet import PetriNet
from repro.obs import names

__all__ = [
    "PROBLEMS",
    "DEFAULT_SIZES",
    "PAPER_TABLE1",
    "Table1Row",
    "run_instance",
    "run_table1",
    "format_table1",
]

#: Benchmark constructors by problem name.
PROBLEMS: Mapping[str, Callable[[int], PetriNet]] = {
    "NSDP": nsdp,
    "ASAT": asat,
    "OVER": over,
    "RW": rw,
}

#: The instance sizes Table 1 reports.
DEFAULT_SIZES: Mapping[str, tuple[int, ...]] = {
    "NSDP": (2, 4, 6, 8, 10),
    "ASAT": (2, 4, 8),
    "OVER": (2, 3, 4, 5),
    "RW": (6, 9, 12, 15),
}

#: Published values: (full states, SPIN+PO states, SPIN+PO time,
#: SMV peak BDD size, SMV time, GPO states, GPO time).  ``None`` encodes
#: the paper's "> 24 hours" entries.
PAPER_TABLE1: Mapping[tuple[str, int], tuple] = {
    ("NSDP", 2): (18, 12, 0.08, 1068, 0.04, 3, 0.01),
    ("NSDP", 4): (322, 110, 0.13, 10018, 0.22, 3, 0.03),
    ("NSDP", 6): (5778, 1422, 1.07, 52320, 8.97, 3, 0.04),
    ("NSDP", 8): (103682, 19270, 25.62, 687263, 1169.30, 3, 0.05),
    ("NSDP", 10): (1_860_000, 239308, 453.16, None, None, 3, 0.06),
    ("ASAT", 2): (88, 33, 0.08, 1587, 0.05, 8, 0.01),
    ("ASAT", 4): (7822, 192, 0.11, 117667, 79.61, 14, 0.06),
    ("ASAT", 8): (1_580_000, 3598, 1.12, None, None, 23, 0.35),
    ("OVER", 2): (65, 28, 0.09, 3511, 0.08, 6, 0.01),
    ("OVER", 3): (519, 107, 0.13, 10203, 0.19, 7, 0.02),
    ("OVER", 4): (4175, 467, 0.44, 11759, 0.64, 8, 0.04),
    ("OVER", 5): (33460, 2059, 2.05, 24860, 3.59, 9, 0.06),
    ("RW", 6): (72, 72, 0.06, 3689, 0.09, 2, 0.05),
    ("RW", 9): (523, 523, 1.51, 9886, 0.16, 2, 0.20),
    ("RW", 12): (4110, 4110, 16.89, 10037, 0.28, 2, 0.61),
    ("RW", 15): (29642, 29642, 194.33, 10267, 0.43, 2, 1.50),
}


@dataclass
class Table1Row:
    """Measured values of one Table 1 row.

    ``stats`` holds the search-core instrumentation of the row's analyzer
    runs — the full explorer's states/sec, the stubborn reduction ratio,
    the mean GPO scenario-family size — rendered by
    ``format_table1(..., with_stats=True)``.
    """

    problem: str
    size: int
    full_states: int | None
    spin_states: int | None
    spin_time: float | None
    smv_peak: int | None
    smv_time: float | None
    gpo_states: int
    gpo_time: float
    deadlock: bool
    stats: dict = field(default_factory=dict)

    def net_size_cell(self) -> str:
        """``P/T/A`` sizes; ``pre->post`` when a reduction ran."""
        pre = self.stats.get("net_pre")
        post = self.stats.get("net_post")
        if not pre:
            return "-"
        pre_text = "/".join(str(n) for n in pre)
        if not post or list(post) == list(pre):
            return pre_text
        return pre_text + "->" + "/".join(str(n) for n in post)

    def cells(self, *, with_stats: bool = False) -> list[str]:
        out = [
            f"{self.problem}({self.size})",
            format_number(self.full_states),
            format_number(self.spin_states),
            format_number(self.spin_time),
            format_number(self.smv_peak),
            format_number(self.smv_time),
            format_number(self.gpo_states),
            format_number(self.gpo_time),
            "yes" if self.deadlock else "no",
        ]
        if with_stats:
            out.extend(
                format_number(self.stats.get(key))
                for key in ("full_rate", "po_ratio", "po_iter", "gpo_scen")
            )
            out.append(self.net_size_cell())
        return out


#: Column order the four analyzers contribute to a Table 1 row.
_ANALYZER_ORDER = ("full", "stubborn", "symbolic", "gpo")


def _assemble_row(
    problem: str, size: int, results: Mapping[str, AnalysisResult]
) -> Table1Row:
    """Build a :class:`Table1Row` from per-analyzer results.

    Shared by the sequential and the pooled execution paths so that
    ``--jobs N`` produces exactly the same rows as ``--jobs 1``.
    """
    full = results.get("full")
    spin = results.get("stubborn")
    smv = results.get("symbolic")
    gpo = results.get("gpo")
    stats: dict = {}
    if full is not None:
        stats["full_rate"] = full.extras.get(names.STATES_PER_SECOND)
    if spin is not None:
        stats["po_ratio"] = spin.extras.get(names.STUBBORN_RATIO)
        stats["po_iter"] = spin.extras.get(
            names.STUBBORN_CLOSURE_ITERATIONS
        )
    if gpo is not None:
        stats["gpo_scen"] = gpo.extras.get(names.MEAN_SCENARIOS)
    for result in results.values():
        reduction = result.reduction
        if reduction is not None:
            stats["net_pre"] = reduction.get("pre")
            stats["net_post"] = reduction.get("post")
            break
    return Table1Row(
        problem=problem,
        size=size,
        full_states=(full.states if full and full.exhaustive else None),
        spin_states=(spin.states if spin and spin.exhaustive else None),
        spin_time=spin.time_seconds if spin else None,
        smv_peak=(
            smv.extras.get("peak_bdd_nodes") if smv and smv.exhaustive else None
        ),
        smv_time=smv.time_seconds if smv else None,
        gpo_states=gpo.states if gpo else 0,
        gpo_time=gpo.time_seconds if gpo else 0.0,
        deadlock=gpo.deadlock if gpo else False,
        stats={k: v for k, v in stats.items() if v is not None},
    )


def run_instance(
    problem: str,
    size: int,
    *,
    budget: Budget | None = None,
    analyzers: Iterable[str] = _ANALYZER_ORDER,
    reduce: str = "off",
) -> Table1Row:
    """Run the selected analyzers on one instance and collect a row."""
    net = PROBLEMS[problem](size)
    wanted = set(analyzers)
    results = {
        name: run_analyzer(name, net, budget, reduce=reduce)
        for name in _ANALYZER_ORDER
        if name in wanted
    }
    return _assemble_row(problem, size, results)


def _instance_specs(
    problems: Iterable[str] | None,
    sizes: Mapping[str, Iterable[int]] | None,
) -> list[tuple[str, int]]:
    specs: list[tuple[str, int]] = []
    for problem in problems or PROBLEMS:
        wanted_sizes = (
            sizes.get(problem, DEFAULT_SIZES[problem])
            if sizes
            else DEFAULT_SIZES[problem]
        )
        specs.extend((problem, size) for size in wanted_sizes)
    return specs


def run_table1(
    *,
    problems: Iterable[str] | None = None,
    sizes: Mapping[str, Iterable[int]] | None = None,
    budget: Budget | None = None,
    analyzers: Iterable[str] = _ANALYZER_ORDER,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: EventSink | None = None,
    reduce: str = "off",
) -> list[Table1Row]:
    """Run the whole table (or a selection) and return measured rows.

    With ``jobs > 1`` (or when a ``cache`` / ``events`` sink is supplied)
    every (instance, analyzer) cell becomes a :class:`VerificationJob`
    executed through the :class:`~repro.engine.pool.WorkerPool` — analyzer
    runs are process-isolated, hard-preempted at their deadline, cached by
    canonical structural hash, and logged as JSONL lifecycle events.  Row
    assembly is deterministic regardless of completion order.
    """
    specs = _instance_specs(problems, sizes)
    if jobs <= 1 and cache is None and events is None:
        return [
            run_instance(
                problem, size, budget=budget, analyzers=analyzers, reduce=reduce
            )
            for problem, size in specs
        ]

    wanted = [name for name in _ANALYZER_ORDER if name in set(analyzers)]
    job_budget = budget if budget is not None else Budget()
    job_list: list[VerificationJob] = []
    keys: list[tuple[str, int, str]] = []
    for problem, size in specs:
        net = PROBLEMS[problem](size)
        for name in wanted:
            job_list.append(
                VerificationJob(
                    net=net, method=name, budget=job_budget, reduce=reduce
                )
            )
            keys.append((problem, size, name))
    pool = WorkerPool(max_workers=jobs, cache=cache, events=events)
    outcomes = pool.run(job_list)
    per_instance: dict[tuple[str, int], dict[str, AnalysisResult]] = {}
    for (problem, size, name), outcome in zip(keys, outcomes):
        per_instance.setdefault((problem, size), {})[name] = outcome.result
    return [
        _assemble_row(problem, size, per_instance.get((problem, size), {}))
        for problem, size in specs
    ]


def format_table1(
    rows: Iterable[Table1Row],
    *,
    with_paper: bool = True,
    with_stats: bool = False,
) -> str:
    """Render measured rows, optionally side by side with the 1998 values.

    ``with_stats`` appends the instrumentation columns (full states/sec,
    stubborn reduction ratio, stubborn closure-loop iterations, mean GPO
    scenario-family size, and the net's P/T/A sizes — shown as
    ``pre->post`` when a structural reduction ran) to the measured table
    only — the paper published none of these.
    """
    rows = list(rows)
    headers = [
        "Problem",
        "States",
        "PO-St",
        "PO-t(s)",
        "BDD-peak",
        "BDD-t(s)",
        "GPO-St",
        "GPO-t(s)",
        "dead",
    ]
    measured_headers = headers + (
        ["full-St/s", "PO-ratio", "PO-iter", "GPO-scen", "net P/T/A"]
        if with_stats
        else []
    )
    out = format_table(
        measured_headers,
        [row.cells(with_stats=with_stats) for row in rows],
        title="Table 1 (measured; '-' = budget exceeded)",
    )
    if with_paper:
        paper_rows = []
        for row in rows:
            key = (row.problem, row.size)
            if key not in PAPER_TABLE1:
                continue
            full, spin, spin_t, smv, smv_t, gpo_s, gpo_t = PAPER_TABLE1[key]
            paper_rows.append(
                [
                    f"{row.problem}({row.size})",
                    format_number(full),
                    format_number(spin),
                    format_number(spin_t),
                    format_number(smv),
                    format_number(smv_t),
                    format_number(gpo_s),
                    format_number(gpo_t),
                    "",
                ]
            )
        out += "\n" + format_table(
            headers,
            paper_rows,
            title="Table 1 (paper, 1998; '-' = > 24 hours)",
        )
    return out
