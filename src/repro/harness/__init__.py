"""Experiment harness: regenerate the paper's Table 1 and figures."""

from repro.harness.figures import (
    figure1_series,
    figure2_series,
    figure3_walkthrough,
    format_series,
)
from repro.harness.report import format_number, format_table
from repro.harness.runner import (
    ANALYZERS,
    Budget,
    run_analyzer,
    run_analyzer_isolated,
)
from repro.harness.table1 import (
    DEFAULT_SIZES,
    PAPER_TABLE1,
    PROBLEMS,
    Table1Row,
    format_table1,
    run_instance,
    run_table1,
)

__all__ = [
    "ANALYZERS",
    "Budget",
    "run_analyzer",
    "run_analyzer_isolated",
    "PROBLEMS",
    "DEFAULT_SIZES",
    "PAPER_TABLE1",
    "Table1Row",
    "run_instance",
    "run_table1",
    "format_table1",
    "figure1_series",
    "figure2_series",
    "figure3_walkthrough",
    "format_series",
    "format_table",
    "format_number",
]
