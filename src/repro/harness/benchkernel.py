"""The ``gpo bench-kernel`` micro-benchmark: kernel vs reference path.

Runs the full and stubborn-set analyzers over the Table 1 benchmark
families twice per instance — once on the frozenset *reference* rules
(``use_kernel=False``) and once on the compiled bitmask
:class:`~repro.net.kernel.MarkingKernel` — and reports states/sec plus
the speedup ratio.  Both runs must produce identical state and edge
counts (the representations are supposed to be observationally
equivalent); any disagreement fails the benchmark, which is what the CI
smoke job keys on.

The measured numbers are persisted to ``BENCH_kernel.json`` so the
README's performance note and regressions across commits have a stable
artifact to diff.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Mapping

import repro.analysis.reachability as _full
import repro.stubborn.explorer as _stubborn
from repro.analysis.stats import AnalysisResult
from repro.harness.table1 import PROBLEMS
from repro.net.petrinet import PetriNet
from repro.obs import names
from repro.obs.benchmeta import stamp_bench

__all__ = [
    "BENCH_SIZES",
    "QUICK_SIZES",
    "BenchRow",
    "run_bench",
    "format_bench",
    "write_bench",
]

#: Mid-size Table 1 instances: big enough for stable rates, small enough
#: that the whole benchmark stays under a couple of minutes.
BENCH_SIZES: Mapping[str, int] = {
    "NSDP": 8,
    "ASAT": 4,
    "OVER": 5,
    "RW": 12,
}

#: Sizes for ``--quick`` (CI smoke): each instance explores in well under
#: a second per run, so only count equality is meaningful — not speedup.
QUICK_SIZES: Mapping[str, int] = {
    "NSDP": 4,
    "ASAT": 2,
    "OVER": 3,
    "RW": 6,
}

_ANALYZERS: Mapping[str, Callable[..., AnalysisResult]] = {
    "full": _full.analyze,
    "stubborn": _stubborn.analyze,
}


@dataclass(frozen=True)
class BenchRow:
    """One (instance, analyzer) measurement of both paths."""

    problem: str
    size: int
    analyzer: str
    states: int
    edges: int
    deadlock: bool
    ref_seconds: float
    kernel_seconds: float
    ref_states_per_second: float
    kernel_states_per_second: float
    speedup: float
    counts_match: bool
    #: Stubborn-phase breakdown of the kernelized run (``None`` for the
    #: full explorer): wall seconds inside stubborn-set construction and
    #: total closure-loop iterations — where the kernel-native tables pay.
    set_seconds: float | None = None
    closure_iterations: int | None = None


def _best_time(
    run: Callable[[], AnalysisResult], repetitions: int
) -> tuple[AnalysisResult, float]:
    """Best-of-N wall time of ``run`` (minimum filters scheduler noise)."""
    best = float("inf")
    result: AnalysisResult | None = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    assert result is not None
    return result, best


def _bench_instance(
    net: PetriNet, problem: str, size: int, repetitions: int
) -> list[BenchRow]:
    # Build the shared per-net artifacts outside the timed region: both
    # paths use them, and the kernel compile is a one-off per net.
    net.kernel()
    net.static_analysis()
    rows: list[BenchRow] = []
    for analyzer, analyze in _ANALYZERS.items():
        reference, ref_seconds = _best_time(
            lambda a=analyze: a(net, use_kernel=False, want_witness=False),
            repetitions,
        )
        kernelized, kernel_seconds = _best_time(
            lambda a=analyze: a(net, use_kernel=True, want_witness=False),
            repetitions,
        )
        counts_match = (
            reference.states == kernelized.states
            and reference.edges == kernelized.edges
            and reference.deadlock == kernelized.deadlock
        )
        set_seconds = kernelized.extras.get(names.STUBBORN_SET_SECONDS)
        closure_iterations = kernelized.extras.get(
            names.STUBBORN_CLOSURE_ITERATIONS
        )
        rows.append(
            BenchRow(
                problem=problem,
                size=size,
                analyzer=analyzer,
                states=reference.states,
                edges=reference.edges,
                deadlock=reference.deadlock,
                ref_seconds=round(ref_seconds, 6),
                kernel_seconds=round(kernel_seconds, 6),
                ref_states_per_second=round(
                    reference.states / ref_seconds, 1
                ),
                kernel_states_per_second=round(
                    kernelized.states / kernel_seconds, 1
                ),
                speedup=round(ref_seconds / kernel_seconds, 2),
                counts_match=counts_match,
                set_seconds=(
                    round(set_seconds, 6) if set_seconds is not None else None
                ),
                closure_iterations=closure_iterations,
            )
        )
    return rows


def run_bench(
    *,
    quick: bool = False,
    problems: list[str] | None = None,
    repetitions: int | None = None,
) -> list[BenchRow]:
    """Measure every family (or ``problems``) with both paths.

    ``quick`` switches to the small CI sizes with one repetition;
    otherwise each run is best-of-3.
    """
    sizes = QUICK_SIZES if quick else BENCH_SIZES
    if repetitions is None:
        repetitions = 1 if quick else 3
    rows: list[BenchRow] = []
    for problem in problems or list(sizes):
        size = sizes[problem]
        net = PROBLEMS[problem](size)
        rows.extend(_bench_instance(net, problem, size, repetitions))
    return rows


def format_bench(rows: list[BenchRow]) -> str:
    """Human-readable table of the measurements.

    Stubborn rows carry two extra columns — the fraction of the
    kernelized run spent building stubborn sets, and the closure-loop
    iteration count — blank for the full explorer, which has no
    stubborn phase.
    """
    header = (
        f"{'instance':12s} {'analyzer':9s} {'states':>8s} "
        f"{'ref/s':>10s} {'kernel/s':>10s} {'speedup':>8s} {'counts':>7s} "
        f"{'set%':>6s} {'clos-it':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if row.set_seconds is not None and row.kernel_seconds > 0:
            set_pct = f"{100 * row.set_seconds / row.kernel_seconds:5.1f}%"
        else:
            set_pct = "-"
        closure = (
            str(row.closure_iterations)
            if row.closure_iterations is not None
            else "-"
        )
        lines.append(
            f"{row.problem + '(' + str(row.size) + ')':12s} "
            f"{row.analyzer:9s} {row.states:8d} "
            f"{row.ref_states_per_second:10.0f} "
            f"{row.kernel_states_per_second:10.0f} "
            f"{row.speedup:7.2f}x "
            f"{'ok' if row.counts_match else 'MISMATCH':>7s} "
            f"{set_pct:>6s} {closure:>9s}"
        )
    return "\n".join(lines)


def write_bench(rows: list[BenchRow], path: str | Path) -> None:
    """Persist the measurements as the ``BENCH_kernel.json`` artifact.

    The payload carries the shared ``meta`` stamp (host, commit, python,
    cpu count — see :func:`repro.obs.benchmeta.stamp_bench`) so any two
    artifacts can be compared by ``gpo bench-diff`` with provenance; the
    legacy top-level ``python``/``machine`` keys stay for old readers.
    """
    payload = {
        "benchmark": "marking-kernel",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": [asdict(row) for row in rows],
    }
    Path(path).write_text(
        json.dumps(stamp_bench(payload), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
