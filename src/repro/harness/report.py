"""Plain-text table rendering for the experiment harness.

Deliberately dependency-free: the harness prints the same kind of ASCII
tables the paper publishes, suitable for terminals, logs and EXPERIMENTS.md
code blocks.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_number"]


def format_number(value: float | int | None, *, digits: int = 2) -> str:
    """Render counts/times compactly: ``1234``, ``1.86e6``, ``0.05``, ``-``."""
    if value is None:
        return "-"
    if isinstance(value, int):
        if abs(value) >= 1_000_000:
            return f"{value:.2e}".replace("e+0", "e").replace("e+", "e")
        return str(value)
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table with a header rule."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        out.append(line(row))
    return "\n".join(out) + "\n"
