"""In-process profiling runs over the benchmark families (``gpo profile``).

Runs one analyzer on one Table 1 instance with the full observability
stack active — span tracing, the metrics registry, optionally
tracemalloc memory attribution — then prints the span-tree summary and
writes whichever export artifacts were requested (Chrome ``trace_event``
JSON for ``chrome://tracing`` / Perfetto, Prometheus text exposition,
raw JSONL trace records).

Unlike the engine-backed commands this deliberately runs **in-process**
(no worker fork): the point is a single coherent trace of one run, not
isolation.  The :func:`observed` context manager is the lighter variant
behind the ``--trace`` / ``--metrics`` flags of ``check`` / ``table1`` /
``bench-kernel`` — it activates a tracer around an existing command and
exports on the way out.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator, TextIO

from repro.engine.jobs import ANALYZERS, Budget, VerificationJob, execute_job
from repro.harness.table1 import PROBLEMS
from repro.obs.exporters import (
    write_chrome_trace,
    write_jsonl_trace,
    write_prometheus,
)
from repro.obs.context import new_trace_context, use_context
from repro.obs.summary import format_summary
from repro.obs.tracer import Tracer, activate

__all__ = ["PROFILE_ANALYZERS", "observed", "run_profile"]

#: Analyzer names ``gpo profile`` accepts: the engine's five plus the
#: timed analyzer (run on the family's untimed skeleton, every
#: transition given the unconstrained interval ``[0, inf)``).
PROFILE_ANALYZERS: tuple[str, ...] = (*sorted(ANALYZERS), "timed")


def _export(
    tracer: Tracer,
    *,
    trace_out: str | None,
    metrics_out: str | None,
    jsonl_out: str | None,
    stream: TextIO,
) -> None:
    records = tracer.records()
    if trace_out:
        write_chrome_trace(trace_out, records)
        print(f"[profile] wrote Chrome trace: {trace_out}", file=stream)
    if metrics_out:
        write_prometheus(metrics_out, tracer.metrics)
        print(f"[profile] wrote metrics: {metrics_out}", file=stream)
    if jsonl_out:
        count = write_jsonl_trace(jsonl_out, records)
        print(
            f"[profile] wrote {count} JSONL trace records: {jsonl_out}",
            file=stream,
        )
    if tracer.dropped:
        print(
            f"[profile] warning: {tracer.dropped} span(s) dropped "
            f"(max_spans={tracer.max_spans})",
            file=stream,
        )


@contextmanager
def observed(
    *,
    trace_out: str | None = None,
    metrics_out: str | None = None,
    jsonl_out: str | None = None,
    memory: bool = False,
    summary: bool = False,
    stream: TextIO | None = None,
) -> Iterator[Tracer | None]:
    """Activate a tracer around a block and export artifacts on exit.

    Yields the tracer, or ``None`` (and stays a no-op) when nothing was
    requested — so command code can wrap itself unconditionally.
    """
    if not (trace_out or metrics_out or jsonl_out or summary):
        yield None
        return
    out = stream if stream is not None else sys.stdout
    tracer = Tracer(memory=memory)
    # One observed command is one logical request: its exported trace and
    # JSONL events carry one freshly minted trace_id.
    with activate(tracer), use_context(new_trace_context()):
        yield tracer
    if summary:
        print(format_summary(tracer.records(), tracer.metrics), file=out)
    _export(
        tracer,
        trace_out=trace_out,
        metrics_out=metrics_out,
        jsonl_out=jsonl_out,
        stream=out,
    )


def run_profile(
    family: str,
    size: int,
    *,
    analyzer: str = "gpo",
    max_states: int | None = 200_000,
    max_seconds: float | None = 120.0,
    memory: bool = False,
    trace_out: str | None = None,
    metrics_out: str | None = None,
    jsonl_out: str | None = None,
    stream: TextIO | None = None,
) -> int:
    """Profile one analyzer on one family instance; returns an exit code.

    ``family`` is case-insensitive (``nsdp`` / ``NSDP``).  Exit status
    mirrors ``gpo verify``: 1 when a deadlock was found, else 0.
    """
    out = stream if stream is not None else sys.stdout
    key = family.upper()
    if key not in PROBLEMS:
        print(
            f"unknown family {family!r}; choose from "
            f"{', '.join(sorted(PROBLEMS))}",
            file=sys.stderr,
        )
        return 2
    if analyzer not in PROFILE_ANALYZERS:
        print(
            f"unknown analyzer {analyzer!r}; choose from "
            f"{', '.join(PROFILE_ANALYZERS)}",
            file=sys.stderr,
        )
        return 2
    net = PROBLEMS[key](size)
    tracer = Tracer(memory=memory)
    with activate(tracer), use_context(new_trace_context()):
        if analyzer == "timed":
            from repro.timed import analyze as timed_analyze
            from repro.timed.tpn import TimedPetriNet

            tpn = TimedPetriNet(net, [(0, None)] * net.num_transitions)
            result = timed_analyze(
                tpn, max_classes=max_states, max_seconds=max_seconds
            )
        else:
            job = VerificationJob(
                net=net,
                method=analyzer,
                budget=Budget(max_states=max_states, max_seconds=max_seconds),
            )
            result = execute_job(job)
    print(result.describe(), file=out)
    print(file=out)
    print(format_summary(tracer.records(), tracer.metrics), file=out)
    _export(
        tracer,
        trace_out=trace_out,
        metrics_out=metrics_out,
        jsonl_out=jsonl_out,
        stream=out,
    )
    return 1 if result.deadlock else 0
