"""The generalized partial-order reachability analysis (paper §3.3).

Explores GPN states with the paper's three-regime priority:

1. report a *deadlock possibility* when some valid scenario enables no
   transition (``⋃_t s_enabled(t,s) ≠ r``) and stop that branch (the
   paper's pseudocode; configurable);
2. fire the union of all *candidate MCSs* simultaneously with the multiple
   firing rule — this is the generalization that collapses concurrently
   marked conflict places into one successor state;
3. otherwise fall back to single firing with classical partial-order
   anticipation (branch over one fully single-enabled MCS), or, failing
   that, over every single-enabled transition.

The explored graph is tiny for the paper's benchmarks (3 states for NSDP
regardless of size, 2 for RW) while each state covers exponentially many
classical markings through the Def. 3.4 mapping.

The depth-first walk itself runs on the generic driver in
:mod:`repro.search.core`; :class:`GpnSpace` supplies the successor regimes
and uses the driver-maintained DFS path
(:meth:`~repro.search.core.SearchContext.on_current_path`) to detect the
back-edges that trigger the anti-ignoring expansions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal

from repro.analysis.stats import AnalysisResult, DeadlockWitness, stopwatch
from repro.families.base import SetFamily
from repro.gpo.candidates import candidate_mcs, single_enabled_mcs
from repro.gpo.gpn import Backend, Gpn, GpnState
from repro.gpo.mapping import scenario_marking
from repro.gpo.semantics import (
    dead_scenarios,
    enabled_families,
    multiple_fire,
    single_fire,
)
from repro.net.petrinet import PetriNet
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.props.ast import Property
from repro.props.eval import (
    engine_property,
    needs_decomposition,
    property_extras,
    reject_safe,
    run_property,
)
from repro.search.core import (
    SearchContext,
    SearchOutcome,
    abort_note,
    raise_if_bounded,
)
from repro.search.core import explore as _drive
from repro.search.graph import ReachabilityGraph
from repro.search.observers import TracingObserver

__all__ = ["GpoOptions", "GpoResult", "GpnSpace", "explore_gpo", "analyze"]

OnDeadlock = Literal["stop-branch", "stop-all", "continue"]


@dataclass(frozen=True)
class GpoOptions:
    """Tuning knobs for the GPO explorer.

    ``backend`` selects the scenario-family representation; ``on_deadlock``
    controls what happens when a state fails the §3.3 deadlock check
    (``"stop-branch"`` reproduces the paper's pseudocode, ``"continue"``
    keeps exploring the surviving scenarios, ``"stop-all"`` aborts the
    whole search at the first hit); ``validate`` re-checks the candidate
    preservation condition semantically after every multiple firing (slow;
    used by the test-suite).  ``max_seconds`` is a cooperative wall-clock
    budget checked once per visited state.
    """

    backend: Backend = "bdd"
    on_deadlock: OnDeadlock = "stop-branch"
    max_states: int | None = None
    max_seconds: float | None = None
    validate: bool = False


@dataclass
class GpoResult:
    """Raw outcome of a GPO exploration."""

    gpn: Gpn
    graph: ReachabilityGraph[GpnState]
    deadlock_states: list[tuple[GpnState, SetFamily]] = field(
        default_factory=list
    )

    @property
    def has_deadlock(self) -> bool:
        """True when any state failed the deadlock check."""
        return bool(self.deadlock_states)

    def witnesses(self, *, limit: int | None = 1) -> list[DeadlockWitness]:
        """Concrete deadlocked classical markings with GPN-level traces.

        Each witness decodes one dead scenario of a failing state into the
        classical marking it maps to (Def. 3.4).  Trace steps are the fired
        transition labels along the GPN path; multiple firings render as
        ``{a,b,...}``.
        """
        out: list[DeadlockWitness] = []
        for state, dead in self.deadlock_states:
            scenario = dead.any_set()
            if scenario is None:
                continue
            marking = scenario_marking(self.gpn, state, scenario)
            path = self.graph.path_to(state) or []
            out.append(
                DeadlockWitness(
                    marking=self.gpn.net.marking_names(marking),
                    trace=tuple(label for label, _ in path),
                )
            )
            if limit is not None and len(out) >= limit:
                break
        return out


class GpnSpace:
    """The §3.3 successor regimes as a :class:`SearchSpace` over GPN states.

    ``is_deadlock`` runs the scenario deadlock check and collects the
    failing states with their dead-scenario families; ``successors``
    applies the candidate-multiple-firing / single-firing priority, with
    the anti-ignoring expansions (footnote 2) keyed on the driver's DFS
    path.  The per-state enabled/dead families are memoized so the two
    hooks share one computation.

    ``uses_kernel`` is True because the firing semantics walk the net
    through the compiled :class:`~repro.net.kernel.MarkingKernel` index
    tables (states themselves stay family tuples — there is no packed
    representation for scenario families).
    """

    uses_kernel = True

    def __init__(self, gpn: Gpn, options: GpoOptions) -> None:
        self.gpn = gpn
        self.options = options
        self.deadlock_states: list[tuple[GpnState, SetFamily]] = []
        self.scenario_states = 0
        self.scenario_total = 0
        self.scenario_max = 0
        self._memo_state: GpnState | None = None
        self._memo: tuple[dict, dict, SetFamily] | None = None
        # Null instrument unless a tracer is active at construction time;
        # observing on it is a no-op method call per expanded state.
        self._scenario_sizes = current_tracer().metrics.histogram(
            names.SCENARIO_SET_SIZE
        )

    def initial(self) -> GpnState:
        return self.gpn.initial_state()

    def _families(self, state: GpnState) -> tuple[dict, dict, SetFamily]:
        if state is not self._memo_state:
            single, multiple = enabled_families(self.gpn, state)
            dead = dead_scenarios(self.gpn, state, single)
            self._memo = (single, multiple, dead)
            self._memo_state = state
        assert self._memo is not None
        return self._memo

    def is_deadlock(self, state: GpnState) -> bool:
        count = state.valid.count()
        self.scenario_states += 1
        self.scenario_total += count
        self._scenario_sizes.observe(count)
        if count > self.scenario_max:
            self.scenario_max = count
        _, _, dead = self._families(state)
        if dead.is_empty():
            return False
        self.deadlock_states.append((state, dead))
        return True

    def successors(
        self, state: GpnState, ctx: SearchContext[GpnState]
    ) -> Iterable[tuple[str, GpnState]]:
        single, multiple, dead = self._families(state)
        if not dead.is_empty() and self.options.on_deadlock == "stop-branch":
            return
        gpn = self.gpn

        candidates = _viable_candidates(
            gpn, state, candidate_mcs(gpn, multiple), single, multiple
        )
        if candidates:
            fired, successor = candidates
            if self.options.validate:
                _validate_candidate_preservation(
                    gpn, state, fired, successor, single, multiple
                )
            yield gpn.set_label(fired), successor

            # Footnote 2's "not postponed forever" check (the ignoring
            # problem): when the multiple firing closes a cycle of the
            # current DFS path (a back-edge), postponed single-enabled
            # transitions might never fire along that cycle; expand them
            # here so every cycle has a state where they proceed.
            if ctx.on_current_path(successor):
                for t in sorted(single):
                    if t in fired:
                        continue
                    yield gpn.transition_label(t), single_fire(gpn, state, t)
            return

        component = single_enabled_mcs(gpn, single)
        targets = sorted(component) if component is not None else sorted(single)
        back_edge = False
        for t in targets:
            successor = single_fire(gpn, state, t)
            yield gpn.transition_label(t), successor
            back_edge = back_edge or ctx.on_current_path(successor)
        if back_edge and component is not None:
            # Same anti-ignoring expansion for the single-firing regime:
            # a cycle closed while other enabled transitions were
            # postponed outside the chosen component.
            for t in sorted(single):
                if t in component:
                    continue
                yield gpn.transition_label(t), single_fire(gpn, state, t)

    def instrumentation(self) -> dict[str, object]:
        """Scenario-family sizes over the expanded GPN states."""
        if not self.scenario_states:
            return {}
        return {
            names.MEAN_SCENARIOS: round(
                self.scenario_total / self.scenario_states, 3
            ),
            names.MAX_SCENARIOS: self.scenario_max,
        }


def _explore(
    net: PetriNet, options: GpoOptions
) -> tuple[GpoResult, SearchOutcome[GpnState], GpnSpace]:
    """Drive the GPO space; shared by :func:`explore_gpo` and :func:`analyze`."""
    gpn = Gpn(net, backend=options.backend)
    space = GpnSpace(gpn, options)
    tracer = current_tracer()
    observers = (TracingObserver(tracer),) if tracer.enabled else ()
    outcome = _drive(
        space,
        order="dfs",
        max_states=options.max_states,
        max_seconds=options.max_seconds,
        stop_at_first_deadlock=options.on_deadlock == "stop-all",
        observers=observers,
    )
    result = GpoResult(gpn, outcome.graph, space.deadlock_states)
    return result, outcome, space


def explore_gpo(
    net: PetriNet, options: GpoOptions | None = None
) -> GpoResult:
    """Run the §3.3 algorithm to completion (or to the first deadlock).

    Raises on budget overruns like the classical ``explore`` wrappers;
    ``analyze`` uses the driver's partial results instead.
    """
    if options is None:
        options = GpoOptions()
    result, outcome, _ = _explore(net, options)
    raise_if_bounded(
        outcome,
        max_states=options.max_states,
        max_seconds=options.max_seconds,
    )
    return result


def _preserves_enabled(
    gpn: Gpn,
    successor: GpnState,
    single: dict[int, SetFamily],
    multiple: dict[int, SetFamily],
    fired: frozenset[int],
) -> bool:
    """The paper's candidate side-condition, checked semantically.

    Firing ``fired`` must not disable any postponed transition: every
    single-enabled transition outside ``fired`` stays single-enabled and
    every multiple-enabled one stays multiple-enabled.  A violation means
    a pre-committed scenario stole a token some other execution order
    still needs (re-entrant conflicts across loop iterations); the caller
    then falls back to branching single firings, which preserve all
    interleavings.
    """
    single_after, multiple_after = enabled_families(gpn, successor)
    for t in single:
        if t not in fired and t not in single_after:
            return False
    for t in multiple:
        if t not in fired and t not in multiple_after:
            return False
    return True


def _viable_candidates(
    gpn: Gpn,
    state: GpnState,
    candidates: list[frozenset[int]],
    single: dict[int, SetFamily],
    multiple: dict[int, SetFamily],
) -> tuple[frozenset[int], GpnState] | None:
    """Select the candidate MCSs that satisfy the §3.3 side-condition.

    Each candidate is vetted individually (its firing must not disable a
    postponed enabled transition); the union of the survivors is then
    vetted as a whole.  Returns ``(fired, successor)`` — reusing the
    tentative firing — or ``None`` when no candidate is viable.
    """
    families = (single, multiple)
    viable: list[tuple[frozenset[int], GpnState]] = []
    for component in candidates:
        successor = multiple_fire(gpn, state, component, families=families)
        if _preserves_enabled(gpn, successor, single, multiple, component):
            viable.append((component, successor))
    if not viable:
        return None
    if len(viable) == 1:
        return viable[0]
    union = frozenset().union(*(component for component, _ in viable))
    successor = multiple_fire(gpn, state, union, families=families)
    if _preserves_enabled(gpn, successor, single, multiple, union):
        return (union, successor)
    # The union interferes through r' even though each candidate alone is
    # fine; fire just the first viable candidate and postpone the rest.
    return viable[0]


def _validate_candidate_preservation(
    gpn: Gpn,
    state: GpnState,
    fired: frozenset[int],
    successor: GpnState,
    single: dict[int, SetFamily],
    multiple: dict[int, SetFamily],
) -> None:
    """Semantic re-check of the candidate soundness invariants.

    1. Every multiple-enabled transition outside the fired union must stay
       multiple-enabled (its enabling family is a term of the ``r'`` union
       and its input places only gain scenarios).
    2. Every scenario leaving ``r`` must be rescuable: it either enables
       no transition at all (a dead scenario, reported by the deadlock
       check) or single-enables some *fired* transition, whose
       single-firing branch the explorer adds.

    The property-test suite runs with ``validate=True`` to falsify these
    if it can.
    """
    if not _preserves_enabled(gpn, successor, single, multiple, fired):
        raise AssertionError(
            "candidate firing disabled a postponed enabled transition"
        )
    # Note: scenarios *may* leave r here (pre-commitments that became
    # jointly infeasible).  End-to-end deadlock-verdict equivalence with
    # the full classical analysis — the property the paper's procedure
    # guarantees — is established by the property-test suite and the
    # fuzzing harness rather than a per-step assertion: the classical
    # interleavings a dying scenario stood for remain covered across the
    # other branches the explorer takes (sibling single firings, and the
    # anti-ignoring expansion on cycles).


def analyze(
    net: PetriNet,
    *,
    backend: Backend = "bdd",
    on_deadlock: OnDeadlock = "stop-branch",
    max_states: int | None = None,
    max_seconds: float | None = None,
    validate: bool = False,
    want_witness: bool = True,
    prop: "Property | str | None" = None,
) -> AnalysisResult:
    """Generalized partial-order deadlock analysis, packaged uniformly.

    ``states``/``edges`` count the explored *GPN* states (the paper's "GPO
    States" column); ``extras["scenarios"]`` is ``|r0|`` — how many
    classical choice resolutions each state tracks simultaneously.
    Budget overruns are absorbed into a bounded, non-exhaustive result
    carrying the real progress made.

    ``prop`` runs the scenario *screen* over the explored GPN states:
    every mapped marking of a GPN state is genuinely reachable, so a hit
    (a ``reachable`` target found, an ``invariant`` violated) is a sound
    conclusive verdict with a real trace — but a clean screen proves
    nothing (the reduction may skip intermediate markings), so the
    verdict stays ``None`` and the result is never exhaustive for these
    fragments (``decides("gpo", ...)`` is ``False``; the portfolio runs
    GPO only as a refutation fast path).
    """
    goal_prop = engine_property(prop)
    if goal_prop is not None and needs_decomposition(goal_prop):
        return run_property(
            goal_prop,
            lambda leaf: analyze(
                net,
                backend=backend,
                on_deadlock=on_deadlock,
                max_states=max_states,
                max_seconds=max_seconds,
                validate=validate,
                want_witness=want_witness,
                prop=leaf,
            ),
            analyzer="gpo",
            net_name=net.name,
        )
    goal_constraints = None
    goal_hit_holds = True
    goal_label = "goal"
    goal_note: str | None = None
    if goal_prop is not None:
        reject_safe("gpo", goal_prop)
        # Lazy import: repro.gpo.safety imports this module at top level.
        from repro.gpo.safety import MarkingConstraint
        from repro.props.ast import Invariant, Not
        from repro.props.compile import dnf_literals

        if isinstance(goal_prop, Invariant):
            target = Not(goal_prop.pred)
            goal_hit_holds, goal_label = False, "violation"
        else:
            target = goal_prop.pred
        cubes = dnf_literals(target)
        if cubes is None:
            goal_note = "screen skipped: target predicate has no small DNF"
        else:
            goal_constraints = [
                MarkingConstraint(marked=m, unmarked=u) for m, u in cubes
            ]
    options = GpoOptions(
        backend=backend,
        on_deadlock=on_deadlock,
        max_states=max_states,
        max_seconds=max_seconds,
        validate=validate,
    )
    tracer = current_tracer()
    with tracer.span(names.SPAN_ANALYZE, analyzer="gpo", net=net.name) as root:
        # Consult the structural certificate before exploring: when it
        # holds, UnsafeNetError is provably unreachable during the search.
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        with stopwatch() as elapsed:
            result, outcome, space = _explore(net, options)
            found = None
            if goal_constraints is not None:
                from repro.gpo.safety import _violating_scenarios

                for state in result.graph.states():
                    for constraint in goal_constraints:
                        violating = _violating_scenarios(
                            result.gpn, state, constraint
                        )
                        if not violating.is_empty():
                            found = (state, violating)
                            break
                    if found:
                        break
        witness = None
        if goal_prop is None:
            with tracer.span(names.SPAN_WITNESS):
                witnesses = result.witnesses(limit=1) if want_witness else []
                witness = witnesses[0] if witnesses else None
        elif found is not None and want_witness:
            state, violating = found
            scenario = violating.any_set()
            assert scenario is not None
            marking = scenario_marking(result.gpn, state, scenario)
            path = result.graph.path_to(state) or []
            with tracer.span(names.SPAN_WITNESS):
                witness = DeadlockWitness(
                    marking=net.marking_names(marking),
                    trace=tuple(label for label, _ in path),
                    label=goal_label,
                )
        extras: dict[str, object] = {
            "backend": backend,
            "scenarios": result.gpn.r0.count(),
            "deadlock_states": len(result.deadlock_states),
        }
        extras.update(outcome.stats.as_extras())
        extras.update(space.instrumentation())
        extras[names.SAFETY_CERTIFIED] = certified
        note = abort_note(
            outcome.stop_reason, max_states=max_states, max_seconds=max_seconds
        )
        if note is not None and not (goal_prop is not None and found):
            extras[names.ABORTED] = note
        if goal_prop is not None:
            holds = goal_hit_holds if found is not None else None
            extras.update(property_extras(goal_prop, holds))
            extras["screen"] = "hit" if found is not None else "clean"
            if goal_note is not None:
                extras["screen"] = "skipped"
                extras["screen_note"] = goal_note
        packaged = AnalysisResult(
            analyzer="gpo",
            net_name=net.name,
            states=result.graph.num_states,
            edges=result.graph.num_edges,
            deadlock=result.has_deadlock if goal_prop is None else False,
            time_seconds=elapsed[0],
            witness=witness,
            exhaustive=(
                outcome.exhaustive if goal_prop is None else found is not None
            ),
            extras=extras,
        )
        root.set(states=packaged.states, edges=packaged.edges)
    record_result(packaged)
    return packaged
