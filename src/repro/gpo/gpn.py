"""Generalized Petri Nets (paper Definition 3.1) and their states.

A GPN shares the structure ``(P, T, F)`` of a safe Petri net but marks
places with *families of transition sets* and carries the family ``r`` of
valid transition sets.  Each valid set — we call it a *scenario* — is a
maximal conflict-free subset of ``T``: a complete resolution of every
choice in the net (see DESIGN.md §1.2 for why the maximal reading is the
one the paper's worked examples use).

A GPN state ``⟨m, r⟩`` then compactly represents the *set* of classical
markings ``{ {p | v ∈ m(p)} : v ∈ r }`` (Definition 3.4), which is how one
GPN state can stand for exponentially many interleaved outcomes.
"""

from __future__ import annotations

from typing import Iterator, Literal

from repro.families.base import FamilyContext, SetFamily
from repro.families.bddfam import BddContext
from repro.families.explicit import ExplicitContext
from repro.net.petrinet import PetriNet
from repro.net.structure import StructuralInfo

__all__ = ["Gpn", "GpnState", "Backend"]

Backend = Literal["bdd", "explicit"]


class GpnState:
    """Immutable GPN state: per-place families plus the valid family ``r``.

    Hashable value object; with the BDD backend hashing reduces to node
    ids, making state dedup in the explorer O(|P|).
    """

    __slots__ = ("marking", "valid", "_hash")

    def __init__(self, marking: tuple[SetFamily, ...], valid: SetFamily) -> None:
        self.marking = marking
        self.valid = valid
        self._hash: int | None = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GpnState):
            return NotImplemented
        return self.valid == other.valid and self.marking == other.marking

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.marking, self.valid))
        return self._hash

    def __repr__(self) -> str:
        non_empty = sum(1 for f in self.marking if not f.is_empty())
        return (
            f"GpnState(marked_places={non_empty}, "
            f"scenarios={self.valid.count()})"
        )


class Gpn:
    """A Generalized Petri Net bound to a family backend.

    Wraps the underlying safe net with its structural analysis (conflict
    graph, maximal conflict sets) and the family context, and constructs
    the paper's initial state::

        m0_G(p) = r0  if p ∈ m0, else {}
        r0      = maximal independent sets of the conflict graph

    >>> from repro.models.figures import choice_net
    >>> gpn = Gpn(choice_net(), backend="explicit")
    >>> gpn.r0.count()   # scenarios: choose a or choose b
    2
    """

    def __init__(self, net: PetriNet, *, backend: Backend = "bdd") -> None:
        self.net = net
        self.kernel = net.kernel()
        self.info = StructuralInfo(net)
        if backend == "bdd":
            self.ctx: FamilyContext = BddContext(net.num_transitions)
        elif backend == "explicit":
            self.ctx = ExplicitContext(net.num_transitions)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.r0 = self.ctx.maximal_independent_sets(self.info.adjacency)

    def initial_state(self) -> GpnState:
        """The paper's §3.3 initial GPN state ``⟨m0_G, r0⟩``."""
        empty = self.ctx.empty()
        marking = tuple(
            self.r0 if p in self.net.initial_marking else empty
            for p in range(self.net.num_places)
        )
        return GpnState(marking, self.r0)

    # ------------------------------------------------------------------
    def transition_label(self, t: int) -> str:
        """Name of transition ``t`` (for edge labels and reports)."""
        return self.net.transitions[t]

    def set_label(self, transitions: frozenset[int]) -> str:
        """Render a simultaneously fired set, e.g. ``{A0,B0,A1,B1}``."""
        return "{" + ",".join(
            sorted(self.net.transitions[t] for t in transitions)
        ) + "}"

    def scenario_label(self, scenario: frozenset[int]) -> str:
        """Render a scenario as a transition-name set."""
        return "{" + ",".join(
            sorted(self.net.transitions[t] for t in scenario)
        ) + "}"

    def iter_place_families(
        self, state: GpnState
    ) -> Iterator[tuple[str, SetFamily]]:
        """(place name, family) pairs for non-empty places — debugging aid."""
        for p, family in enumerate(state.marking):
            if not family.is_empty():
                yield (self.net.places[p], family)
