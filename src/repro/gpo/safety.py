"""Safety-property checking built around generalized partial-order analysis.

The paper (§4) notes that its results "are also valid for safety checks,
since the verification of a safety property can always be reduced to a
check for deadlock" [Godefroid-Wolper] — i.e. via instrumentation that
makes the property *visible* to the reduction.  This module implements a
sound and practical pipeline around that observation:

* **GPO screening** (refutation): bad-state constraints are evaluated
  against every explored GPN state through the scenario algebra — the
  scenarios placing a state inside a constraint are
  ``⋂ m(p_marked) ∩ r \\ ⋃ m(p_unmarked)``, pure family operations.
  Because every mapped marking of a GPN state is classically reachable
  (a property-tested invariant), **any violation found this way is
  real** and comes with a trace.  The converse does not hold: the
  reduction may skip intermediate markings the property observes, so a
  clean screen is *not* a proof (the test-suite pins a concrete example).
* **Symbolic certification** (proof): the exact reachable set is computed
  with the BDD engine and intersected with the constraints; empty
  intersection certifies safety, otherwise the witness marking is decoded.

:func:`check_safety` runs the screen first and certifies with the exact
check only when the screen is clean, so easy violations pay only GPO
prices.  :func:`monitor_net` additionally provides the paper's
instrumentation form — a monitor transition that fires exactly on the bad
pattern, making the property visible to any analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.stats import DeadlockWitness, stopwatch
from repro.families.base import SetFamily
from repro.gpo.analysis import GpoOptions, explore_gpo
from repro.gpo.gpn import Gpn, GpnState
from repro.gpo.mapping import scenario_marking
from repro.net.petrinet import PetriNet

__all__ = [
    "MarkingConstraint",
    "SafetyResult",
    "check_safety",
    "screen_safety",
    "mutual_exclusion_constraints",
    "monitor_net",
]


@dataclass(frozen=True)
class MarkingConstraint:
    """A conjunctive marking pattern: the "bad state" building block.

    The constraint is satisfied by a marking iff every place in ``marked``
    holds a token and no place in ``unmarked`` does.  A safety property is
    violated when any constraint of the checked disjunction is reachable.

    >>> MarkingConstraint(marked=("cs0", "cs1")).describe()
    'cs0 & cs1'
    """

    marked: tuple[str, ...] = ()
    unmarked: tuple[str, ...] = ()

    def describe(self) -> str:
        """Render as a conjunction, e.g. ``cs0 & cs1 & !lock``."""
        parts = list(self.marked) + [f"!{p}" for p in self.unmarked]
        return " & ".join(parts) if parts else "true"

    def holds_in(self, marking_names: frozenset[str]) -> bool:
        """Direct evaluation on a classical marking (for cross-checks)."""
        return all(p in marking_names for p in self.marked) and not any(
            p in marking_names for p in self.unmarked
        )


@dataclass
class SafetyResult:
    """Outcome of a safety check."""

    safe: bool
    constraint: MarkingConstraint | None = None
    witness: DeadlockWitness | None = None
    states_explored: int = 0
    time_seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.safe

    def describe(self) -> str:
        if self.safe:
            return (
                f"safe: no bad marking reachable "
                f"(states={self.states_explored}, "
                f"time={self.time_seconds:.3f}s)"
            )
        assert self.constraint is not None
        return (
            f"UNSAFE: reachable marking satisfies "
            f"[{self.constraint.describe()}] — {self.witness}"
        )


def _violating_scenarios(
    gpn: Gpn, state: GpnState, constraint: MarkingConstraint
) -> SetFamily:
    """Scenarios of ``state`` whose induced marking satisfies ``constraint``."""
    family = state.valid
    for place in constraint.marked:
        family = family.intersect(state.marking[gpn.net.place_id(place)])
        if family.is_empty():
            return family
    for place in constraint.unmarked:
        family = family.difference(state.marking[gpn.net.place_id(place)])
        if family.is_empty():
            return family
    return family


#: Default GPN-state budget for the refutation screen: the screen is a
#: best-effort fast path, so a blow-up simply hands over to certification.
SCREEN_BUDGET = 2000


def screen_safety(
    net: PetriNet,
    bad: Sequence[MarkingConstraint],
    *,
    options: GpoOptions | None = None,
) -> SafetyResult | None:
    """GPO-based refutation screen.

    Explores the GPN state space (the paper's stop-on-deadlock-report
    regime, bounded by :data:`SCREEN_BUDGET` states) and screens every
    state against every constraint through the family algebra.  Returns an
    *unsafe* :class:`SafetyResult` with a decoded witness when a violation
    is found, or ``None`` when the screen is clean or over budget — which
    is **not** a safety proof; see :func:`check_safety`.
    """
    from repro.analysis.stats import ExplorationLimitReached

    if options is None:
        options = GpoOptions(max_states=SCREEN_BUDGET)
    with stopwatch() as elapsed:
        try:
            result = explore_gpo(net, options)
        except ExplorationLimitReached:
            return None
        found: tuple[GpnState, MarkingConstraint, SetFamily] | None = None
        for state in result.graph.states():
            for constraint in bad:
                violating = _violating_scenarios(result.gpn, state, constraint)
                if not violating.is_empty():
                    found = (state, constraint, violating)
                    break
            if found:
                break

    if found is None:
        return None
    state, constraint, violating = found
    scenario = violating.any_set()
    assert scenario is not None
    marking = scenario_marking(result.gpn, state, scenario)
    path = result.graph.path_to(state) or []
    witness = DeadlockWitness(
        marking=net.marking_names(marking),
        trace=tuple(label for label, _ in path),
        label="bad marking",
    )
    return SafetyResult(
        safe=False,
        constraint=constraint,
        witness=witness,
        states_explored=result.graph.num_states,
        time_seconds=elapsed[0],
        extras={"engine": "gpo-screen"},
    )


def _constraint_bdd(symnet, constraint: MarkingConstraint) -> int:
    """Characteristic BDD (current variables) of a marking constraint."""
    mgr = symnet.mgr
    node = mgr.and_all(
        mgr.var(symnet.current[symnet.net.place_id(p)])
        for p in constraint.marked
    )
    for p in constraint.unmarked:
        node = mgr.and_(
            node, mgr.nvar(symnet.current[symnet.net.place_id(p)])
        )
    return node


def check_safety(
    net: PetriNet,
    bad: Sequence[MarkingConstraint],
    *,
    options: GpoOptions | None = None,
    screen: bool = True,
) -> SafetyResult:
    """Sound safety check: GPO refutation screen + symbolic certification.

    1. When ``screen`` is on, :func:`screen_safety` looks for a violation
       along the generalized partial-order exploration; a hit returns
       immediately with a real witness and trace.
    2. Otherwise the exact reachable set is computed symbolically and
       intersected with every constraint: an empty intersection *proves*
       safety; a non-empty one decodes a violating marking (no trace —
       forward symbolic reachability does not retain one).
    """
    from repro.bdd.manager import ZERO
    from repro.bdd.ops import any_model
    from repro.symbolic.reach import reach

    if screen:
        refuted = screen_safety(net, bad, options=options)
        if refuted is not None:
            return refuted

    with stopwatch() as elapsed:
        result = reach(net)
        symnet = result.symnet
        for constraint in bad:
            overlap = symnet.mgr.and_(
                result.reached, _constraint_bdd(symnet, constraint)
            )
            if overlap != ZERO:
                model = any_model(
                    symnet.mgr, overlap, sorted(symnet.current_levels())
                )
                assert model is not None
                marking = symnet.decode_model(model)
                return SafetyResult(
                    safe=False,
                    constraint=constraint,
                    witness=DeadlockWitness(
                        marking=net.marking_names(marking),
                        trace=(),
                        label="bad marking",
                    ),
                    states_explored=result.num_states,
                    time_seconds=elapsed[0],
                    extras={"engine": "symbolic"},
                )
    return SafetyResult(
        safe=True,
        states_explored=result.num_states,
        time_seconds=elapsed[0],
        extras={"engine": "symbolic", "certified": True},
    )


def mutual_exclusion_constraints(
    places: Iterable[str],
) -> list[MarkingConstraint]:
    """Bad-state constraints for pairwise mutual exclusion.

    >>> [c.describe() for c in mutual_exclusion_constraints(["a", "b"])]
    ['a & b']
    """
    ordered = sorted(places)
    return [
        MarkingConstraint(marked=(ordered[i], ordered[j]))
        for i in range(len(ordered))
        for j in range(i + 1, len(ordered))
    ]


def monitor_net(
    net: PetriNet,
    constraint: MarkingConstraint,
    *,
    monitor_prefix: str = "__monitor__",
) -> tuple[PetriNet, str]:
    """Instrument ``net`` so reaching the bad pattern fires a monitor.

    Adds a transition consuming every ``constraint.marked`` place (plus a
    fresh armed-monitor place) into a fresh goal place.  Constraints with
    ``unmarked`` places cannot be observed by a plain transition (nets
    test presence, not absence) and are rejected.

    Returns ``(instrumented_net, monitor_transition_name)``.  The property
    "constraint unreachable" becomes "monitor transition never fires" —
    checkable with :func:`repro.analysis.properties.dead_transitions` or
    any reachability analyzer.  Note the monitor *consumes* the bad
    marking; use it for one-shot checks, not behaviour-preserving
    composition.
    """
    if constraint.unmarked:
        raise ValueError(
            "monitor_net supports only positive constraints "
            "(nets cannot test token absence)"
        )
    if not constraint.marked:
        raise ValueError("constraint must name at least one place")
    from repro.net.petrinet import NetBuilder

    builder = NetBuilder(net.name + "_monitored")
    for p, place in enumerate(net.places):
        builder.place(place, marked=p in net.initial_marking)
    armed = builder.place(monitor_prefix + "armed", marked=True)
    goal = builder.place(monitor_prefix + "goal")
    for t, transition in enumerate(net.transitions):
        builder.transition(
            transition,
            inputs=[net.places[p] for p in sorted(net.pre_places[t])],
            outputs=[net.places[p] for p in sorted(net.post_places[t])],
        )
    monitor_name = monitor_prefix + "fire"
    builder.transition(
        monitor_name,
        inputs=list(constraint.marked) + [armed],
        outputs=[goal],
    )
    return builder.build(), monitor_name
