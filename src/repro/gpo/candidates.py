"""Selection of candidate MCSs and single-firing persistent sets (§3.3).

The analysis procedure prioritizes three regimes per state:

1. **candidate MCSs** — maximal sets of *conflicting, multiple-enabled*
   transitions (§2.3's "maximal set of conflicting transitions that are
   all enabled", lifted to multiple enabling): the connected components of
   the conflict graph induced on the multiple-enabled transitions.  Firing
   a candidate moves only the scenarios that *chose* each fired transition
   (Def. 3.5's ``t ∈ v`` filter), so conflicting-but-disabled transitions
   outside the candidate keep their claims: the scenarios committed to
   them stay in the input places and proceed in later states.  This is
   what lets NSDP collapse to a constant number of GPN states.

   The paper's side condition — firing a candidate must not disable any
   other multiple-enabled MCS nor any postponed single-enabled transition
   — holds structurally for these induced components: an *enabled*
   transition outside the candidate cannot share an input place with it
   (it would be in the component), and the ``r'`` update keeps every
   postponed transition's enabling family intact because that family is
   itself a term of the ``r'`` union.  The semantic re-check lives in
   :func:`repro.gpo.analysis._validate_candidate_preservation` and is
   exercised by the validation test-suite.

2. **single-enabled MCSs** — when no candidate exists, a *full* conflict
   component all of whose members are single-enabled can be branched over
   exclusively (classical partial-order anticipation).  Single firing
   moves common histories without the choice filter, so here the
   conservative full-component condition of the paper's pseudocode
   (``T' ∈ mcs(T)``) is required: a disabled member could otherwise become
   enabled later and steal tokens along a postponed path.

3. **fallback** — branch over every single-enabled transition (no
   reduction; classical PO hits this on RW, which is exactly where regime
   1 still applies and keeps GPO at 2 states).
"""

from __future__ import annotations

from repro.families.base import SetFamily
from repro.gpo.gpn import Gpn

__all__ = ["candidate_mcs", "single_enabled_mcs"]


def candidate_mcs(
    gpn: Gpn,
    multiple: dict[int, SetFamily],
) -> list[frozenset[int]]:
    """Maximal conflicting sets of multiple-enabled transitions.

    Connected components of the conflict graph induced on the keys of
    ``multiple`` (the non-empty ``m_enabled`` map from
    :func:`repro.gpo.semantics.enabled_families`).  Every multiple-enabled
    transition belongs to exactly one candidate; isolated transitions form
    singleton candidates.  Returned in deterministic order.
    """
    enabled = set(multiple)
    candidates: list[frozenset[int]] = []
    seen: set[int] = set()
    for start in sorted(enabled):
        if start in seen:
            continue
        component: set[int] = set()
        stack = [start]
        while stack:
            t = stack.pop()
            if t in component:
                continue
            component.add(t)
            stack.extend((gpn.info.adjacency[t] & enabled) - component)
        seen |= component
        candidates.append(frozenset(component))
    return candidates


def single_enabled_mcs(
    gpn: Gpn,
    single: dict[int, SetFamily],
) -> frozenset[int] | None:
    """One *full* MCS entirely single-enabled, or ``None``.

    Used by the analysis as regime 2: branch over exactly this component's
    members.  Among eligible components the smallest is chosen (fewer
    branches); ties break on the smallest member index for determinism.
    """
    enabled = set(single)
    best: frozenset[int] | None = None
    seen_components: set[int] = set()
    for t in sorted(enabled):
        component_index = gpn.info.mcs_of[t]
        if component_index in seen_components:
            continue
        seen_components.add(component_index)
        component = gpn.info.mcs_list[component_index]
        if component <= enabled:
            if best is None or (len(component), min(component)) < (
                len(best),
                min(best),
            ):
                best = component
    return best
