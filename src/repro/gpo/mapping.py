"""The GPN → classical-marking mapping (paper Definition 3.4).

``mapping(⟨m, r⟩) = { m' ⊆ P | ∃ v ∈ r : m' = {p | v ∈ m(p)} }`` — every
valid scenario induces one classical marking; a GPN state therefore covers
a *set* of classical markings.  These functions power the consistency
property tests (GPN firing commutes with classical firing through the
mapping) and deadlock witness extraction.
"""

from __future__ import annotations

from repro.gpo.gpn import Gpn, GpnState
from repro.net.petrinet import Marking

__all__ = ["scenario_marking", "mapping", "mapping_named"]


def scenario_marking(gpn: Gpn, state: GpnState, scenario: frozenset[int]) -> Marking:
    """The classical marking induced by one scenario: ``{p | v ∈ m(p)}``."""
    return frozenset(
        p
        for p in range(gpn.net.num_places)
        if state.marking[p].contains(scenario)
    )


def mapping(
    gpn: Gpn, state: GpnState, *, limit: int | None = None
) -> set[Marking]:
    """All classical markings covered by ``state`` (Def. 3.4).

    Enumerates scenarios, so the result can be exponential; ``limit`` caps
    the number of scenarios inspected (distinct markings may be fewer,
    since many scenarios induce the same marking).
    """
    markings: set[Marking] = set()
    for scenario in state.valid.iter_sets(limit=limit):
        markings.add(scenario_marking(gpn, state, scenario))
    return markings


def mapping_named(
    gpn: Gpn, state: GpnState, *, limit: int | None = None
) -> set[frozenset[str]]:
    """Like :func:`mapping` but with place names, for tests and reports."""
    return {
        gpn.net.marking_names(m) for m in mapping(gpn, state, limit=limit)
    }
