"""GPN firing semantics: Definitions 3.2, 3.3, 3.5 and 3.6 of the paper.

Two firing regimes:

* **single firing** — a transition fires on the *common history* of its
  input places (``s_enabled``); the common history moves from inputs to
  outputs without additional coloring.  This stays "in track" with the
  classical firing rule under the mapping of Def. 3.4.
* **multiple firing** — a whole set of (possibly conflicting) transitions
  fires simultaneously; each transition moves exactly the scenarios that
  *chose* it (``m_enabled``, the ``t ∈ v`` filter), and the valid family is
  re-conditioned (``∩ r'``), which prunes scenario combinations that have
  become jointly infeasible — the paper's "extended conflict" effect
  (Fig. 7: ``r2 = {{A,C},{B,D}}``).

Although GPN states are family tuples rather than packable markings, the
structure walks here run on the net's compiled
:class:`~repro.net.kernel.MarkingKernel` index tables (``pre_index``,
``pre_not_post_index``, ``consumers``, ...) and place-set membership is
tested on its bitmasks, so no per-firing frozenset algebra remains.
"""

from __future__ import annotations

from repro.families.base import SetFamily
from repro.gpo.gpn import Gpn, GpnState
from repro.obs import names
from repro.obs.tracer import current_tracer

__all__ = [
    "s_enabled",
    "m_enabled",
    "single_fire",
    "multiple_fire",
    "enabled_families",
    "dead_scenarios",
]


def s_enabled(gpn: Gpn, state: GpnState, t: int) -> SetFamily:
    """Def. 3.2 — ``⋂_{p ∈ •t} m(p) ∩ r``: scenarios where ``t`` can fire."""
    inputs = [state.marking[p] for p in gpn.kernel.pre_index[t]]
    common = gpn.ctx.intersect_all(inputs)
    return common.intersect(state.valid)


def m_enabled(gpn: Gpn, state: GpnState, t: int) -> SetFamily:
    """Def. 3.5 — ``{v ∈ ⋂_{p ∈ •t} m(p) | t ∈ v}``: scenarios choosing ``t``."""
    inputs = [state.marking[p] for p in gpn.kernel.pre_index[t]]
    common = gpn.ctx.intersect_all(inputs)
    return common.filter_contains(t)


def single_fire(gpn: Gpn, state: GpnState, t: int) -> GpnState:
    """Def. 3.3 — move the common history of ``t`` from inputs to outputs.

    ``r`` is unchanged; places that are both input and output of ``t``
    (self-loops) keep their family (the "otherwise" clause).
    """
    enabled = s_enabled(gpn, state, t)
    if enabled.is_empty():
        raise ValueError(
            f"transition {gpn.transition_label(t)!r} is not single-enabled"
        )
    kernel = gpn.kernel
    marking = list(state.marking)
    for p in kernel.pre_not_post_index[t]:
        marking[p] = marking[p].difference(enabled)
    for p in kernel.post_not_pre_index[t]:
        marking[p] = marking[p].union(enabled)
    return GpnState(tuple(marking), state.valid)


def enabled_families(
    gpn: Gpn, state: GpnState
) -> tuple[dict[int, SetFamily], dict[int, SetFamily]]:
    """Per-transition ``s_enabled`` / ``m_enabled`` families, empties omitted.

    One pass computing both avoids re-intersecting input families; the
    explorer calls this once per state.
    """
    tracer = current_tracer()
    if tracer.enabled:
        with tracer.span(names.SPAN_ENABLED_FAMILIES) as span:
            single, multiple = _enabled_families(gpn, state)
            span.set(single=len(single), multiple=len(multiple))
            return single, multiple
    return _enabled_families(gpn, state)


def _enabled_families(
    gpn: Gpn, state: GpnState
) -> tuple[dict[int, SetFamily], dict[int, SetFamily]]:
    single: dict[int, SetFamily] = {}
    multiple: dict[int, SetFamily] = {}
    pre_index = gpn.kernel.pre_index
    for t in range(gpn.net.num_transitions):
        inputs = [state.marking[p] for p in pre_index[t]]
        if any(f.is_empty() for f in inputs):
            continue
        common = gpn.ctx.intersect_all(inputs)
        if common.is_empty():
            continue
        s_fam = common.intersect(state.valid)
        if not s_fam.is_empty():
            single[t] = s_fam
        m_fam = common.filter_contains(t)
        if not m_fam.is_empty():
            multiple[t] = m_fam
    return single, multiple


def multiple_fire(
    gpn: Gpn,
    state: GpnState,
    fired: frozenset[int],
    *,
    families: tuple[dict[int, SetFamily], dict[int, SetFamily]] | None = None,
) -> GpnState:
    """Def. 3.6 — fire a set of transitions simultaneously.

    ``fired`` is the union of the chosen candidate MCSs (each member must
    be multiple-enabled).  ``families`` may pass the precomputed result of
    :func:`enabled_families` for this state.
    """
    tracer = current_tracer()
    if tracer.enabled:
        with tracer.span(names.SPAN_MULTIPLE_FIRE, fired=len(fired)):
            return _multiple_fire(gpn, state, fired, families)
    return _multiple_fire(gpn, state, fired, families)


def _multiple_fire(
    gpn: Gpn,
    state: GpnState,
    fired: frozenset[int],
    families: tuple[dict[int, SetFamily], dict[int, SetFamily]] | None,
) -> GpnState:
    net = gpn.net
    if families is None:
        families = enabled_families(gpn, state)
    single, multiple = families
    for t in fired:
        if t not in multiple:
            raise ValueError(
                f"transition {gpn.transition_label(t)!r} is not "
                "multiple-enabled"
            )

    # r' = ∪_{t ∉ T'} s_enabled(t,s)  ∪  ∪_{t ∈ T'} m_enabled(t,s)
    new_valid = gpn.ctx.union_all(
        [family for t, family in single.items() if t not in fired]
        + [multiple[t] for t in fired]
    )

    kernel = gpn.kernel
    pre_bits = 0
    post_bits = 0
    for t in fired:
        pre_bits |= kernel.pre_mask[t]
        post_bits |= kernel.post_mask[t]

    marking = list(state.marking)
    for p in range(net.num_places):
        family = marking[p]
        if (pre_bits >> p) & 1:
            consumed = gpn.ctx.union_all(
                multiple[t] for t in kernel.consumers[p] if t in fired
            )
            family = family.difference(consumed)
        if (post_bits >> p) & 1:
            produced = gpn.ctx.union_all(
                multiple[t] for t in kernel.producers[p] if t in fired
            )
            family = family.union(produced)
        marking[p] = family.intersect(new_valid)
    return GpnState(tuple(marking), new_valid)


def dead_scenarios(
    gpn: Gpn,
    state: GpnState,
    single: dict[int, SetFamily] | None = None,
) -> SetFamily:
    """Scenarios in ``r`` that enable no transition (§3.3 deadlock check).

    The paper tests ``⋃_t s_enabled(t, s) ≠ r``; the returned family is the
    difference ``r \\ ⋃_t s_enabled(t, s)``, whose members map to deadlocked
    classical markings via Def. 3.4.
    """
    if single is None:
        single, _ = enabled_families(gpn, state)
    live = gpn.ctx.union_all(single.values())
    return state.valid.difference(live)
