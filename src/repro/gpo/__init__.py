"""Generalized Partial Order analysis — the paper's contribution (§3).

Public surface:

* :class:`Gpn` / :class:`GpnState` — Generalized Petri Nets (Def. 3.1);
* :func:`s_enabled` / :func:`single_fire` — single firing (Defs. 3.2-3.3);
* :func:`m_enabled` / :func:`multiple_fire` — multiple firing (3.5-3.6);
* :func:`mapping` — GPN state -> set of classical markings (Def. 3.4);
* :func:`explore_gpo` / :func:`analyze` — the §3.3 analysis procedure.
"""

from repro.gpo.analysis import GpoOptions, GpoResult, analyze, explore_gpo
from repro.gpo.candidates import candidate_mcs, single_enabled_mcs
from repro.gpo.gpn import Gpn, GpnState
from repro.gpo.mapping import mapping, mapping_named, scenario_marking
from repro.gpo.semantics import (
    dead_scenarios,
    enabled_families,
    m_enabled,
    multiple_fire,
    s_enabled,
    single_fire,
)

__all__ = [
    "Gpn",
    "GpnState",
    "GpoOptions",
    "GpoResult",
    "analyze",
    "explore_gpo",
    "s_enabled",
    "m_enabled",
    "single_fire",
    "multiple_fire",
    "enabled_families",
    "dead_scenarios",
    "mapping",
    "mapping_named",
    "scenario_marking",
    "candidate_mcs",
    "single_enabled_mcs",
]

from repro.gpo.safety import (
    MarkingConstraint,
    SafetyResult,
    check_safety,
    monitor_net,
    mutual_exclusion_constraints,
    screen_safety,
)

__all__ += [
    "MarkingConstraint",
    "SafetyResult",
    "check_safety",
    "screen_safety",
    "monitor_net",
    "mutual_exclusion_constraints",
]
