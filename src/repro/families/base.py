"""Abstract interface for families of transition sets.

A GPN state (paper Def. 3.1) maps every place to an element of ``2^(2^T)``
— a *family* of transition sets — and carries the family ``r`` of valid
transition sets.  These families are exponentially large in the worst case
(``r0`` is the set of maximal independent sets of the conflict graph), so
the GPN semantics is written against this small abstract interface with two
interchangeable backends:

* :class:`repro.families.explicit.ExplicitContext` — plain frozensets;
  exact and readable, used in unit tests and for tiny nets;
* :class:`repro.families.bddfam.BddContext` — characteristic Boolean
  functions on the :mod:`repro.bdd` engine; scales to the Table 1 models.

Families are immutable value objects: hashable, comparable within one
context, with set algebra plus the one GPN-specific operation
``filter_contains(t)`` = ``{v ∈ F | t ∈ v}`` (Def. 3.5's multiple-enabling
filter).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

__all__ = ["SetFamily", "FamilyContext"]


class SetFamily(ABC):
    """An immutable family of subsets of the transition universe."""

    __slots__ = ()

    # -- algebra --------------------------------------------------------
    @abstractmethod
    def intersect(self, other: "SetFamily") -> "SetFamily":
        """Family intersection ``self ∩ other``."""

    @abstractmethod
    def union(self, other: "SetFamily") -> "SetFamily":
        """Family union ``self ∪ other``."""

    @abstractmethod
    def difference(self, other: "SetFamily") -> "SetFamily":
        """Family difference ``self \\ other``."""

    @abstractmethod
    def filter_contains(self, transition: int) -> "SetFamily":
        """``{v ∈ self | transition ∈ v}`` (Def. 3.5)."""

    # -- queries --------------------------------------------------------
    @abstractmethod
    def is_empty(self) -> bool:
        """True when the family has no member sets."""

    @abstractmethod
    def count(self) -> int:
        """Number of member sets."""

    @abstractmethod
    def contains(self, transition_set: frozenset[int]) -> bool:
        """Membership test for one transition set."""

    @abstractmethod
    def iter_sets(self, *, limit: int | None = None) -> Iterator[frozenset[int]]:
        """Iterate member sets (order unspecified but deterministic)."""

    @abstractmethod
    def any_set(self) -> frozenset[int] | None:
        """One member set, or ``None`` when empty."""

    @abstractmethod
    def is_subset(self, other: "SetFamily") -> bool:
        """True when every member of ``self`` is in ``other``."""

    def as_frozensets(self, *, limit: int | None = None) -> frozenset[frozenset[int]]:
        """Materialize (a prefix of) the family — for tests and debugging."""
        return frozenset(self.iter_sets(limit=limit))

    # Subclasses must implement value equality and hashing.
    @abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abstractmethod
    def __hash__(self) -> int: ...

    def __bool__(self) -> bool:
        return not self.is_empty()


class FamilyContext(ABC):
    """Factory for families over a fixed transition universe ``0..n-1``.

    One context is created per analysis run; families from different
    contexts must not be mixed (the BDD backend shares a manager through
    its context).
    """

    def __init__(self, num_transitions: int) -> None:
        self.num_transitions = num_transitions

    @abstractmethod
    def empty(self) -> SetFamily:
        """The empty family ``{}``."""

    @abstractmethod
    def singleton(self, transition_set: frozenset[int]) -> SetFamily:
        """The family ``{transition_set}``."""

    @abstractmethod
    def from_sets(self, sets: Iterable[frozenset[int]]) -> SetFamily:
        """A family with exactly the given member sets."""

    @abstractmethod
    def maximal_independent_sets(
        self, adjacency: Sequence[set[int]] | Sequence[frozenset[int]]
    ) -> SetFamily:
        """All maximal independent sets of the given conflict graph.

        This is the paper's ``r0`` (Section 3.3, in the maximal reading its
        worked examples use): every valid transition set resolves each
        conflict, and no conflicting pair appears together.
        """

    def union_all(self, families: Iterable[SetFamily]) -> SetFamily:
        """Union of many families (∅ for no operands)."""
        result = self.empty()
        for family in families:
            result = result.union(family)
        return result

    def intersect_all(self, families: Sequence[SetFamily]) -> SetFamily:
        """Intersection of one-or-more families.

        An empty operand list would be the universal family; GPN semantics
        never needs it (every transition has input places), so it raises.
        """
        if not families:
            raise ValueError("intersect_all needs at least one family")
        result = families[0]
        for family in families[1:]:
            if result.is_empty():
                break
            result = result.intersect(family)
        return result
