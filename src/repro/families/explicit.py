"""Explicit (frozenset-of-frozensets) family backend.

Exact and transparent; complexity is linear in the number of member sets,
which is exponential in the number of conflict clusters — use only for
small nets, unit tests, and cross-validation of the BDD backend.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.families.base import FamilyContext, SetFamily

__all__ = ["ExplicitFamily", "ExplicitContext"]


class ExplicitFamily(SetFamily):
    """A family stored as a frozenset of frozensets of transition ids."""

    __slots__ = ("sets",)

    def __init__(self, sets: frozenset[frozenset[int]]) -> None:
        self.sets = sets

    # -- algebra --------------------------------------------------------
    def intersect(self, other: SetFamily) -> "ExplicitFamily":
        assert isinstance(other, ExplicitFamily)
        return ExplicitFamily(self.sets & other.sets)

    def union(self, other: SetFamily) -> "ExplicitFamily":
        assert isinstance(other, ExplicitFamily)
        return ExplicitFamily(self.sets | other.sets)

    def difference(self, other: SetFamily) -> "ExplicitFamily":
        assert isinstance(other, ExplicitFamily)
        return ExplicitFamily(self.sets - other.sets)

    def filter_contains(self, transition: int) -> "ExplicitFamily":
        return ExplicitFamily(
            frozenset(v for v in self.sets if transition in v)
        )

    # -- queries --------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.sets

    def count(self) -> int:
        return len(self.sets)

    def contains(self, transition_set: frozenset[int]) -> bool:
        return transition_set in self.sets

    def iter_sets(self, *, limit: int | None = None) -> Iterator[frozenset[int]]:
        ordered = sorted(self.sets, key=sorted)
        if limit is not None:
            ordered = ordered[:limit]
        return iter(ordered)

    def any_set(self) -> frozenset[int] | None:
        if not self.sets:
            return None
        return min(self.sets, key=sorted)

    def is_subset(self, other: SetFamily) -> bool:
        assert isinstance(other, ExplicitFamily)
        return self.sets <= other.sets

    # -- value semantics -------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExplicitFamily):
            return NotImplemented
        return self.sets == other.sets

    def __hash__(self) -> int:
        return hash(self.sets)

    def __repr__(self) -> str:
        rendered = sorted(tuple(sorted(v)) for v in self.sets)
        return f"ExplicitFamily({rendered})"


class ExplicitContext(FamilyContext):
    """Factory for :class:`ExplicitFamily` values."""

    def empty(self) -> ExplicitFamily:
        return ExplicitFamily(frozenset())

    def singleton(self, transition_set: frozenset[int]) -> ExplicitFamily:
        self._check(transition_set)
        return ExplicitFamily(frozenset([frozenset(transition_set)]))

    def from_sets(self, sets: Iterable[frozenset[int]]) -> ExplicitFamily:
        materialized = frozenset(frozenset(v) for v in sets)
        for v in materialized:
            self._check(v)
        return ExplicitFamily(materialized)

    def _check(self, transition_set: Iterable[int]) -> None:
        for t in transition_set:
            if not 0 <= t < self.num_transitions:
                raise ValueError(
                    f"transition id {t} outside universe of size "
                    f"{self.num_transitions}"
                )

    def maximal_independent_sets(
        self, adjacency: Sequence[set[int]] | Sequence[frozenset[int]]
    ) -> ExplicitFamily:
        """Enumerate all maximal independent sets.

        Bron–Kerbosch with pivoting on the *complement* view: maximal
        independent sets of G are maximal cliques of the complement of G.
        We run the recursion directly with independence tests against
        ``adjacency`` to avoid materializing the complement.
        """
        n = self.num_transitions
        if len(adjacency) != n:
            raise ValueError("adjacency size must match the universe")
        results: list[frozenset[int]] = []
        # candidates/excluded partition vertices still considered.
        def expand(current: set[int], candidates: set[int], excluded: set[int]) -> None:
            if not candidates and not excluded:
                results.append(frozenset(current))
                return
            # Pivot: vertex with most candidate non-neighbors pruned.
            pivot_pool = candidates | excluded
            pivot = max(
                pivot_pool,
                key=lambda v: len(candidates - adjacency[v] - {v}),
            )
            # Branch only on candidates NOT non-adjacent to the pivot,
            # i.e. on pivot's neighbors plus the pivot itself.
            branch = candidates & (set(adjacency[pivot]) | {pivot})
            for v in sorted(branch):
                non_neighbors = {
                    u for u in candidates if u != v and u not in adjacency[v]
                }
                excluded_nn = {
                    u for u in excluded if u != v and u not in adjacency[v]
                }
                expand(current | {v}, non_neighbors, excluded_nn)
                candidates = candidates - {v}
                excluded = excluded | {v}

        expand(set(), set(range(n)), set())
        return ExplicitFamily(frozenset(results))
