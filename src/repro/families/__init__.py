"""Families of transition sets: the GPN marking representation.

Provides the abstract :class:`SetFamily` interface with explicit and
BDD-backed implementations; see :mod:`repro.families.base`.
"""

from repro.families.base import FamilyContext, SetFamily
from repro.families.bddfam import BddContext, BddFamily
from repro.families.explicit import ExplicitContext, ExplicitFamily

__all__ = [
    "SetFamily",
    "FamilyContext",
    "ExplicitFamily",
    "ExplicitContext",
    "BddFamily",
    "BddContext",
]
