"""BDD-backed family backend.

A family ``F ⊆ 2^T`` is the set of satisfying assignments of a Boolean
function over one variable per transition.  All family operations the GPN
semantics needs are Boolean operations on the shared
:class:`~repro.bdd.manager.BddManager` held by the context:

=====================  =====================================
family operation       Boolean operation
=====================  =====================================
``F ∩ G``              ``f ∧ g``
``F ∪ G``              ``f ∨ g``
``F \\ G``             ``f ∧ ¬g``
``{v ∈ F | t ∈ v}``    ``f ∧ x_t``
emptiness/equality     node identity (ROBDDs are canonical)
``|F|``                model counting
=====================  =====================================

The paper's ``r0`` — all maximal independent sets of the conflict graph —
is built symbolically as *independent* (no edge fully inside) ∧ *dominating*
(every vertex outside has a neighbor inside), so it never enumerates the
exponentially many scenarios.

This internal use of BDDs does **not** turn the analysis into symbolic
state-space exploration: GPN states are still enumerated explicitly (3 for
NSDP, 2 for RW); only the per-state scenario annotations are compressed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.bdd.manager import ONE, ZERO, BddManager
from repro.bdd.ops import any_model, iter_models, satcount
from repro.families.base import FamilyContext, SetFamily

__all__ = ["BddFamily", "BddContext"]


class BddFamily(SetFamily):
    """A family represented by a BDD node in its context's manager."""

    __slots__ = ("ctx", "node")

    def __init__(self, ctx: "BddContext", node: int) -> None:
        self.ctx = ctx
        self.node = node

    # -- algebra --------------------------------------------------------
    def intersect(self, other: SetFamily) -> "BddFamily":
        assert isinstance(other, BddFamily) and other.ctx is self.ctx
        return BddFamily(self.ctx, self.ctx.mgr.and_(self.node, other.node))

    def union(self, other: SetFamily) -> "BddFamily":
        assert isinstance(other, BddFamily) and other.ctx is self.ctx
        return BddFamily(self.ctx, self.ctx.mgr.or_(self.node, other.node))

    def difference(self, other: SetFamily) -> "BddFamily":
        assert isinstance(other, BddFamily) and other.ctx is self.ctx
        return BddFamily(self.ctx, self.ctx.mgr.diff(self.node, other.node))

    def filter_contains(self, transition: int) -> "BddFamily":
        literal = self.ctx.mgr.var(self.ctx.level_of(transition))
        return BddFamily(self.ctx, self.ctx.mgr.and_(self.node, literal))

    # -- queries --------------------------------------------------------
    def is_empty(self) -> bool:
        return self.node == ZERO

    def count(self) -> int:
        return satcount(self.ctx.mgr, self.node, self.ctx.num_transitions)

    def contains(self, transition_set: frozenset[int]) -> bool:
        assignment = {
            self.ctx.level_of(t): (t in transition_set)
            for t in range(self.ctx.num_transitions)
        }
        return self.ctx.mgr.evaluate(self.node, assignment)

    def iter_sets(self, *, limit: int | None = None) -> Iterator[frozenset[int]]:
        levels = [self.ctx.level_of(t) for t in range(self.ctx.num_transitions)]
        for model in iter_models(self.ctx.mgr, self.node, levels, limit=limit):
            yield frozenset(
                t
                for t in range(self.ctx.num_transitions)
                if model[self.ctx.level_of(t)]
            )

    def any_set(self) -> frozenset[int] | None:
        levels = [self.ctx.level_of(t) for t in range(self.ctx.num_transitions)]
        model = any_model(self.ctx.mgr, self.node, levels)
        if model is None:
            return None
        return frozenset(
            t
            for t in range(self.ctx.num_transitions)
            if model[self.ctx.level_of(t)]
        )

    def is_subset(self, other: SetFamily) -> bool:
        assert isinstance(other, BddFamily) and other.ctx is self.ctx
        return self.ctx.mgr.diff(self.node, other.node) == ZERO

    # -- value semantics -------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BddFamily):
            return NotImplemented
        # ROBDD canonicity: same node id <=> same family (same context).
        return self.ctx is other.ctx and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.ctx), self.node))

    def __repr__(self) -> str:
        size = self.count()
        preview = sorted(tuple(sorted(v)) for v in self.iter_sets(limit=4))
        suffix = ", ..." if size > 4 else ""
        return f"BddFamily(|F|={size}, {preview}{suffix})"


class BddContext(FamilyContext):
    """Factory holding the shared manager and the transition→level map.

    The identity level map is used: transition ``t`` is BDD level ``t``.
    (Conflict graphs of the benchmark nets are locally clustered in
    declaration order, which is already a good order.)
    """

    def __init__(self, num_transitions: int) -> None:
        super().__init__(num_transitions)
        self.mgr = BddManager()
        self.mgr.declare(num_transitions)

    def level_of(self, transition: int) -> int:
        """BDD level of a transition's indicator variable."""
        if not 0 <= transition < self.num_transitions:
            raise ValueError(
                f"transition id {transition} outside universe of size "
                f"{self.num_transitions}"
            )
        return transition

    # -- constructors ----------------------------------------------------
    def empty(self) -> BddFamily:
        return BddFamily(self, ZERO)

    def singleton(self, transition_set: frozenset[int]) -> BddFamily:
        node = self.mgr.and_all(
            self.mgr.var(self.level_of(t))
            if t in transition_set
            else self.mgr.nvar(self.level_of(t))
            for t in range(self.num_transitions)
        )
        for t in transition_set:
            self.level_of(t)  # range check
        return BddFamily(self, node)

    def from_sets(self, sets: Iterable[frozenset[int]]) -> BddFamily:
        node = self.mgr.or_all(
            self.singleton(frozenset(v)).node for v in sets
        )
        return BddFamily(self, node)

    def maximal_independent_sets(
        self, adjacency: Sequence[set[int]] | Sequence[frozenset[int]]
    ) -> BddFamily:
        n = self.num_transitions
        if len(adjacency) != n:
            raise ValueError("adjacency size must match the universe")
        mgr = self.mgr
        conjuncts: list[int] = []
        # Independence: no conflicting pair inside.
        for t in range(n):
            for u in adjacency[t]:
                if u > t:
                    conjuncts.append(
                        mgr.not_(
                            mgr.and_(
                                mgr.var(self.level_of(t)),
                                mgr.var(self.level_of(u)),
                            )
                        )
                    )
        # Maximality (domination): every vertex is in, or has a neighbor in.
        for t in range(n):
            clause = mgr.var(self.level_of(t))
            for u in adjacency[t]:
                clause = mgr.or_(clause, mgr.var(self.level_of(u)))
            conjuncts.append(clause)
        return BddFamily(self, mgr.and_all(conjuncts))
