"""A from-scratch ROBDD (reduced ordered binary decision diagram) engine.

Implements Bryant's classic algorithms [2]: hash-consed nodes in a unique
table, memoized ``ite`` (if-then-else) as the universal connective, and the
derived Boolean operations.  This engine backs both the symbolic
reachability baseline (the paper's "SMV" column) and the compact
:class:`~repro.families.bddfam.BddFamily` representation of GPN scenario
families.

Design notes
------------
* Nodes are integers.  ``0`` and ``1`` are the terminals; internal nodes
  live in parallel arrays ``_var/_lo/_hi`` (struct-of-arrays keeps Python
  object overhead down versus per-node objects).
* No complement edges and no garbage collection: managers are created per
  analysis run and dropped wholesale, which keeps the implementation honest
  and the peak-size statistics meaningful.
* Variables are integer *levels*; smaller level = nearer the root.  Naming
  is layered on top (see :mod:`repro.bdd.ordering` and the users).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["BddManager", "ZERO", "ONE"]

ZERO = 0
ONE = 1

#: Sentinel level for terminals; greater than any real variable level.
_TERMINAL_LEVEL = 1 << 60


class BddManager:
    """Unique-table manager; all BDD operations go through one instance.

    Node handles are only meaningful within their manager.  Typical usage::

        mgr = BddManager()
        x, y = mgr.var(0), mgr.var(1)
        f = mgr.and_(x, mgr.not_(y))
        mgr.evaluate(f, {0: True, 1: False})   # -> True
    """

    def __init__(self) -> None:
        # Terminals occupy ids 0 and 1.
        self._var: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._lo: list[int] = [0, 1]
        self._hi: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._num_vars = 0
        # Memo-cache statistics (only non-trivial ``ite`` calls count —
        # the ones that reach the cache probe).
        self.ite_calls = 0
        self.ite_hits = 0

    # ------------------------------------------------------------------
    # Node plumbing
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total nodes ever created (including the two terminals)."""
        return len(self._var)

    @property
    def num_vars(self) -> int:
        """Number of declared variable levels."""
        return self._num_vars

    @property
    def cache_hit_ratio(self) -> float:
        """Hit ratio of the memoized ``ite`` cache (0.0 before any call)."""
        if not self.ite_calls:
            return 0.0
        return self.ite_hits / self.ite_calls

    def stats(self) -> dict[str, float]:
        """Manager counters for the observability layer."""
        return {
            "nodes": self.num_nodes,
            "vars": self.num_vars,
            "ite_calls": self.ite_calls,
            "ite_hits": self.ite_hits,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
        }

    def level(self, node: int) -> int:
        """Variable level of ``node`` (terminals report a huge sentinel)."""
        return self._var[node]

    def low(self, node: int) -> int:
        """Else-branch child."""
        return self._lo[node]

    def high(self, node: int) -> int:
        """Then-branch child."""
        return self._hi[node]

    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Hash-consed node constructor with the reduction rule."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def declare(self, count: int) -> None:
        """Ensure at least ``count`` variable levels exist."""
        if count > self._num_vars:
            self._num_vars = count

    def var(self, level: int) -> int:
        """The function of a single positive literal at ``level``."""
        if level < 0:
            raise ValueError("variable level must be non-negative")
        self.declare(level + 1)
        return self._mk(level, ZERO, ONE)

    def nvar(self, level: int) -> int:
        """The function of a single negative literal at ``level``."""
        if level < 0:
            raise ValueError("variable level must be non-negative")
        self.declare(level + 1)
        return self._mk(level, ONE, ZERO)

    # ------------------------------------------------------------------
    # Core connective: memoized if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` — the universal Boolean connective."""
        # Terminal short-circuits.
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        self.ite_calls += 1
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.ite_hits += 1
            return cached

        top = min(self._var[f], self._var[g], self._var[h])
        f_lo, f_hi = self._cofactors(f, top)
        g_lo, g_hi = self._cofactors(g, top)
        h_lo, h_hi = self._cofactors(h, top)
        lo = self.ite(f_lo, g_lo, h_lo)
        hi = self.ite(f_hi, g_hi, h_hi)
        result = self._mk(top, lo, hi)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> tuple[int, int]:
        """(f|var=0, f|var=1) for the variable at ``level``."""
        if self._var[node] == level:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        """Negation."""
        return self.ite(f, ZERO, ONE)

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, ONE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.ite(g, ZERO, ONE), g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, ONE)

    def iff(self, f: int, g: int) -> int:
        """Equivalence."""
        return self.ite(f, g, self.ite(g, ZERO, ONE))

    def diff(self, f: int, g: int) -> int:
        """Difference ``f ∧ ¬g`` (set minus on characteristic functions)."""
        return self.ite(g, ZERO, f)

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of many functions (balanced reduction would be
        faster in pathological cases; linear is fine at our sizes)."""
        acc = ONE
        for node in nodes:
            acc = self.and_(acc, node)
            if acc == ZERO:
                return ZERO
        return acc

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of many functions."""
        acc = ZERO
        for node in nodes:
            acc = self.or_(acc, node)
            if acc == ONE:
                return ONE
        return acc

    # ------------------------------------------------------------------
    # Evaluation / inspection
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: dict[int, bool]) -> bool:
        """Evaluate under a (total, for f's support) level->bool map."""
        node = f
        while node > ONE:
            level = self._var[node]
            try:
                value = assignment[level]
            except KeyError:
                raise KeyError(
                    f"assignment missing variable level {level}"
                ) from None
            node = self._hi[node] if value else self._lo[node]
        return node == ONE

    def support(self, f: int) -> frozenset[int]:
        """Levels the function actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= ONE or node in seen:
                continue
            seen.add(node)
            levels.add(self._var[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return frozenset(levels)

    def count_nodes(self, *roots: int) -> int:
        """Number of distinct internal nodes reachable from ``roots``.

        This is the "BDD size" metric of Table 1 (terminals excluded).
        """
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node <= ONE or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return len(seen)

    def iter_nodes(self, f: int) -> Iterator[tuple[int, int, int, int]]:
        """Yield reachable internal nodes as ``(id, level, lo, hi)``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= ONE or node in seen:
                continue
            seen.add(node)
            yield (node, self._var[node], self._lo[node], self._hi[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])

    def to_expr_string(self, f: int, names: dict[int, str] | None = None) -> str:
        """Debug rendering as nested ite-expressions (small BDDs only)."""
        if f == ZERO:
            return "false"
        if f == ONE:
            return "true"
        name = (
            names.get(self._var[f], f"x{self._var[f]}")
            if names
            else f"x{self._var[f]}"
        )
        return (
            f"ite({name}, {self.to_expr_string(self._hi[f], names)}, "
            f"{self.to_expr_string(self._lo[f], names)})"
        )
