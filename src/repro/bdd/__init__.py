"""From-scratch ROBDD engine (Bryant [2]).

Backs the symbolic reachability baseline (:mod:`repro.symbolic`) and the
compact scenario-family representation of the GPN analyzer
(:mod:`repro.families.bddfam`).
"""

from repro.bdd.expr import FALSE, TRUE, BoolExpr, Const, Var
from repro.bdd.manager import ONE, ZERO, BddManager
from repro.bdd.ops import (
    any_model,
    exists,
    forall,
    iter_models,
    relprod,
    rename,
    restrict,
    satcount,
)
from repro.bdd.ordering import force_order, interleaved_order

__all__ = [
    "BddManager",
    "ZERO",
    "ONE",
    "exists",
    "forall",
    "relprod",
    "rename",
    "restrict",
    "satcount",
    "any_model",
    "iter_models",
    "force_order",
    "interleaved_order",
    "BoolExpr",
    "Var",
    "Const",
    "TRUE",
    "FALSE",
]
