"""Static variable-ordering heuristics.

BDD sizes are notoriously order-sensitive (the paper's §2.4 points at
exactly this weakness of symbolic methods).  We provide:

* :func:`interleaved_order` — the standard current/next interleaving for
  transition relations;
* :func:`force_order` — the FORCE heuristic (Aloul et al.): iterative
  barycenter placement over the hypergraph whose hyperedges are the groups
  of variables that appear together (for nets: the environment of each
  transition).  Cheap, order-of-magnitude effective on linear structures.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["interleaved_order", "force_order"]


def interleaved_order(num_state_vars: int) -> tuple[dict[int, int], dict[int, int]]:
    """Interleave current/next copies of ``num_state_vars`` variables.

    Returns ``(current_level, next_level)`` maps: state variable ``i`` gets
    current level ``2*i`` and next level ``2*i + 1``.  Keeping each
    current/next pair adjacent keeps the transition relation small.
    """
    current = {i: 2 * i for i in range(num_state_vars)}
    nxt = {i: 2 * i + 1 for i in range(num_state_vars)}
    return current, nxt


def force_order(
    num_vars: int,
    hyperedges: Sequence[Sequence[int]],
    *,
    iterations: int = 20,
) -> list[int]:
    """FORCE heuristic: order variables to minimize total hyperedge span.

    Each hyperedge is a group of variable indices that interact.  The
    algorithm alternates computing hyperedge centers of gravity and
    re-sorting variables by the mean center of their edges, converging in a
    few iterations.  Returns a permutation ``order`` where ``order[k]`` is
    the variable placed at position ``k``.

    >>> force_order(4, [[0, 3], [1, 2]])  # doctest: +SKIP
    [0, 3, 1, 2]
    """
    if num_vars <= 0:
        return []
    position = {v: float(v) for v in range(num_vars)}
    edges = [list(edge) for edge in hyperedges if edge]

    edges_of: list[list[int]] = [[] for _ in range(num_vars)]
    for index, edge in enumerate(edges):
        for v in edge:
            if not 0 <= v < num_vars:
                raise ValueError(f"hyperedge variable {v} out of range")
            edges_of[v].append(index)

    best_order = sorted(range(num_vars))
    best_cost = _span_cost(edges, {v: i for i, v in enumerate(best_order)})

    for _ in range(iterations):
        centers = [
            sum(position[v] for v in edge) / len(edge) for edge in edges
        ]
        new_score: dict[int, float] = {}
        for v in range(num_vars):
            if edges_of[v]:
                new_score[v] = sum(centers[e] for e in edges_of[v]) / len(
                    edges_of[v]
                )
            else:
                new_score[v] = position[v]
        order = sorted(range(num_vars), key=lambda v: (new_score[v], v))
        position = {v: float(i) for i, v in enumerate(order)}
        cost = _span_cost(edges, {v: int(position[v]) for v in order})
        if cost < best_cost:
            best_cost = cost
            best_order = order
    return best_order


def _span_cost(edges: Sequence[Sequence[int]], pos: dict[int, int]) -> int:
    """Sum of hyperedge spans under a placement (lower is better)."""
    total = 0
    for edge in edges:
        placed = [pos[v] for v in edge]
        total += max(placed) - min(placed)
    return total
