"""A tiny Boolean-expression front-end over the BDD engine.

Used by tests (building reference functions readably) and by examples that
want to write constraints like ``(a & ~b) | c`` without touching manager
node ids.  Expressions are immutable trees compiled with
:meth:`BoolExpr.to_bdd`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd.manager import ONE, ZERO, BddManager

__all__ = ["BoolExpr", "Var", "Const", "TRUE", "FALSE"]


@dataclass(frozen=True)
class BoolExpr:
    """Base class; use operators ``& | ^ ~`` and ``>>`` (implies)."""

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return _Binary("and", self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return _Binary("or", self, other)

    def __xor__(self, other: "BoolExpr") -> "BoolExpr":
        return _Binary("xor", self, other)

    def __rshift__(self, other: "BoolExpr") -> "BoolExpr":
        return _Binary("implies", self, other)

    def __invert__(self) -> "BoolExpr":
        return _Not(self)

    def iff(self, other: "BoolExpr") -> "BoolExpr":
        """Logical equivalence."""
        return _Binary("iff", self, other)

    # ------------------------------------------------------------------
    def to_bdd(self, mgr: BddManager, levels: dict[str, int]) -> int:
        """Compile to a BDD node; ``levels`` maps variable names to levels."""
        raise NotImplementedError

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        """Direct evaluation (the reference the BDD tests compare against)."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """All variable names in the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Var(BoolExpr):
    """A named Boolean variable."""

    name: str

    def to_bdd(self, mgr: BddManager, levels: dict[str, int]) -> int:
        return mgr.var(levels[self.name])

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        return assignment[self.name]

    def variables(self) -> frozenset[str]:
        return frozenset([self.name])


@dataclass(frozen=True)
class Const(BoolExpr):
    """A Boolean constant."""

    value: bool

    def to_bdd(self, mgr: BddManager, levels: dict[str, int]) -> int:
        return ONE if self.value else ZERO

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class _Not(BoolExpr):
    operand: BoolExpr

    def to_bdd(self, mgr: BddManager, levels: dict[str, int]) -> int:
        return mgr.not_(self.operand.to_bdd(mgr, levels))

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> frozenset[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class _Binary(BoolExpr):
    op: str
    left: BoolExpr
    right: BoolExpr

    def to_bdd(self, mgr: BddManager, levels: dict[str, int]) -> int:
        lhs = self.left.to_bdd(mgr, levels)
        rhs = self.right.to_bdd(mgr, levels)
        method = {
            "and": mgr.and_,
            "or": mgr.or_,
            "xor": mgr.xor,
            "implies": mgr.implies,
            "iff": mgr.iff,
        }[self.op]
        return method(lhs, rhs)

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        lhs = self.left.evaluate(assignment)
        rhs = self.right.evaluate(assignment)
        if self.op == "and":
            return lhs and rhs
        if self.op == "or":
            return lhs or rhs
        if self.op == "xor":
            return lhs != rhs
        if self.op == "implies":
            return (not lhs) or rhs
        if self.op == "iff":
            return lhs == rhs
        raise AssertionError(f"unknown operator {self.op}")

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()
