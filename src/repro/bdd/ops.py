"""Higher-order BDD operations: quantification, relational product,
model counting and enumeration, variable renaming.

These are free functions over a :class:`~repro.bdd.manager.BddManager`;
each keeps its own memo cache keyed by the operand nodes (caches are scoped
to the call, which is simpler than invalidation and fast enough at the
sizes the reproduction explores — the symbolic engine calls ``relprod``
once per transition per frontier).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.bdd.manager import ONE, ZERO, BddManager

__all__ = [
    "exists",
    "forall",
    "relprod",
    "rename",
    "restrict",
    "satcount",
    "any_model",
    "iter_models",
]


def restrict(mgr: BddManager, f: int, level: int, value: bool) -> int:
    """Cofactor: fix the variable at ``level`` to ``value``."""
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        if node <= ONE or mgr.level(node) > level:
            return node
        hit = cache.get(node)
        if hit is not None:
            return hit
        if mgr.level(node) == level:
            result = mgr.high(node) if value else mgr.low(node)
        else:
            result = mgr.ite(
                mgr.var(mgr.level(node)),
                walk(mgr.high(node)),
                walk(mgr.low(node)),
            )
        cache[node] = result
        return result

    return walk(f)


def exists(mgr: BddManager, f: int, levels: Sequence[int] | frozenset[int]) -> int:
    """Existential quantification over the given variable levels."""
    level_set = frozenset(levels)
    if not level_set:
        return f
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        if node <= ONE:
            return node
        hit = cache.get(node)
        if hit is not None:
            return hit
        level = mgr.level(node)
        lo = walk(mgr.low(node))
        hi = walk(mgr.high(node))
        if level in level_set:
            result = mgr.or_(lo, hi)
        else:
            result = mgr.ite(mgr.var(level), hi, lo)
        cache[node] = result
        return result

    return walk(f)


def forall(mgr: BddManager, f: int, levels: Sequence[int] | frozenset[int]) -> int:
    """Universal quantification over the given variable levels."""
    return mgr.not_(exists(mgr, mgr.not_(f), levels))


def relprod(
    mgr: BddManager,
    f: int,
    g: int,
    levels: Sequence[int] | frozenset[int],
) -> int:
    """Relational product ``∃ levels . f ∧ g`` without building ``f ∧ g``.

    The workhorse of symbolic image computation; quantifies variables as
    soon as the recursion passes them, which keeps intermediate results
    small (the classic and-exists optimization).
    """
    level_set = frozenset(levels)
    cache: dict[tuple[int, int], int] = {}

    def walk(a: int, b: int) -> int:
        if a == ZERO or b == ZERO:
            return ZERO
        if a == ONE and b == ONE:
            return ONE
        if a == ONE and not level_set:
            return b
        key = (a, b) if a <= b else (b, a)
        hit = cache.get(key)
        if hit is not None:
            return hit
        top = min(mgr.level(a), mgr.level(b))
        a_lo, a_hi = _cofactors(mgr, a, top)
        b_lo, b_hi = _cofactors(mgr, b, top)
        lo = walk(a_lo, b_lo)
        if top in level_set:
            if lo == ONE:
                result = ONE
            else:
                hi = walk(a_hi, b_hi)
                result = mgr.or_(lo, hi)
        else:
            hi = walk(a_hi, b_hi)
            result = mgr.ite(mgr.var(top), hi, lo)
        cache[key] = result
        return result

    return walk(f, g)


def _cofactors(mgr: BddManager, node: int, level: int) -> tuple[int, int]:
    if node > ONE and mgr.level(node) == level:
        return mgr.low(node), mgr.high(node)
    return node, node


def rename(mgr: BddManager, f: int, mapping: dict[int, int]) -> int:
    """Substitute variables: level ``k`` becomes level ``mapping[k]``.

    Requires the renaming to be *monotone* on the function's support
    (order-preserving), which holds for the interleaved current/next
    variable scheme used by the symbolic engine; violations raise
    ``ValueError`` rather than silently producing an unordered diagram.
    """
    support = sorted(mgr.support(f))
    mapped = [mapping.get(level, level) for level in support]
    if mapped != sorted(mapped):
        raise ValueError("rename mapping must preserve the variable order")
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        if node <= ONE:
            return node
        hit = cache.get(node)
        if hit is not None:
            return hit
        level = mapping.get(mgr.level(node), mgr.level(node))
        result = mgr.ite(mgr.var(level), walk(mgr.high(node)), walk(mgr.low(node)))
        cache[node] = result
        return result

    return walk(f)


def satcount(mgr: BddManager, f: int, num_vars: int | None = None) -> int:
    """Number of satisfying assignments over ``num_vars`` variables.

    ``num_vars`` defaults to the manager's declared variable count; it must
    cover the function's support.
    """
    if num_vars is None:
        num_vars = mgr.num_vars
    support = mgr.support(f)
    if support and max(support) >= num_vars:
        raise ValueError("num_vars does not cover the function's support")
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        # Count over the variables strictly below this node's level is
        # normalized at the call sites via level gaps.
        if node == ZERO:
            return 0
        if node == ONE:
            return 1
        hit = cache.get(node)
        if hit is not None:
            return hit
        lo, hi = mgr.low(node), mgr.high(node)
        lo_count = walk(lo) << _gap(mgr, node, lo, num_vars)
        hi_count = walk(hi) << _gap(mgr, node, hi, num_vars)
        result = lo_count + hi_count
        cache[node] = result
        return result

    total = walk(f)
    # Normalize for variables above the root.
    root_level = num_vars if f <= ONE else mgr.level(f)
    return total << root_level


def _gap(mgr: BddManager, parent: int, child: int, num_vars: int) -> int:
    child_level = num_vars if child <= ONE else mgr.level(child)
    return child_level - mgr.level(parent) - 1


def any_model(
    mgr: BddManager, f: int, care_levels: Sequence[int] = ()
) -> dict[int, bool] | None:
    """One satisfying assignment, or ``None`` for the zero function.

    Variables in ``care_levels`` that the function does not constrain are
    returned as ``False`` so callers get a total assignment.
    """
    if f == ZERO:
        return None
    model: dict[int, bool] = {level: False for level in care_levels}
    node = f
    while node > ONE:
        if mgr.low(node) != ZERO:
            model[mgr.level(node)] = False
            node = mgr.low(node)
        else:
            model[mgr.level(node)] = True
            node = mgr.high(node)
    return model


def iter_models(
    mgr: BddManager,
    f: int,
    care_levels: Sequence[int],
    *,
    limit: int | None = None,
) -> Iterator[dict[int, bool]]:
    """Enumerate satisfying assignments, total over ``care_levels``.

    Free variables are expanded to both values, so the enumeration size can
    be exponential; pass ``limit`` to cap it.
    """
    care = sorted(set(care_levels) | set(mgr.support(f)))
    emitted = 0

    def recurse(node: int, index: int, partial: dict[int, bool]) -> Iterator[dict[int, bool]]:
        nonlocal emitted
        if node == ZERO:
            return
        if index == len(care):
            emitted += 1
            yield dict(partial)
            return
        level = care[index]
        node_level = mgr.level(node) if node > ONE else None
        for value in (False, True):
            if limit is not None and emitted >= limit:
                return
            if node_level == level:
                child = mgr.high(node) if value else mgr.low(node)
            else:
                child = node
            partial[level] = value
            yield from recurse(child, index + 1, partial)
        del partial[level]

    yield from recurse(f, 0, {})
