"""Full (conventional) reachability analysis — paper Section 2.2.

Explicit enumeration of every reachable marking under the interleaving
semantics.  This is the "States" column of Table 1 and the baseline against
which every reduction is validated: the property tests check that the
stubborn-set explorer preserves deadlocks, that the symbolic engine computes
exactly this state set, and that GPO's scenario mapping stays inside it.

Since the search-core refactor this module is a thin
:class:`~repro.search.core.SearchSpace` adapter over the generic driver in
:mod:`repro.search.core`.  Two interchangeable spaces implement the same
semantics:

* :class:`KernelMarkingSpace` — the default fast path: packed integer
  markings from :class:`repro.net.kernel.MarkingKernel`, one fused
  enable-and-fire pass per state, and incremental enabled-set maintenance
  (only transitions touching the fired preset/postset are re-tested);
* :class:`MarkingSpace` — the frozenset reference path, selected with
  ``use_kernel=False`` (and by ``gpo check --no-kernel``) so the slow
  path stays exercised and debuggable.

Both produce byte-identical graphs (states in the same discovery order,
edges in the same order) — the differential test-suite holds them to that.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.stats import AnalysisResult, stopwatch
from repro.net.petrinet import Marking, PetriNet
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.props.ast import Property
from repro.props.eval import (
    engine_property,
    needs_decomposition,
    property_extras,
    reject_safe,
    run_property,
)
from repro.search.core import (
    SearchContext,
    SearchOutcome,
    abort_note,
    raise_if_bounded,
)
from repro.search.core import explore as _drive
from repro.search.goals import compile_goal
from repro.search.graph import ReachabilityGraph
from repro.search.observers import TracingObserver
from repro.search.witness import extract_witness

__all__ = [
    "KernelMarkingSpace",
    "MarkingSpace",
    "analyze",
    "explore",
    "extract_witness",
    "reachable_markings",
]


class MarkingSpace:
    """The full interleaving semantics as a :class:`SearchSpace`.

    Reference (frozenset) path: states are classical markings; every
    enabled transition fires.  The enabled set is memoized per
    driver-visited state (the driver passes the identical object to
    ``is_deadlock`` and ``successors``).
    """

    uses_kernel = False

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self._memo_marking: Marking | None = None
        self._memo_enabled: Sequence[int] = ()

    def _enabled(self, marking: Marking) -> Sequence[int]:
        if marking is not self._memo_marking:
            self._memo_enabled = self.net.enabled_transitions(marking)
            self._memo_marking = marking
        return self._memo_enabled

    def initial(self) -> Marking:
        return self.net.initial_marking

    def is_deadlock(self, marking: Marking) -> bool:
        return not self._enabled(marking)

    def successors(
        self, marking: Marking, ctx: SearchContext[Marking]
    ) -> Iterable[tuple[str, Marking]]:
        net = self.net
        for t in self._enabled(marking):
            yield net.transitions[t], net._fire_enabled(t, marking)

    def instrumentation(self) -> dict[str, object]:
        """No adapter-specific counters beyond the driver's."""
        return {}


class KernelMarkingSpace:
    """The same semantics on packed integer markings (the fast path).

    States are ``int`` bitmasks.  Each stored state's enabled set is kept
    as a transition bitmask in ``_enabled_masks``; a successor's mask is
    derived from its predecessor's by re-testing only the transitions
    whose preset touches the fired transition's preset/postset
    (``kernel.affected``), which turns the per-state enabling cost from
    O(|T|·|preset|) into O(affected).
    """

    uses_kernel = True

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.kernel = net.kernel()
        self._enabled_masks: dict[int, int] = {
            self.kernel.initial: self.kernel.enabled_mask(self.kernel.initial)
        }

    def decode(self, bits: int) -> Marking:
        """Frozenset view of a packed state (report boundary)."""
        return self.kernel.decode(bits)

    def initial(self) -> int:
        return self.kernel.initial

    def is_deadlock(self, bits: int) -> bool:
        return not self._enabled_masks[bits]

    def successors(
        self, bits: int, ctx: SearchContext[int]
    ) -> list[tuple[str, int]]:
        kernel = self.kernel
        labels = self.net.transitions
        masks = self._enabled_masks
        clear_mask = kernel.clear_mask
        post_mask = kernel.post_mask
        update = kernel.update_enabled_mask
        out: list[tuple[str, int]] = []
        enabled = mask = masks[bits]
        while mask:
            low = mask & -mask
            mask ^= low
            t = low.bit_length() - 1
            cleared = bits & clear_mask[t]
            post = post_mask[t]
            if cleared & post:
                kernel.fire_enabled(t, bits)  # raises UnsafeNetError
            successor = cleared | post
            if successor not in masks:
                masks[successor] = update(enabled, t, successor)
            out.append((labels[t], successor))
        return out

    def instrumentation(self) -> dict[str, object]:
        """No adapter-specific counters beyond the driver's."""
        return {}


def _marking_space(
    net: PetriNet, use_kernel: bool
) -> MarkingSpace | KernelMarkingSpace:
    return KernelMarkingSpace(net) if use_kernel else MarkingSpace(net)


def _decoded_graph(
    outcome: SearchOutcome, space: MarkingSpace | KernelMarkingSpace
) -> ReachabilityGraph[Marking]:
    """The outcome's graph over classical markings (decode boundary)."""
    if isinstance(space, KernelMarkingSpace):
        return outcome.graph.map_states(space.decode)
    return outcome.graph


def explore(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
    stop_at_first_deadlock: bool = False,
    use_kernel: bool = True,
) -> ReachabilityGraph[Marking]:
    """Build the full reachability graph RG(N) by breadth-first search.

    Raises :class:`ExplorationLimitReached` when ``max_states`` would be
    exceeded and :class:`TimeLimitReached` when ``max_seconds`` of wall
    time pass; with ``stop_at_first_deadlock`` the search returns as soon
    as one deadlocked marking is recorded (useful for big deadlocking
    instances).  ``analyze`` uses the driver's partial results instead of
    these exceptions.  The returned graph always carries classical
    frozenset markings; with ``use_kernel`` (the default) the exploration
    itself runs on packed integers and is decoded here.
    """
    space = _marking_space(net, use_kernel)
    outcome = _drive(
        space,
        order="bfs",
        max_states=max_states,
        max_seconds=max_seconds,
        stop_at_first_deadlock=stop_at_first_deadlock,
    )
    raise_if_bounded(outcome, max_states=max_states, max_seconds=max_seconds)
    return _decoded_graph(outcome, space)


def reachable_markings(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
    use_kernel: bool = True,
) -> set[Marking]:
    """The set of reachable markings explored depth-first."""
    space = _marking_space(net, use_kernel)
    outcome = _drive(
        space,
        order="dfs",
        max_states=max_states,
        max_seconds=max_seconds,
    )
    raise_if_bounded(outcome, max_states=max_states, max_seconds=max_seconds)
    return set(_decoded_graph(outcome, space).states())


def analyze(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
    want_witness: bool = True,
    use_kernel: bool = True,
    prop: "Property | str | None" = None,
) -> AnalysisResult:
    """Run full reachability analysis and package an :class:`AnalysisResult`.

    Budget overruns (state or wall-clock) are absorbed into a bounded,
    non-exhaustive result carrying the real progress made — the driver
    returns the partial graph directly, nothing is re-explored.
    ``use_kernel`` selects the packed-integer fast path (default) or the
    frozenset reference path; both report identical counts and witnesses
    (``extras["kernel"]`` records which one ran).

    ``prop`` asks a property question instead of the default deadlock
    one: ``reachable(p)`` / ``invariant(p)`` compile to a goal observer
    that terminates the search at the first deciding state; compound
    properties decompose into per-leaf runs.  The verdict lands in
    ``extras["property_holds"]``; ``prop=None`` (and the plain
    ``deadlock`` property) keeps the historical output byte-identical.
    """
    goal_prop = engine_property(prop)
    if goal_prop is not None and needs_decomposition(goal_prop):
        return run_property(
            goal_prop,
            lambda leaf: analyze(
                net,
                max_states=max_states,
                max_seconds=max_seconds,
                want_witness=want_witness,
                use_kernel=use_kernel,
                prop=leaf,
            ),
            analyzer="full",
            net_name=net.name,
        )
    space = _marking_space(net, use_kernel)
    goal = None
    if goal_prop is not None:
        reject_safe("full", goal_prop)
        goal = compile_goal(
            net,
            goal_prop,
            marking_of=(
                space.decode if isinstance(space, KernelMarkingSpace) else None
            ),
        )
    tracer = current_tracer()
    with tracer.span(names.SPAN_ANALYZE, analyzer="full", net=net.name) as root:
        # Consult the structural certificate before exploring: when it
        # holds, UnsafeNetError is provably unreachable during the search.
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        observers: tuple[object, ...] = (
            (TracingObserver(tracer),) if tracer.enabled else ()
        )
        if goal is not None:
            observers = (goal.observer, *observers)
        with stopwatch() as elapsed:
            outcome = _drive(
                space,
                order="bfs",
                max_states=max_states,
                max_seconds=max_seconds,
                observers=observers,
            )
        graph = outcome.graph
        witness = None
        if goal is not None:
            if goal.hit and want_witness:
                with tracer.span(names.SPAN_WITNESS):
                    witness = goal.witness(net, graph)
        elif graph.deadlocks and want_witness:
            decode = (
                space.decode if isinstance(space, KernelMarkingSpace) else None
            )
            with tracer.span(names.SPAN_WITNESS):
                witness = extract_witness(net, graph, decode=decode)
        extras = outcome.stats.as_extras()
        extras.update(space.instrumentation())
        extras[names.SAFETY_CERTIFIED] = certified
        note = abort_note(
            outcome.stop_reason, max_states=max_states, max_seconds=max_seconds
        )
        if note is not None and not (goal is not None and goal.hit):
            extras[names.ABORTED] = note
        if goal is not None:
            # A goal hit decides the question even though the search
            # stopped early; report the verdict as the exhaustiveness of
            # the *answer*, not of the state enumeration.
            holds = goal.holds(outcome.exhaustive)
            extras.update(property_extras(goal_prop, holds))
        result = AnalysisResult(
            analyzer="full",
            net_name=net.name,
            states=graph.num_states,
            edges=graph.num_edges,
            deadlock=bool(graph.deadlocks) if goal is None else False,
            time_seconds=elapsed[0],
            witness=witness,
            exhaustive=outcome.exhaustive or (goal is not None and goal.hit),
            extras=extras,
        )
        root.set(states=result.states, edges=result.edges)
    record_result(result)
    return result
