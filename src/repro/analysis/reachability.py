"""Full (conventional) reachability analysis — paper Section 2.2.

Explicit enumeration of every reachable marking under the interleaving
semantics.  This is the "States" column of Table 1 and the baseline against
which every reduction is validated: the property tests check that the
stubborn-set explorer preserves deadlocks, that the symbolic engine computes
exactly this state set, and that GPO's scenario mapping stays inside it.

Since the search-core refactor this module is a thin
:class:`~repro.search.core.SearchSpace` adapter (:class:`MarkingSpace`)
over the generic driver in :mod:`repro.search.core`; the exploration loop,
budgets and witness extraction all live there.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.stats import AnalysisResult, stopwatch
from repro.net.petrinet import Marking, PetriNet
from repro.search.core import SearchContext, abort_note, raise_if_bounded
from repro.search.core import explore as _drive
from repro.search.graph import ReachabilityGraph
from repro.search.witness import extract_witness

__all__ = [
    "MarkingSpace",
    "analyze",
    "explore",
    "extract_witness",
    "reachable_markings",
]


class MarkingSpace:
    """The full interleaving semantics as a :class:`SearchSpace`.

    States are classical markings; every enabled transition fires.  The
    enabled set is memoized per driver-visited state (the driver passes the
    identical object to ``is_deadlock`` and ``successors``).
    """

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self._memo_marking: Marking | None = None
        self._memo_enabled: Sequence[int] = ()

    def _enabled(self, marking: Marking) -> Sequence[int]:
        if marking is not self._memo_marking:
            self._memo_enabled = self.net.enabled_transitions(marking)
            self._memo_marking = marking
        return self._memo_enabled

    def initial(self) -> Marking:
        return self.net.initial_marking

    def is_deadlock(self, marking: Marking) -> bool:
        return not self._enabled(marking)

    def successors(
        self, marking: Marking, ctx: SearchContext[Marking]
    ) -> Iterable[tuple[str, Marking]]:
        net = self.net
        for t in self._enabled(marking):
            yield net.transitions[t], net.fire(t, marking)

    def instrumentation(self) -> dict[str, object]:
        """No adapter-specific counters beyond the driver's."""
        return {}


def explore(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
    stop_at_first_deadlock: bool = False,
) -> ReachabilityGraph[Marking]:
    """Build the full reachability graph RG(N) by breadth-first search.

    Raises :class:`ExplorationLimitReached` when ``max_states`` would be
    exceeded and :class:`TimeLimitReached` when ``max_seconds`` of wall
    time pass; with ``stop_at_first_deadlock`` the search returns as soon
    as one deadlocked marking is recorded (useful for big deadlocking
    instances).  ``analyze`` uses the driver's partial results instead of
    these exceptions.
    """
    outcome = _drive(
        MarkingSpace(net),
        order="bfs",
        max_states=max_states,
        max_seconds=max_seconds,
        stop_at_first_deadlock=stop_at_first_deadlock,
    )
    raise_if_bounded(outcome, max_states=max_states, max_seconds=max_seconds)
    return outcome.graph


def reachable_markings(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
) -> set[Marking]:
    """The set of reachable markings explored depth-first."""
    outcome = _drive(
        MarkingSpace(net),
        order="dfs",
        max_states=max_states,
        max_seconds=max_seconds,
    )
    raise_if_bounded(outcome, max_states=max_states, max_seconds=max_seconds)
    return set(outcome.graph.states())


def analyze(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
    want_witness: bool = True,
) -> AnalysisResult:
    """Run full reachability analysis and package an :class:`AnalysisResult`.

    Budget overruns (state or wall-clock) are absorbed into a bounded,
    non-exhaustive result carrying the real progress made — the driver
    returns the partial graph directly, nothing is re-explored.
    """
    space = MarkingSpace(net)
    # Consult the structural certificate before exploring: when it holds,
    # UnsafeNetError is provably unreachable during the search below.
    certified = net.static_analysis().safety_certificate.certified
    with stopwatch() as elapsed:
        outcome = _drive(
            space, order="bfs", max_states=max_states, max_seconds=max_seconds
        )
    graph = outcome.graph
    witness = None
    if graph.deadlocks and want_witness:
        witness = extract_witness(net, graph)
    extras = outcome.stats.as_extras()
    extras.update(space.instrumentation())
    extras["safety_certified"] = certified
    note = abort_note(
        outcome.stop_reason, max_states=max_states, max_seconds=max_seconds
    )
    if note is not None:
        extras["aborted"] = note
    return AnalysisResult(
        analyzer="full",
        net_name=net.name,
        states=graph.num_states,
        edges=graph.num_edges,
        deadlock=bool(graph.deadlocks),
        time_seconds=elapsed[0],
        witness=witness,
        exhaustive=outcome.exhaustive,
        extras=extras,
    )
