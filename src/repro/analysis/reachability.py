"""Full (conventional) reachability analysis — paper Section 2.2.

Explicit enumeration of every reachable marking under the interleaving
semantics.  This is the "States" column of Table 1 and the baseline against
which every reduction is validated: the property tests check that the
stubborn-set explorer preserves deadlocks, that the symbolic engine computes
exactly this state set, and that GPO's scenario mapping stays inside it.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.graph import ReachabilityGraph
from repro.analysis.stats import (
    AnalysisResult,
    Deadline,
    DeadlockWitness,
    ExplorationLimitReached,
    stopwatch,
)
from repro.net.petrinet import Marking, PetriNet

__all__ = ["explore", "analyze", "reachable_markings"]


def explore(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
    stop_at_first_deadlock: bool = False,
) -> ReachabilityGraph[Marking]:
    """Build the full reachability graph RG(N) by breadth-first search.

    Raises :class:`ExplorationLimitReached` when ``max_states`` is exceeded
    and :class:`TimeLimitReached` when ``max_seconds`` of wall time pass;
    with ``stop_at_first_deadlock`` the search returns as soon as one
    deadlocked marking is recorded (useful for big deadlocking instances).
    """
    deadline = Deadline.of(max_seconds)
    graph: ReachabilityGraph[Marking] = ReachabilityGraph(net.initial_marking)
    queue: deque[Marking] = deque([net.initial_marking])
    while queue:
        marking = queue.popleft()
        if deadline is not None:
            deadline.check(graph.num_states)
        enabled = net.enabled_transitions(marking)
        if not enabled:
            graph.mark_deadlock(marking)
            if stop_at_first_deadlock:
                return graph
            continue
        for t in enabled:
            successor = net.fire(t, marking)
            is_new = successor not in graph
            graph.add_edge(marking, net.transitions[t], successor)
            if is_new:
                if max_states is not None and graph.num_states > max_states:
                    raise ExplorationLimitReached(
                        max_states, graph.num_states
                    )
                queue.append(successor)
    return graph


def reachable_markings(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
) -> set[Marking]:
    """The set of reachable markings (no edges), cheaper than :func:`explore`."""
    deadline = Deadline.of(max_seconds)
    seen: set[Marking] = {net.initial_marking}
    frontier: list[Marking] = [net.initial_marking]
    while frontier:
        marking = frontier.pop()
        if deadline is not None:
            deadline.check(len(seen))
        for t in net.enabled_transitions(marking):
            successor = net.fire(t, marking)
            if successor not in seen:
                seen.add(successor)
                if max_states is not None and len(seen) > max_states:
                    raise ExplorationLimitReached(max_states, len(seen))
                frontier.append(successor)
    return seen


def analyze(
    net: PetriNet,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
    want_witness: bool = True,
) -> AnalysisResult:
    """Run full reachability analysis and package an :class:`AnalysisResult`.

    State-budget overruns are absorbed into a bounded, non-exhaustive
    result; time-budget overruns propagate as :class:`TimeLimitReached`
    (the harness runner converts them into non-exhaustive results).
    """
    with stopwatch() as elapsed:
        exhaustive = True
        try:
            graph = explore(net, max_states=max_states, max_seconds=max_seconds)
        except ExplorationLimitReached:
            # Re-run bounded, keeping what we saw: report non-exhaustive.
            graph = _bounded_graph(net, max_states)  # type: ignore[arg-type]
            exhaustive = False
    witness = None
    if graph.deadlocks and want_witness:
        witness = extract_witness(net, graph)
    return AnalysisResult(
        analyzer="full",
        net_name=net.name,
        states=graph.num_states,
        edges=graph.num_edges,
        deadlock=bool(graph.deadlocks),
        time_seconds=elapsed[0],
        witness=witness,
        exhaustive=exhaustive,
    )


def _bounded_graph(net: PetriNet, max_states: int) -> ReachabilityGraph[Marking]:
    """BFS that stops (instead of raising) at the state budget."""
    graph: ReachabilityGraph[Marking] = ReachabilityGraph(net.initial_marking)
    queue: deque[Marking] = deque([net.initial_marking])
    while queue and graph.num_states < max_states:
        marking = queue.popleft()
        enabled = net.enabled_transitions(marking)
        if not enabled:
            graph.mark_deadlock(marking)
            continue
        for t in enabled:
            successor = net.fire(t, marking)
            is_new = successor not in graph
            if is_new and graph.num_states >= max_states:
                continue
            graph.add_edge(marking, net.transitions[t], successor)
            if is_new:
                queue.append(successor)
    return graph


def extract_witness(
    net: PetriNet, graph: ReachabilityGraph[Marking]
) -> DeadlockWitness | None:
    """Shortest trace to some deadlock state in an explored graph."""
    best: tuple[int, Marking, list[tuple[str, Marking]]] | None = None
    for marking in graph.deadlocks:
        path = graph.path_to(marking)
        if path is None:
            continue
        if best is None or len(path) < best[0]:
            best = (len(path), marking, path)
    if best is None:
        return None
    _, marking, path = best
    return DeadlockWitness(
        marking=net.marking_names(marking),
        trace=tuple(label for label, _ in path),
    )
