"""Compatibility re-export: the graph type lives in :mod:`repro.search`.

:class:`ReachabilityGraph` moved next to the generic exploration driver
(`repro.search.graph`) together with the budget and witness helpers; this
module keeps the historical ``repro.analysis.graph`` import path working.
"""

from repro.search.graph import ReachabilityGraph

__all__ = ["ReachabilityGraph"]
