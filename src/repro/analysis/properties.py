"""Behavioural property checks built on reachability.

Implements the Petri-net properties the paper cares about (Section 2.1):

* **safeness** — no reachable marking puts two tokens in a place.  Our
  firing rule surfaces violations as :class:`UnsafeNetError`; the checker
  converts that into a verdict with a trace;
* **liveness** (L1, per-transition quasi-liveness) — every transition can
  fire in at least one reachable marking;
* **deadlock freedom** — no reachable marking disables every transition;
* **safety properties** reduced to deadlock/reachability checks: the paper
  notes "the verification of a safety property can always be reduced to a
  check for deadlock" [Godefroid-Wolper]; we expose the direct form — a
  marking predicate whose violation is searched for — plus place invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.graph import ReachabilityGraph
from repro.analysis.reachability import explore
from repro.analysis.stats import DeadlockWitness
from repro.net.exceptions import UnsafeNetError
from repro.net.petrinet import Marking, PetriNet

__all__ = [
    "PropertyReport",
    "check_safeness",
    "dead_transitions",
    "is_quasi_live",
    "check_invariant",
    "find_violation",
    "mutual_exclusion_holds",
]


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of a property check with an optional counterexample."""

    holds: bool
    description: str
    witness: DeadlockWitness | None = None

    def __bool__(self) -> bool:
        return self.holds


def check_safeness(net: PetriNet, *, max_states: int | None = None) -> PropertyReport:
    """Verify 1-safety by exhaustive exploration."""
    seen: set[Marking] = {net.initial_marking}
    stack: list[tuple[Marking, tuple[str, ...]]] = [(net.initial_marking, ())]
    while stack:
        marking, trace = stack.pop()
        for t in net.enabled_transitions(marking):
            try:
                successor = net.fire(t, marking)
            except UnsafeNetError as violation:
                return PropertyReport(
                    holds=False,
                    description=(
                        f"unsafe: firing {violation.transition!r} doubles "
                        f"the token in {violation.place!r}"
                    ),
                    witness=DeadlockWitness(
                        marking=net.marking_names(marking),
                        trace=trace + (net.transitions[t],),
                    ),
                )
            if successor not in seen:
                seen.add(successor)
                if max_states is not None and len(seen) > max_states:
                    return PropertyReport(
                        holds=True,
                        description=(
                            f"no violation within {max_states} states "
                            "(bounded check)"
                        ),
                    )
                stack.append((successor, trace + (net.transitions[t],)))
    return PropertyReport(holds=True, description="net is 1-safe")


def dead_transitions(
    net: PetriNet,
    graph: ReachabilityGraph[Marking] | None = None,
    *,
    max_states: int | None = None,
) -> list[str]:
    """Transitions that never fire in any reachable marking (not L1-live)."""
    if graph is None:
        graph = explore(net, max_states=max_states)
    fired: set[str] = set()
    for _, label, _ in graph.edges():
        fired.add(label)
    return [t for t in net.transitions if t not in fired]


def is_quasi_live(net: PetriNet, *, max_states: int | None = None) -> PropertyReport:
    """Every transition fires somewhere (L1-liveness of the whole net)."""
    dead = dead_transitions(net, max_states=max_states)
    if dead:
        return PropertyReport(
            holds=False,
            description="dead transitions: " + ", ".join(sorted(dead)),
        )
    return PropertyReport(holds=True, description="all transitions quasi-live")


def check_invariant(
    net: PetriNet,
    predicate: Callable[[frozenset[str]], bool],
    *,
    description: str = "invariant",
    max_states: int | None = None,
) -> PropertyReport:
    """Check that ``predicate`` holds on every reachable marking.

    The predicate receives the marking as a frozenset of *place names*.
    A falsifying marking is returned with its shortest trace.
    """
    graph = explore(net, max_states=max_states)
    for marking in graph.states():
        if not predicate(net.marking_names(marking)):
            path = graph.path_to(marking) or []
            return PropertyReport(
                holds=False,
                description=f"{description} violated",
                witness=DeadlockWitness(
                    marking=net.marking_names(marking),
                    trace=tuple(label for label, _ in path),
                ),
            )
    return PropertyReport(holds=True, description=f"{description} holds")


def find_violation(
    net: PetriNet,
    bad: Callable[[frozenset[str]], bool],
    *,
    max_states: int | None = None,
) -> DeadlockWitness | None:
    """Search for a reachable marking satisfying a *bad-state* predicate.

    This is the reachability form of safety checking; returns a trace to the
    first bad marking found (DFS order) or ``None``.
    """
    seen: set[Marking] = {net.initial_marking}
    stack: list[tuple[Marking, tuple[str, ...]]] = [(net.initial_marking, ())]
    while stack:
        marking, trace = stack.pop()
        if bad(net.marking_names(marking)):
            return DeadlockWitness(
                marking=net.marking_names(marking), trace=trace
            )
        for t in net.enabled_transitions(marking):
            successor = net.fire(t, marking)
            if successor not in seen:
                seen.add(successor)
                if max_states is not None and len(seen) > max_states:
                    return None
                stack.append((successor, trace + (net.transitions[t],)))
    return None


def mutual_exclusion_holds(
    net: PetriNet,
    critical_places: Iterable[str],
    *,
    max_states: int | None = None,
) -> PropertyReport:
    """No reachable marking marks two of the given places simultaneously."""
    critical = frozenset(critical_places)

    def ok(marking_names: frozenset[str]) -> bool:
        return len(marking_names & critical) <= 1

    return check_invariant(
        net,
        ok,
        description=f"mutual exclusion over {sorted(critical)}",
        max_states=max_states,
    )
