"""Result records shared by all analyzers.

Every explorer (full, stubborn, symbolic, GPO, timed) returns an
:class:`AnalysisResult` so the harness can tabulate them uniformly: the
state/edge counts, deadlock verdict with an optional witness trace, wall
time, and analyzer-specific extras — which since the search-core refactor
always include the uniform instrumentation counters (``expanded``,
``peak_frontier``, ``mean_enabled``, ``states_per_second``; the
canonical key strings live in :mod:`repro.obs.names`, re-exported via
:data:`repro.obs.names.INSTRUMENTATION_FIELDS`).

The budget types (:class:`Deadline`, the limit exceptions, ``stopwatch``)
and :class:`DeadlockWitness` moved next to the generic exploration driver
in :mod:`repro.search`; they are re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs import names
from repro.search.limits import (
    Deadline,
    ExplorationLimitReached,
    TimeLimitReached,
    stopwatch,
)
from repro.search.witness import DeadlockWitness

__all__ = [
    "AnalysisResult",
    "Deadline",
    "DeadlockWitness",
    "ExplorationLimitReached",
    "TimeLimitReached",
    "stopwatch",
]


@dataclass
class AnalysisResult:
    """Uniform outcome of a verification run."""

    analyzer: str
    net_name: str
    states: int
    edges: int
    deadlock: bool
    time_seconds: float
    witness: DeadlockWitness | None = None
    exhaustive: bool = True
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def expanded(self) -> int:
        """Expanded-state count under the canonical key, falling back to
        ``states`` for analyzers without an expansion notion (symbolic,
        unfolding) — the number the ``states_expanded`` metric reports."""
        return int(self.extras.get(names.EXPANDED, self.states))

    @property
    def peak_frontier(self) -> int:
        """Peak frontier size (0 for frontier-free analyzers)."""
        return int(self.extras.get(names.PEAK_FRONTIER, 0))

    @property
    def aborted(self) -> str | None:
        """The budget-overrun note, if the run was cut short."""
        note = self.extras.get(names.ABORTED)
        return None if note is None else str(note)

    @property
    def property_text(self) -> str | None:
        """Canonical text of the property this run answered, if any.

        ``None`` for legacy deadlock runs — the property layer leaves
        those byte-identical to the pre-layer output.
        """
        text = self.extras.get("property")
        return None if text is None else str(text)

    @property
    def property_holds(self) -> bool | None:
        """Three-valued property verdict (``None`` = inconclusive).

        Only meaningful when :attr:`property_text` is set; legacy
        deadlock runs express their verdict through ``deadlock`` /
        ``exhaustive`` instead.
        """
        if "property" not in self.extras:
            return None
        holds = self.extras.get("property_holds")
        return None if holds is None else bool(holds)

    @property
    def reduction(self) -> dict[str, Any] | None:
        """The structural-reduction provenance, when the run was reduced.

        The ``extras["reduce"]`` payload attached by the engine:
        ``pre``/``post`` net sizes (places, transitions, arcs), per-rule
        application counts, the preservation level/mode, and the full
        replayable trace.  ``None`` for unreduced runs.
        """
        payload = self.extras.get("reduce")
        return payload if isinstance(payload, dict) else None

    @property
    def verdict(self) -> str:
        """Short human-readable verdict string."""
        if "property" in self.extras:
            holds = self.property_holds
            if holds is True:
                return "property holds"
            if holds is False:
                return "property violated"
            return "property undecided (bounded)"
        if self.deadlock:
            return "DEADLOCK"
        return "deadlock-free" if self.exhaustive else "no deadlock found (bounded)"

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        parts = [
            f"{self.analyzer}: {self.verdict}",
            f"states={self.states}",
            f"edges={self.edges}",
            f"time={self.time_seconds:.3f}s",
        ]
        for key, value in sorted(self.extras.items()):
            if key == "reduce" and isinstance(value, dict):
                # The payload carries the full trace; summarize it.
                pre = "/".join(str(n) for n in value.get("pre", ()))
                post = "/".join(str(n) for n in value.get("post", ()))
                parts.append(f"reduce={pre}->{post}@{value.get('level')}")
                continue
            parts.append(f"{key}={value}")
        return "  ".join(parts)
