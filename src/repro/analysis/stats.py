"""Result records shared by all analyzers.

Every explorer (full, stubborn, symbolic, GPO) returns an
:class:`AnalysisResult` so the harness can tabulate them uniformly: the
state/edge counts, deadlock verdict with an optional witness trace, wall
time, and analyzer-specific extras (peak BDD nodes for the symbolic engine,
scenario counts for GPO).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "AnalysisResult",
    "Deadline",
    "DeadlockWitness",
    "ExplorationLimitReached",
    "TimeLimitReached",
    "stopwatch",
]


class ExplorationLimitReached(RuntimeError):
    """Raised when an explorer exceeds its configured state budget.

    ``states_explored`` carries the number of states the explorer had
    actually stored when it gave up (usually ``limit + 1``), so overrun
    reports can show real progress instead of the budget number.
    """

    def __init__(self, limit: int, states_explored: int | None = None) -> None:
        super().__init__(f"state limit of {limit} states exceeded")
        self.limit = limit
        self.states_explored = states_explored


class TimeLimitReached(RuntimeError):
    """Raised when an analyzer exceeds its configured wall-time budget.

    ``states_explored`` carries the progress made before the deadline hit
    (states, events or fixpoint iterations, depending on the analyzer).
    """

    def __init__(
        self, seconds: float, states_explored: int | None = None
    ) -> None:
        super().__init__(f"time limit of {seconds:.1f}s exceeded")
        self.seconds = seconds
        self.states_explored = states_explored


class Deadline:
    """A cooperative wall-clock budget shared by the exploration loops.

    Explorers call :meth:`check` once per stored state; when the deadline
    has passed it raises :class:`TimeLimitReached` carrying the progress
    made so far.  ``Deadline.of(None)`` returns ``None`` so callers can
    guard with ``if deadline is not None``.
    """

    __slots__ = ("seconds", "expires_at")

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.expires_at = time.perf_counter() + seconds

    @classmethod
    def of(cls, seconds: float | None) -> "Deadline | None":
        """Build a deadline, or ``None`` when no time budget applies."""
        return None if seconds is None else cls(seconds)

    def expired(self) -> bool:
        """True once the wall clock has passed the deadline."""
        return time.perf_counter() > self.expires_at

    def check(self, states_explored: int | None = None) -> None:
        """Raise :class:`TimeLimitReached` when the deadline has passed."""
        if time.perf_counter() > self.expires_at:
            raise TimeLimitReached(self.seconds, states_explored)


@dataclass(frozen=True)
class DeadlockWitness:
    """A concrete witness marking plus a firing trace reaching it.

    ``marking`` holds place *names*; ``trace`` holds transition names from
    the initial marking.  For GPN analysis the trace steps may be sets of
    simultaneously fired transitions rendered as ``{a,b}``.  ``label``
    names what the marking witnesses (a deadlock by default; the safety
    checker reuses the type for bad-marking witnesses).
    """

    marking: frozenset[str]
    trace: tuple[str, ...]
    label: str = "deadlock"

    def __str__(self) -> str:
        marking = "{" + ", ".join(sorted(self.marking)) + "}"
        if not self.trace:
            return f"{self.label} at initial marking {marking}"
        return f"{self.label} at {marking} via " + " ; ".join(self.trace)


@dataclass
class AnalysisResult:
    """Uniform outcome of a verification run."""

    analyzer: str
    net_name: str
    states: int
    edges: int
    deadlock: bool
    time_seconds: float
    witness: DeadlockWitness | None = None
    exhaustive: bool = True
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        """Short human-readable verdict string."""
        if self.deadlock:
            return "DEADLOCK"
        return "deadlock-free" if self.exhaustive else "no deadlock found (bounded)"

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        parts = [
            f"{self.analyzer}: {self.verdict}",
            f"states={self.states}",
            f"edges={self.edges}",
            f"time={self.time_seconds:.3f}s",
        ]
        for key, value in sorted(self.extras.items()):
            parts.append(f"{key}={value}")
        return "  ".join(parts)


@contextmanager
def stopwatch() -> Iterator[list[float]]:
    """Context manager measuring wall time into a single-element list.

    >>> with stopwatch() as elapsed:
    ...     pass
    >>> elapsed[0] >= 0.0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
