"""Deadlock detection helpers over explored graphs.

Thin, analyzer-agnostic layer: given any :class:`ReachabilityGraph` of
classical markings, answer deadlock questions and extract traces.  The
explorers record deadlocks while exploring; this module adds the query side
plus an on-the-fly DFS detector that avoids materializing the graph when
only the verdict is needed.
"""

from __future__ import annotations

from repro.analysis.graph import ReachabilityGraph
from repro.analysis.stats import DeadlockWitness, ExplorationLimitReached
from repro.net.petrinet import Marking, PetriNet

__all__ = [
    "has_deadlock",
    "find_deadlock",
    "all_deadlocks",
    "deadlock_witnesses",
]


def has_deadlock(net: PetriNet, *, max_states: int | None = None) -> bool:
    """Depth-first deadlock test without storing edges.

    Explores markings until a deadlock is found or the space is exhausted.
    Raises :class:`ExplorationLimitReached` past the state budget.
    """
    return find_deadlock(net, max_states=max_states) is not None


def find_deadlock(
    net: PetriNet, *, max_states: int | None = None
) -> DeadlockWitness | None:
    """DFS with trace recording; returns the first deadlock found.

    The trace is the DFS path, not necessarily shortest — use
    :func:`repro.analysis.reachability.analyze` for shortest traces.
    """
    seen: set[Marking] = {net.initial_marking}
    # stack of (marking, fired-label or None for the root)
    stack: list[tuple[Marking, list[str]]] = [(net.initial_marking, [])]
    while stack:
        marking, trace = stack.pop()
        enabled = net.enabled_transitions(marking)
        if not enabled:
            return DeadlockWitness(
                marking=net.marking_names(marking), trace=tuple(trace)
            )
        for t in enabled:
            successor = net.fire(t, marking)
            if successor in seen:
                continue
            seen.add(successor)
            if max_states is not None and len(seen) > max_states:
                raise ExplorationLimitReached(max_states)
            stack.append((successor, trace + [net.transitions[t]]))
    return None


def all_deadlocks(graph: ReachabilityGraph[Marking]) -> list[Marking]:
    """All deadlock states recorded in an explored graph, discovery order."""
    return [state for state in graph.states() if state in graph.deadlocks]


def deadlock_witnesses(
    net: PetriNet, graph: ReachabilityGraph[Marking], *, limit: int | None = None
) -> list[DeadlockWitness]:
    """Traces to every recorded deadlock (up to ``limit``)."""
    witnesses: list[DeadlockWitness] = []
    for marking in all_deadlocks(graph):
        path = graph.path_to(marking)
        if path is None:
            continue
        witnesses.append(
            DeadlockWitness(
                marking=net.marking_names(marking),
                trace=tuple(label for label, _ in path),
            )
        )
        if limit is not None and len(witnesses) >= limit:
            break
    return witnesses
