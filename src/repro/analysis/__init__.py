"""Explicit-state analysis: full reachability, deadlock and property checks.

This package is the paper's Section 2.2 substrate — conventional analysis —
and the reference semantics every reduced analyzer is validated against.
"""

from repro.analysis.deadlock import (
    all_deadlocks,
    deadlock_witnesses,
    find_deadlock,
    has_deadlock,
)
from repro.analysis.graph import ReachabilityGraph
from repro.analysis.properties import (
    PropertyReport,
    check_invariant,
    check_safeness,
    dead_transitions,
    find_violation,
    is_quasi_live,
    mutual_exclusion_holds,
)
from repro.analysis.reachability import analyze, explore, reachable_markings
from repro.analysis.stats import (
    AnalysisResult,
    DeadlockWitness,
    ExplorationLimitReached,
    TimeLimitReached,
    stopwatch,
)

__all__ = [
    "ReachabilityGraph",
    "explore",
    "analyze",
    "reachable_markings",
    "has_deadlock",
    "find_deadlock",
    "all_deadlocks",
    "deadlock_witnesses",
    "AnalysisResult",
    "DeadlockWitness",
    "ExplorationLimitReached",
    "TimeLimitReached",
    "stopwatch",
    "PropertyReport",
    "check_safeness",
    "check_invariant",
    "dead_transitions",
    "is_quasi_live",
    "find_violation",
    "mutual_exclusion_holds",
]
