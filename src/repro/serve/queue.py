"""Admission queue: priorities, per-tenant quotas, tenant-fair dequeue.

The daemon admits far more jobs than it can run at once, so ordering and
fairness live here rather than in the worker pool.  The structure is a
priority ladder of per-tenant FIFO lanes:

* **push** appends to the submitting tenant's lane at the job's priority
  level, refusing with :class:`QueueFull` when either the global capacity
  or the tenant's quota slice is exhausted (the HTTP layer turns that
  into ``429 Retry-After``);
* **pop** takes from the highest non-empty priority level, round-robining
  over the tenants present at that level — a tenant that floods the queue
  gets throughput proportional to tenants, not to submissions;
* **remove** supports cancelling a still-queued job by id.

Everything is plain deques mutated from the single event-loop thread; no
locks are needed and every operation is O(1) except ``remove`` (O(lane)).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["QueueFull", "TenantQueue"]


class QueueFull(Exception):
    """Raised by :meth:`TenantQueue.push` when admission is refused.

    ``scope`` says which limit fired (``"queue"`` or ``"tenant"``);
    ``retry_after`` is the server's backoff hint in whole seconds.
    """

    def __init__(self, scope: str, retry_after: int) -> None:
        super().__init__(f"{scope} full; retry after {retry_after}s")
        self.scope = scope
        self.retry_after = retry_after


@dataclass
class _Level:
    """One priority level: tenant lanes plus their round-robin order."""

    lanes: dict[str, deque[str]] = field(default_factory=dict)
    order: deque[str] = field(default_factory=deque)


class TenantQueue:
    """Priority queue of job ids with per-tenant quotas and fairness."""

    def __init__(self, capacity: int = 256, tenant_quota: int = 64) -> None:
        self.capacity = capacity
        self.tenant_quota = tenant_quota
        self._levels: dict[int, _Level] = {}
        self._tenant_depth: dict[str, int] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def depth_of(self, tenant: str) -> int:
        """Number of queued jobs held by ``tenant``."""
        return self._tenant_depth.get(tenant, 0)

    def retry_after(self) -> int:
        """Backoff hint: scales with backlog, clamped to [1, 60] seconds."""
        return max(1, min(60, self._size // max(1, self.capacity // 16)))

    def push(self, job_id: str, *, tenant: str, priority: int = 0) -> None:
        """Admit one job id, or raise :class:`QueueFull`."""
        if self._size >= self.capacity:
            raise QueueFull("queue", self.retry_after())
        if self.depth_of(tenant) >= self.tenant_quota:
            raise QueueFull("tenant", self.retry_after())
        level = self._levels.setdefault(priority, _Level())
        lane = level.lanes.get(tenant)
        if lane is None:
            lane = level.lanes[tenant] = deque()
            level.order.append(tenant)
        lane.append(job_id)
        self._tenant_depth[tenant] = self.depth_of(tenant) + 1
        self._size += 1

    def pop(self) -> str | None:
        """The next job id to run, or ``None`` when empty.

        Highest priority first; within a level, tenants take strict
        turns in arrival order of their lanes.
        """
        if self._size == 0:
            return None
        priority = max(p for p, lvl in self._levels.items() if lvl.order)
        level = self._levels[priority]
        tenant = level.order.popleft()
        lane = level.lanes[tenant]
        job_id = lane.popleft()
        if lane:
            level.order.append(tenant)
        else:
            del level.lanes[tenant]
        if not level.order:
            del self._levels[priority]
        self._account_removal(tenant)
        return job_id

    def remove(self, job_id: str) -> bool:
        """Cancel a queued job by id; ``True`` when it was found."""
        for priority, level in list(self._levels.items()):
            for tenant, lane in list(level.lanes.items()):
                if job_id not in lane:
                    continue
                lane.remove(job_id)
                if not lane:
                    del level.lanes[tenant]
                    level.order.remove(tenant)
                if not level.order:
                    del self._levels[priority]
                self._account_removal(tenant)
                return True
        return False

    def _account_removal(self, tenant: str) -> None:
        self._size -= 1
        depth = self._tenant_depth[tenant] - 1
        if depth:
            self._tenant_depth[tenant] = depth
        else:
            del self._tenant_depth[tenant]
