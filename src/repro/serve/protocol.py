"""Wire protocol: request validation and hardened net ingestion.

Everything arriving over HTTP is untrusted.  This module is the single
choke point between raw request bodies and the engine: JSON shape,
method/query names, budgets, priorities and tenant names are validated
field by field, and net text (native format or PNML, auto-detected by a
leading ``<``) is size-capped **before** parsing and structure-capped
after it.  Every rejection raises :class:`ApiError` carrying an HTTP
status plus a machine-readable ``reason`` slug, which the HTTP layer
renders as a structured JSON error payload — clients never see a raw
traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.engine.jobs import ANALYZERS, Budget, VerificationJob
from repro.net.exceptions import ParseError
from repro.net.parser import parse_net
from repro.net.petrinet import PetriNet
from repro.net.pnml import parse_pnml
from repro.props.ast import PropertyError
from repro.props.compat import unsupported_reason
from repro.props.compile import check_places
from repro.props.eval import as_property
from repro.serve.config import ServeConfig

__all__ = [
    "API_VERSION",
    "ApiError",
    "SubmitRequest",
    "parse_submit",
    "parse_wire_net",
]

#: Wire-protocol version, surfaced in ``/healthz``.  Version 2 added the
#: ``property`` submission field (the :mod:`repro.props` query language);
#: version 3 added the ``reduce`` option (structural reduction pre-pass,
#: ``"off"`` | ``"auto"`` | ``"aggressive"``); version 4 added the
#: ``shards`` option (sharded parallel exploration, ``method``
#: ``"parallel"`` only), the ``trace_id`` echoed in job responses, and
#: the ``/v1/jobs/{id}/trace`` + ``/v1/debug/flight`` endpoints.  Older
#: bodies remain valid — every new field defaults off.
API_VERSION = 4

#: Ceiling on the client-requested shard count (``os.cpu_count`` scale;
#: anything bigger is abuse, not parallelism).
SHARDS_MAX = 64

#: Client-visible priority range (clamped, not rejected).
PRIORITY_MIN, PRIORITY_MAX = -100, 100

#: Tenant identifiers: short, printable, no structural characters.
_TENANT_MAX_LEN = 64

#: Property texts are tiny; anything huge is abuse, not a query.
_PROPERTY_MAX_LEN = 4096


class ApiError(Exception):
    """An HTTP-mappable request failure with a structured payload."""

    def __init__(
        self,
        status: int,
        reason: str,
        detail: str = "",
        *,
        retry_after: int | None = None,
    ) -> None:
        super().__init__(f"{status} {reason}: {detail}" if detail else reason)
        self.status = status
        self.reason = reason
        self.detail = detail
        self.retry_after = retry_after

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "error": {"status": self.status, "reason": self.reason}
        }
        if self.detail:
            out["error"]["detail"] = self.detail
        if self.retry_after is not None:
            out["error"]["retry_after"] = self.retry_after
        return out


@dataclass(frozen=True)
class SubmitRequest:
    """A validated ``POST /v1/jobs`` body, ready to become a job."""

    net: PetriNet
    method: str
    query: str
    budget: Budget
    tenant: str
    priority: int
    reduce: str = "off"

    def to_job(self) -> VerificationJob:
        return VerificationJob(
            net=self.net,
            method=self.method,
            budget=self.budget,
            query=self.query,
            reduce=self.reduce,
        )


def parse_wire_net(
    text: str, fmt: str, config: ServeConfig
) -> PetriNet:
    """Parse untrusted net text under the server's size limits.

    ``fmt`` is ``"native"``, ``"pnml"`` or ``"auto"`` (leading ``<``
    selects PNML).  Raises :class:`ApiError` (400/413) with a reason of
    ``net-too-large`` / ``parse-error`` / ``bad-format``.
    """
    encoded = len(text.encode("utf-8", errors="replace"))
    if encoded > config.max_net_bytes:
        raise ApiError(
            413,
            "net-too-large",
            f"net text is {encoded} bytes; limit {config.max_net_bytes}",
        )
    # XML declarations must sit at the very start of the entity, so
    # whitespace-padded PNML would fail deep in the XML parser; strip
    # once here (harmless for the native format too).
    text = text.strip()
    if fmt == "auto":
        fmt = "pnml" if text.startswith("<") else "native"
    if fmt not in ("native", "pnml"):
        raise ApiError(
            400, "bad-format", f"unknown net format {fmt!r}"
        )
    try:
        net = parse_pnml(text) if fmt == "pnml" else parse_net(text)
    except ParseError as exc:
        raise ApiError(400, "parse-error", str(exc)) from exc
    nodes = net.num_places + net.num_transitions
    if nodes > config.max_net_nodes:
        raise ApiError(
            413,
            "net-too-large",
            f"net has {nodes} nodes; limit {config.max_net_nodes}",
        )
    if net.num_arcs > config.max_net_arcs:
        raise ApiError(
            413,
            "net-too-large",
            f"net has {net.num_arcs} arcs; limit {config.max_net_arcs}",
        )
    return net


def _clamped_number(
    body: dict[str, Any],
    key: str,
    default: float,
    cap: float,
) -> float:
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ApiError(400, "bad-request", f"{key!r} must be a number")
    if value <= 0:
        raise ApiError(400, "bad-request", f"{key!r} must be positive")
    return min(float(value), cap)


def _tenant_of(body: dict[str, Any]) -> str:
    tenant = body.get("tenant", "anonymous")
    if not isinstance(tenant, str) or not tenant:
        raise ApiError(400, "bad-request", "'tenant' must be a non-empty string")
    if len(tenant) > _TENANT_MAX_LEN or not all(
        c.isalnum() or c in "-_." for c in tenant
    ):
        raise ApiError(
            400,
            "bad-request",
            "'tenant' must be <=64 chars of [alnum-_.]",
        )
    return tenant


def _property_of(
    body: dict[str, Any], net: PetriNet, method: str, *, default: str
) -> str:
    """Validate the v2 ``property`` field into canonical query text.

    Absent field → ``default`` (the legacy deadlock question).  The text
    is parsed, normalized, place-checked against the submitted net, and
    screened against the method's preservation declarations *before* the
    job is admitted, so incompatible pairs fail fast at the protocol
    layer instead of burning a worker slot.
    """
    text = body.get("property")
    if text is None:
        return default
    if not isinstance(text, str) or not text.strip():
        raise ApiError(
            400, "bad-property", "'property' must be a non-empty string"
        )
    if len(text) > _PROPERTY_MAX_LEN:
        raise ApiError(
            400,
            "bad-property",
            f"property text is {len(text)} chars; limit {_PROPERTY_MAX_LEN}",
        )
    try:
        prop = as_property(text)
        check_places(net, prop)
    except PropertyError as exc:
        raise ApiError(400, "bad-property", str(exc)) from exc
    reason = unsupported_reason(method, prop)
    if reason is not None:
        raise ApiError(
            400,
            "unsupported-property",
            f"method {method!r} cannot take {prop.text()!r}: {reason}",
        )
    return prop.text()


def parse_submit(raw_body: bytes, config: ServeConfig) -> SubmitRequest:
    """Validate a ``POST /v1/jobs`` body into a :class:`SubmitRequest`."""
    try:
        body = json.loads(raw_body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, "bad-json", str(exc)) from exc
    if not isinstance(body, dict):
        raise ApiError(400, "bad-json", "body must be a JSON object")

    net_text = body.get("net")
    if not isinstance(net_text, str) or not net_text.strip():
        raise ApiError(
            400, "bad-request", "'net' (net text or PNML) is required"
        )
    fmt = body.get("format", "auto")
    if not isinstance(fmt, str):
        raise ApiError(400, "bad-format", "'format' must be a string")
    net = parse_wire_net(net_text, fmt, config)

    method = body.get("method", "gpo")
    if method not in ANALYZERS:
        raise ApiError(
            400,
            "unknown-method",
            f"{method!r}; expected one of {sorted(ANALYZERS)}",
        )
    query = body.get("query", "deadlock")
    if query != "deadlock":
        raise ApiError(
            400,
            "unknown-query",
            f"{query!r}; only 'deadlock' is supported — richer questions "
            "go in the 'property' field",
        )
    query = _property_of(body, net, str(method), default=str(query))

    max_states = int(
        _clamped_number(
            body, "max_states", config.default_max_states, config.max_states_cap
        )
    )
    max_seconds = _clamped_number(
        body, "max_seconds", config.default_max_seconds, config.max_seconds_cap
    )

    priority = body.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ApiError(400, "bad-request", "'priority' must be an integer")
    priority = max(PRIORITY_MIN, min(PRIORITY_MAX, priority))

    reduce = body.get("reduce", "off")
    if reduce not in ("off", "auto", "aggressive"):
        raise ApiError(
            400,
            "bad-reduce",
            f"{reduce!r}; expected 'off', 'auto' or 'aggressive'",
        )

    # v4 ``shards``: rides the budget extras into the parallel analyzer
    # (and into the cache key, so shard counts cache separately).
    shards = body.get("shards")
    budget_extra: dict[str, Any] = {}
    if shards is not None:
        if isinstance(shards, bool) or not isinstance(shards, int):
            raise ApiError(400, "bad-request", "'shards' must be an integer")
        if not 1 <= shards <= SHARDS_MAX:
            raise ApiError(
                400,
                "bad-request",
                f"'shards' must be in 1..{SHARDS_MAX}",
            )
        if method != "parallel":
            raise ApiError(
                400,
                "bad-request",
                "'shards' requires method 'parallel'",
            )
        budget_extra["shards"] = shards

    return SubmitRequest(
        net=net,
        method=str(method),
        query=str(query),
        budget=Budget(
            max_states=max_states,
            max_seconds=max_seconds,
            extra=budget_extra,
        ),
        tenant=_tenant_of(body),
        priority=priority,
        reduce=str(reduce),
    )
