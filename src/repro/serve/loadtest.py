"""Async load generator for a running daemon (``gpo loadtest``).

Replays a deterministic mixed workload — Table 1 families at several
sizes, a mix of analyzer methods and property queries
(``property_mix``), native and PNML wire formats, tenants with
configurable skew — against ``gpo serve`` at a given concurrency,
then reports latency percentiles (p50/p90/p99), throughput, cache-hit
rate and error counts.  With ``repeat > 1`` the *same* workload (same
seed) is replayed again, so the second phase measures the warm shared
result cache.

Every completed job's verdict is cross-checked against a local
in-process run of the same :class:`~repro.engine.jobs.VerificationJob`
(``verify=True``), so a loadtest doubles as a differential test of the
serving path: any conclusive disagreement is a mismatch, and the CLI
exits non-zero on one.

The JSON artifact (``BENCH_serve.json``) tracks the serving trajectory
across PRs the way ``BENCH_kernel.json`` tracks the kernel's.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.engine.jobs import Budget, VerificationJob, execute_job, is_conclusive
from repro.harness.table1 import PROBLEMS
from repro.net.parser import to_text
from repro.net.pnml import to_pnml
from repro.obs.benchmeta import stamp_bench
from repro.props.compat import filter_methods
from repro.props.eval import as_property
from repro.serve.client import ServeClient

__all__ = [
    "FAMILY_PROPERTIES",
    "LoadtestConfig",
    "format_report",
    "quick_config",
    "run_loadtest",
    "write_report",
]

#: Default per-family sizes — small enough that every analyzer finishes
#: in milliseconds, so latency measures the serving path, not the search.
DEFAULT_SIZES: Mapping[str, tuple[int, ...]] = {
    "NSDP": (2, 4, 6),
    "ASAT": (2, 4),
    "OVER": (2, 3),
    "RW": (6, 9),
}

#: Per-family property pool for ``property_mix`` draws.  Place names use
#: process index 0, which exists at every size the workload generates.
FAMILY_PROPERTIES: Mapping[str, tuple[str, ...]] = {
    "NSDP": ("reachable(eat0)", "invariant(!(eat0 & eat1))", "!deadlock"),
    "ASAT": ("reachable(use0)", "invariant(!(use0 & use1))"),
    "OVER": ("reachable(passing0)", "reachable(passing0 & passing1)"),
    "RW": ("reachable(writing0)", "invariant(!(writing0 & reading0))"),
}


@dataclass(frozen=True)
class LoadtestConfig:
    """One workload description (deterministic given ``seed``)."""

    host: str = "127.0.0.1"
    port: int = 8080
    requests: int = 100
    concurrency: int = 8
    tenants: int = 4
    #: Fraction of requests pinned to tenant 0 (the "noisy neighbour").
    skew: float = 0.0
    families: tuple[str, ...] = ("NSDP", "ASAT", "OVER", "RW")
    methods: tuple[str, ...] = ("gpo", "stubborn", "symbolic", "full")
    sizes: Mapping[str, tuple[int, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SIZES)
    )
    max_states: int = 100_000
    max_seconds: float = 30.0
    seed: int = 1998
    verify: bool = True
    poll_interval: float = 0.02
    repeat: int = 1
    #: Fraction of requests carrying a :data:`FAMILY_PROPERTIES` query in
    #: the v2 ``property`` field (the rest ask the deadlock question).
    property_mix: float = 0.0


def quick_config(host: str, port: int, **overrides: Any) -> LoadtestConfig:
    """The CI smoke preset: small, fast, still mixed."""
    defaults: dict[str, Any] = dict(
        host=host,
        port=port,
        requests=24,
        concurrency=6,
        tenants=3,
        families=("NSDP", "RW"),
        methods=("gpo", "stubborn", "symbolic"),
        sizes={"NSDP": (2, 4), "RW": (6,)},
        property_mix=0.25,
    )
    defaults.update(overrides)
    return LoadtestConfig(**defaults)


@dataclass
class _RequestSpec:
    family: str
    size: int
    method: str
    fmt: str
    tenant: str
    body: dict[str, Any]
    key: tuple[str, int, str, str]


def _compatible_methods(
    methods: tuple[str, ...], query: str
) -> tuple[str, ...]:
    """Methods the protocol layer would accept for ``query``."""
    kept, _ = filter_methods(methods, as_property(query))
    return kept


def _build_workload(config: LoadtestConfig) -> list[_RequestSpec]:
    rng = random.Random(config.seed)
    texts: dict[tuple[str, int, str], str] = {}
    specs: list[_RequestSpec] = []
    for _ in range(config.requests):
        family = rng.choice(config.families)
        size = rng.choice(config.sizes.get(family, DEFAULT_SIZES[family]))
        query = "deadlock"
        candidates = config.methods
        pool = FAMILY_PROPERTIES.get(family, ())
        if pool and rng.random() < config.property_mix:
            drawn = rng.choice(pool)
            # Draw the method from the pairs the protocol layer admits,
            # so a property request never burns a slot on a sure 400;
            # if no configured method can take it, keep the deadlock
            # question instead.
            kept = _compatible_methods(config.methods, drawn)
            if kept:
                query, candidates = drawn, kept
        method = rng.choice(candidates)
        fmt = rng.choice(("native", "pnml"))
        if rng.random() < config.skew or config.tenants <= 1:
            tenant = "tenant-0"
        else:
            tenant = f"tenant-{rng.randrange(config.tenants)}"
        text_key = (family, size, fmt)
        if text_key not in texts:
            net = PROBLEMS[family](size)
            texts[text_key] = to_pnml(net) if fmt == "pnml" else to_text(net)
        body = {
            "net": texts[text_key],
            "format": fmt,
            "method": method,
            "max_states": config.max_states,
            "max_seconds": config.max_seconds,
            "tenant": tenant,
            "priority": 0,
        }
        if query != "deadlock":
            body["property"] = query
        specs.append(
            _RequestSpec(
                family=family,
                size=size,
                method=method,
                fmt=fmt,
                tenant=tenant,
                body=body,
                key=(family, size, method, query),
            )
        )
    return specs


def _expected_verdicts(
    config: LoadtestConfig, specs: list[_RequestSpec]
) -> dict[tuple[str, int, str, str], dict[str, Any]]:
    """Ground truth: run each unique (family, size, method, query)
    in-process with the same budget."""
    out: dict[tuple[str, int, str, str], dict[str, Any]] = {}
    budget = Budget(
        max_states=config.max_states, max_seconds=config.max_seconds
    )
    for spec in specs:
        if spec.key in out:
            continue
        job = VerificationJob(
            net=PROBLEMS[spec.family](spec.size),
            method=spec.method,
            budget=budget,
            query=spec.key[3],
        )
        result = execute_job(job)
        out[spec.key] = {
            "deadlock": result.deadlock,
            "conclusive": is_conclusive(result),
            "property": result.property_text is not None,
            "holds": result.property_holds,
        }
    return out


async def _drive_one(
    client: ServeClient,
    spec: _RequestSpec,
    config: LoadtestConfig,
    semaphore: asyncio.Semaphore,
) -> dict[str, Any]:
    """Submit one job and follow it to a terminal state."""
    async with semaphore:
        started = time.perf_counter()
        try:
            response = await client.request("POST", "/v1/jobs", spec.body)
        except (OSError, ConnectionError) as exc:
            return {"outcome": "transport-error", "detail": str(exc), "key": spec.key}
        if response.status == 429:
            return {
                "outcome": "rejected",
                "retry_after": response.headers.get("retry-after"),
                "key": spec.key,
            }
        if response.status not in (200, 202):
            return {
                "outcome": "http-error",
                "status": response.status,
                "key": spec.key,
            }
        body = response.json()
        cached = response.status == 200
        while body.get("state") not in ("done", "cancelled", "failed"):
            await asyncio.sleep(config.poll_interval)
            poll = await client.request("GET", f"/v1/jobs/{body['id']}")
            if poll.status != 200:
                return {
                    "outcome": "http-error",
                    "status": poll.status,
                    "key": spec.key,
                }
            body = poll.json()
        latency = time.perf_counter() - started
        result = body.get("result") or {}
        extras = result.get("extras", {})
        return {
            "outcome": body["state"],
            "cached": cached or extras.get("cache") == "hit",
            "latency": latency,
            "deadlock": bool(result.get("deadlock", False)),
            "exhaustive": bool(result.get("exhaustive", False)),
            "holds": extras.get("property_holds")
            if "property" in extras
            else None,
            "key": spec.key,
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _summarize(
    name: str,
    rows: list[dict[str, Any]],
    wall_seconds: float,
    expected: Mapping[tuple[str, int, str, str], Mapping[str, Any]],
) -> dict[str, Any]:
    latencies = sorted(
        row["latency"] for row in rows if "latency" in row
    )
    outcomes: dict[str, int] = {}
    for row in rows:
        outcomes[row["outcome"]] = outcomes.get(row["outcome"], 0) + 1
    completed = [row for row in rows if row["outcome"] == "done"]
    cached = sum(1 for row in completed if row.get("cached"))
    mismatches: list[dict[str, Any]] = []
    for row in completed:
        want = expected.get(tuple(row["key"]))
        if want is None:
            continue
        if want.get("property"):
            # Property rows compare three-valued verdicts; only two
            # conclusive-but-different answers disagree.
            got_holds = row.get("holds")
            if (
                want["conclusive"]
                and got_holds is not None
                and got_holds != want["holds"]
            ):
                mismatches.append(
                    {"key": list(row["key"]), "got": got_holds,
                     "want": want["holds"]}
                )
            continue
        got_conclusive = row["deadlock"] or row["exhaustive"]
        if want["conclusive"] and got_conclusive:
            if row["deadlock"] != want["deadlock"]:
                mismatches.append(
                    {"key": list(row["key"]), "got": row["deadlock"],
                     "want": want["deadlock"]}
                )
    return {
        "phase": name,
        "requests": len(rows),
        "completed": len(completed),
        "outcomes": outcomes,
        "cache_hits": cached,
        "cache_hit_rate": (cached / len(completed)) if completed else 0.0,
        "verdict_mismatches": mismatches,
        "wall_seconds": round(wall_seconds, 4),
        "throughput_rps": (
            round(len(rows) / wall_seconds, 2) if wall_seconds > 0 else 0.0
        ),
        "latency_seconds": {
            "p50": round(_percentile(latencies, 0.50), 5),
            "p90": round(_percentile(latencies, 0.90), 5),
            "p99": round(_percentile(latencies, 0.99), 5),
            "mean": round(
                sum(latencies) / len(latencies), 5
            ) if latencies else 0.0,
            "max": round(latencies[-1], 5) if latencies else 0.0,
        },
    }


async def run_loadtest(config: LoadtestConfig) -> dict[str, Any]:
    """Run all phases of the workload; returns the full report dict."""
    specs = _build_workload(config)
    expected: dict[tuple[str, int, str, str], dict[str, Any]] = (
        _expected_verdicts(config, specs) if config.verify else {}
    )
    client = ServeClient(config.host, config.port)
    phases: list[dict[str, Any]] = []
    for phase_index in range(max(1, config.repeat)):
        semaphore = asyncio.Semaphore(config.concurrency)
        started = time.perf_counter()
        rows = list(
            await asyncio.gather(
                *(_drive_one(client, spec, config, semaphore) for spec in specs)
            )
        )
        wall = time.perf_counter() - started
        name = "cold" if phase_index == 0 else f"warm-{phase_index}"
        phases.append(_summarize(name, rows, wall, expected))
    return {
        "benchmark": "serve-loadtest",
        "config": {
            "requests": config.requests,
            "concurrency": config.concurrency,
            "tenants": config.tenants,
            "skew": config.skew,
            "families": list(config.families),
            "methods": list(config.methods),
            "sizes": {k: list(v) for k, v in config.sizes.items()},
            "max_states": config.max_states,
            "max_seconds": config.max_seconds,
            "seed": config.seed,
            "verified": config.verify,
            "repeat": max(1, config.repeat),
            "property_mix": config.property_mix,
        },
        "phases": phases,
    }


def format_report(report: dict[str, Any]) -> str:
    """Human-readable phase summary for the CLI."""
    lines = [
        f"loadtest: {report['config']['requests']} requests, "
        f"concurrency {report['config']['concurrency']}, "
        f"tenants {report['config']['tenants']} "
        f"(skew {report['config']['skew']})"
    ]
    for phase in report["phases"]:
        latency = phase["latency_seconds"]
        lines.append(
            f"  [{phase['phase']}] {phase['completed']}/{phase['requests']} ok  "
            f"p50={latency['p50'] * 1000:.1f}ms  "
            f"p99={latency['p99'] * 1000:.1f}ms  "
            f"{phase['throughput_rps']:.1f} req/s  "
            f"cache-hit {phase['cache_hit_rate'] * 100:.0f}%  "
            f"mismatches {len(phase['verdict_mismatches'])}"
        )
        for outcome, count in sorted(phase["outcomes"].items()):
            if outcome != "done":
                lines.append(f"      {outcome}: {count}")
    return "\n".join(lines)


def write_report(report: dict[str, Any], path: str) -> None:
    """Write the JSON artifact (``BENCH_serve.json``), provenance-stamped
    with the shared ``meta`` mapping every BENCH writer carries (see
    :mod:`repro.obs.benchmeta`)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stamp_bench(report), handle, indent=2, sort_keys=True)
        handle.write("\n")


def mismatch_count(report: dict[str, Any]) -> int:
    """Total conclusive verdict disagreements across all phases."""
    return sum(
        len(phase["verdict_mismatches"]) for phase in report["phases"]
    )


__all__.append("mismatch_count")
