"""Minimal asyncio HTTP client for the serve API (stdlib only).

The daemon speaks one-request-per-connection HTTP/1.1, so the client is
symmetric: open a connection, write one request, read one response
(Content-Length or chunked), close.  Used by ``gpo loadtest``, the test
suite and anyone scripting the API without third-party dependencies.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator

__all__ = ["HttpResponse", "ServeClient"]


@dataclass
class HttpResponse:
    """One complete response: status, headers, raw body."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


async def _read_headers(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str]]:
    status_line = (await reader.readuntil(b"\r\n")).decode("latin-1").strip()
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConnectionError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = (await reader.readuntil(b"\r\n")).decode("latin-1").strip()
        if not line:
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_chunked(reader: asyncio.StreamReader) -> bytes:
    chunks: list[bytes] = []
    while True:
        size_line = (await reader.readuntil(b"\r\n")).decode("latin-1").strip()
        size = int(size_line.split(";")[0], 16)
        if size == 0:
            await reader.readuntil(b"\r\n")
            break
        chunks.append(await reader.readexactly(size))
        await reader.readexactly(2)  # trailing CRLF
    return b"".join(chunks)


class ServeClient:
    """Talk to one ``gpo serve`` daemon at ``host:port``."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def _connect(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    def _head(self, method: str, path: str, body: bytes) -> bytes:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: close",
        ]
        if body:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def request(
        self,
        method: str,
        path: str,
        json_body: dict[str, Any] | None = None,
    ) -> HttpResponse:
        """One round-trip; the full body is read before returning."""
        body = (
            json.dumps(json_body).encode("utf-8")
            if json_body is not None
            else b""
        )
        reader, writer = await self._connect()
        try:
            writer.write(self._head(method, path, body) + body)
            await writer.drain()
            status, headers = await _read_headers(reader)
            if headers.get("transfer-encoding", "").lower() == "chunked":
                payload = await _read_chunked(reader)
            elif "content-length" in headers:
                payload = await reader.readexactly(
                    int(headers["content-length"])
                )
            else:
                payload = await reader.read()
            return HttpResponse(status=status, headers=headers, body=payload)
        finally:
            writer.close()
            await writer.wait_closed()

    async def trace(self, job_id: str) -> Any:
        """Fetch a terminal job's merged Chrome trace (parsed JSON)."""
        response = await self.request("GET", f"/v1/jobs/{job_id}/trace")
        if response.status != 200:
            raise ConnectionError(
                f"trace fetch rejected: {response.status} "
                f"{response.body[:200]!r}"
            )
        return response.json()

    async def flight(self) -> Any:
        """Fetch the daemon's flight-recorder ring (parsed JSON)."""
        response = await self.request("GET", "/v1/debug/flight")
        if response.status != 200:
            raise ConnectionError(
                f"flight fetch rejected: {response.status} "
                f"{response.body[:200]!r}"
            )
        return response.json()

    async def stream_events(self, job_id: str) -> AsyncIterator[dict[str, Any]]:
        """Yield the job's lifecycle events as dicts while they stream."""
        reader, writer = await self._connect()
        try:
            writer.write(self._head("GET", f"/v1/jobs/{job_id}/events", b""))
            await writer.drain()
            status, headers = await _read_headers(reader)
            if status != 200:
                body = await reader.read()
                raise ConnectionError(
                    f"event stream rejected: {status} {body[:200]!r}"
                )
            buffer = b""
            while True:
                size_line = (
                    (await reader.readuntil(b"\r\n")).decode("latin-1").strip()
                )
                size = int(size_line.split(";")[0], 16)
                if size == 0:
                    await reader.readuntil(b"\r\n")
                    break
                buffer += await reader.readexactly(size)
                await reader.readexactly(2)
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            writer.close()
            await writer.wait_closed()
