"""Configuration of the ``gpo serve`` daemon.

One frozen dataclass carries every tunable of the HTTP layer, the
admission queue and the dispatch loop, so tests can build hermetic
servers (port 0, tiny quotas, fast polls) without touching globals.
The limits double as the untrusted-input hardening surface: request
body, net text and parsed net sizes are all capped here, and client
supplied budgets are clamped to the server's ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance (see field comments)."""

    #: Bind address; port 0 lets the OS pick (tests read it back).
    host: str = "127.0.0.1"
    port: int = 8080

    #: Concurrent worker processes shared by all tenants.
    workers: int = 2

    #: Result-cache directory (``None`` = engine default); ``cache=False``
    #: style disabling is expressed by ``use_cache``.
    cache_dir: str | None = None
    use_cache: bool = True

    #: Total queued jobs the server admits before answering 429.
    queue_capacity: int = 256
    #: Queued jobs any single tenant may hold (its queue slice).
    tenant_quota: int = 64

    #: Hard caps on wire input (hardening against untrusted clients).
    max_body_bytes: int = 2 * 1024 * 1024
    max_net_bytes: int = 1024 * 1024
    max_header_bytes: int = 16 * 1024
    max_net_nodes: int = 20_000
    max_net_arcs: int = 100_000

    #: Server-side ceilings the requested budget is clamped to.
    max_states_cap: int = 500_000
    max_seconds_cap: float = 120.0
    default_max_states: int = 200_000
    default_max_seconds: float = 30.0

    #: Per-request span tracing (trace_id propagation is on regardless;
    #: this gates recording spans and the /v1/jobs/{id}/trace payload).
    trace: bool = True
    #: Ring size of the always-on flight recorder (``/v1/debug/flight``).
    flight_capacity: int = 256

    #: Dispatcher poll interval while workers are running (seconds).
    poll_interval: float = 0.02
    #: How long DELETE waits for a running job to die before returning.
    cancel_wait_seconds: float = 5.0
    #: Terminal job records retained for GET after completion.
    max_finished_records: int = 4096
