"""The verification daemon: routes, admission, dispatch, streaming.

:class:`ServeApp` owns one warm :class:`~repro.engine.pool.WorkerPool`
and one shared :class:`~repro.engine.cache.ResultCache` and multiplexes
every concurrent HTTP client onto them:

* ``POST /v1/jobs`` validates the body (:mod:`repro.serve.protocol`),
  answers **synchronously** on a result-cache hit, otherwise admits the
  job into the :class:`~repro.serve.queue.TenantQueue` (429 +
  ``Retry-After`` when the queue or the tenant's slice is full);
* a single dispatcher task drains the queue onto the pool — at most
  ``config.workers`` verification processes run at once, polled
  non-blockingly and hard-preempted at their deadlines by the engine's
  own machinery;
* ``GET /v1/jobs/{id}/events`` streams each job's JSONL lifecycle events
  as chunked NDJSON while they happen (every line carries the ``v``
  schema stamp);
* ``DELETE /v1/jobs/{id}`` cancels — queued jobs leave the queue, running
  jobs are killed through :meth:`WorkerPool.cancel`;
* ``GET /metrics`` exposes the live :mod:`repro.obs` metrics registry in
  Prometheus text exposition; ``GET /healthz`` reports build/schema
  versions so clients can detect incompatible upgrades;
* ``GET /v1/jobs/{id}/trace`` returns a terminal job's merged Chrome
  trace (one trace_id from admission through forked workers to the
  verdict); ``GET /v1/debug/flight`` returns the always-on flight
  recorder ring (see :mod:`repro.obs.flight`).

The dispatcher and all handlers run on one event loop; shared state is
mutated only between awaits, so no locks are needed anywhere.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import platform
import time
import uuid
from typing import Any

from repro import __version__
from repro.engine.cache import ResultCache
from repro.engine.events import EVENT_SCHEMA_VERSION, EventSink, JobEvent, JsonlEventSink
from repro.engine.pool import WorkerPool
from repro.obs import names
from repro.obs.context import TraceContext, new_trace_id, use_context
from repro.obs.exporters import chrome_trace, prometheus_text
from repro.obs.flight import FLIGHT
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer, TracerLike, set_tracer
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HttpRequest,
    end_chunked,
    read_request,
    send_chunk,
    send_json,
    send_text,
    start_chunked,
)
from repro.serve.jobs import JobRecord, JobStore
from repro.serve.protocol import API_VERSION, ApiError, parse_submit
from repro.serve.queue import QueueFull, TenantQueue

__all__ = ["ServeApp"]

#: Latency histogram bucket bounds (seconds).
_LATENCY_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _family_of(net_name: str) -> str:
    """Benchmark-family label of a net name (``NSDP-8`` → ``NSDP``).

    The SLO histograms aggregate per family, not per instance, so the
    label set stays bounded even under adversarial net names.
    """
    head = net_name.split("-")[0].split("_")[0].split(":")[0]
    alpha = "".join(ch for ch in head if not ch.isdigit())
    return (alpha or head or net_name)[:16] or "unknown"


class _TeeSink(EventSink):
    """Fan one job's events out to its buffer and the global JSONL log."""

    def __init__(self, sinks: list[EventSink]) -> None:
        self._sinks = sinks

    def emit(self, event: JobEvent) -> None:
        for sink in self._sinks:
            sink.emit(event)


class ServeApp:
    """One server instance: HTTP front end + dispatcher + shared engine."""

    def __init__(
        self, config: ServeConfig | None = None, *, events_path: str | None = None
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.started_at = time.time()
        self.cache: ResultCache | None = (
            ResultCache(self.config.cache_dir) if self.config.use_cache else None
        )
        self.pool = WorkerPool(self.config.workers, cache=self.cache)
        self.queue = TenantQueue(
            self.config.queue_capacity, self.config.tenant_quota
        )
        self.store = JobStore(self.config.max_finished_records)
        self.metrics = MetricsRegistry()
        # Per-request span tracing: the daemon owns one long-lived tracer
        # feeding the shared metrics registry; each request's spans are
        # moved onto its JobRecord at terminal transition (Tracer.take),
        # so the tracer itself never accumulates unbounded history.
        self.tracer: TracerLike = (
            Tracer(metrics=self.metrics) if self.config.trace else NULL_TRACER
        )
        self._previous_tracer: TracerLike | None = None
        FLIGHT.configure(self.config.flight_capacity)
        self._global_sink: EventSink | None = (
            JsonlEventSink(events_path) if events_path else None
        )
        self._running: dict[str, JobRecord] = {}
        self._wake = asyncio.Event()
        self._server: asyncio.Server | None = None
        self._dispatcher: asyncio.Task[None] | None = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher task."""
        # Install the daemon tracer as the ambient one so engine forks
        # (which read ``current_tracer()``) record into it.
        self._previous_tracer = set_tracer(self.tracer)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`; 0 before)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return int(self._server.sockets[0].getsockname()[1])

    async def stop(self) -> None:
        """Stop accepting, cancel running jobs, release resources."""
        self._stopping = True
        self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._global_sink is not None:
            self._global_sink.close()
        if self._previous_tracer is not None:
            set_tracer(self._previous_tracer)
            self._previous_tracer = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``gpo serve`` foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _sink_for(self, record: JobRecord) -> EventSink:
        if self._global_sink is None:
            return record.sink
        return _TeeSink([record.sink, self._global_sink])

    def _finish_record(self, record: JobRecord) -> None:
        """Terminal-transition choke point: every path that ends a job
        runs through here — counters, the SLO decomposition histograms,
        span closure, and moving the request's trace onto the record."""
        self.metrics.counter("serve_jobs_total", outcome=record.state).inc()
        family = _family_of(record.job.net.name)
        method = record.job.method
        if record.outcome is not None:
            self.metrics.histogram(
                "serve_job_wall_seconds", buckets=_LATENCY_BUCKETS
            ).observe(record.outcome.wall_seconds)
        wait = record.queue_wait_seconds
        if wait is not None:
            self.metrics.histogram(
                names.SERVE_QUEUE_WAIT_SECONDS,
                buckets=_LATENCY_BUCKETS,
                method=method,
                family=family,
            ).observe(wait)
        if record.outcome is not None and record.outcome.status != "error":
            self.metrics.histogram(
                names.SERVE_SEARCH_SECONDS,
                buckets=_LATENCY_BUCKETS,
                method=method,
                family=family,
            ).observe(record.outcome.result.time_seconds)
        # Close the request's spans (idempotent: whichever terminal path
        # got here first wins) and move its finished records off the
        # daemon tracer onto the record, so trace retention follows job
        # retention.
        if record.queue_span is not None:
            record.queue_span.end()
        if record.request_span is not None:
            record.request_span.end(state=record.state)
        if record.trace_id is not None and record.trace_records is None:
            record.trace_records = self.tracer.take(record.trace_id)
            reduce_ns = sum(
                int(r.get("dur_ns", 0))
                for r in record.trace_records
                if r.get("name") == names.SPAN_REDUCE
            )
            if reduce_ns:
                self.metrics.histogram(
                    names.SERVE_REDUCE_SECONDS,
                    buckets=_LATENCY_BUCKETS,
                    method=method,
                    family=family,
                ).observe(reduce_ns / 1e9)
        # Serialization phase: the response body is built once per
        # terminal transition; time it where it happens.
        serialize_start = time.perf_counter()
        json.dumps(record.describe())
        self.metrics.histogram(
            names.SERVE_SERIALIZE_SECONDS,
            buckets=_LATENCY_BUCKETS,
            method=method,
            family=family,
        ).observe(time.perf_counter() - serialize_start)

    def _start_ready(self) -> None:
        while len(self._running) < self.pool.max_workers:
            job_id = self.queue.pop()
            if job_id is None:
                break
            record = self.store.get(job_id)
            if record is None:  # evicted while queued; nothing to run
                continue
            sink = self._sink_for(record)
            if record.cancel_requested:
                with use_context(record.trace_context):
                    sink.record(
                        "cancelled", record.job, detail="cancelled while queued"
                    )
                record.mark_cancelled_queued()
                self._finish_record(record)
                continue
            if record.queue_span is not None:
                record.queue_span.end()
            with use_context(record.trace_context):
                cached = self.pool.try_cache(record.job, events=sink)
                if cached is not None:
                    self.metrics.counter("serve_cache_hits_total").inc()
                    record.finish(cached)
                    self._finish_record(record)
                    continue
                handle = self.pool.submit(record.job, events=sink)
            record.mark_running(handle)
            self._running[record.id] = record

    def _poll_running(self) -> None:
        for job_id, record in list(self._running.items()):
            sink = self._sink_for(record)
            with use_context(record.trace_context):
                if record.cancel_requested:
                    outcome = self.pool.cancel(record.handle, events=sink)
                else:
                    polled = record.handle.poll()
                    if polled is None:
                        continue
                    outcome = self.pool.finalize(polled, events=sink)
            del self._running[job_id]
            record.finish(outcome)
            self._finish_record(record)
        self.store.evict_finished()

    def _update_gauges(self) -> None:
        self.metrics.gauge("serve_queue_depth").set(len(self.queue))
        self.metrics.gauge("serve_running_jobs").set(len(self._running))

    async def _dispatch_loop(self) -> None:
        while not self._stopping:
            # Clear *before* reading state: a wake set at either await
            # below survives into the next iteration's checks, and the
            # checks below read the actual queue/pool state, so a wake
            # consumed here can never be lost.
            self._wake.clear()
            self._start_ready()
            self._poll_running()
            self._update_gauges()
            if self._running:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._wake.wait(), self.config.poll_interval
                    )
            elif len(self.queue) == 0:
                await self._wake.wait()
            # else: capacity just freed with work still queued — loop
            # around immediately and start it.
        # Drain on shutdown: nothing may outlive the daemon.
        for job_id, record in list(self._running.items()):
            with use_context(record.trace_context):
                outcome = self.pool.cancel(
                    record.handle, events=self._sink_for(record)
                )
            record.finish(outcome)
            self._finish_record(record)
            del self._running[job_id]
        while True:
            job_id = self.queue.pop()
            if job_id is None:
                break
            record = self.store.get(job_id)
            if record is not None:
                record.mark_cancelled_queued()
                self._finish_record(record)
        self._update_gauges()

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        route = "?"
        try:
            request = await read_request(
                reader,
                max_header_bytes=self.config.max_header_bytes,
                max_body_bytes=self.config.max_body_bytes,
            )
            if request is not None:
                route = await self._route(request, writer)
        except ApiError as exc:
            self._count_http(route, exc.status)
            headers = (
                {"Retry-After": str(exc.retry_after)}
                if exc.retry_after is not None
                else None
            )
            with contextlib.suppress(OSError):
                await send_json(writer, exc.status, exc.payload(), headers=headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:  # noqa: BLE001 - never leak a traceback on the wire
            self._count_http(route, 500)
            with contextlib.suppress(OSError):
                await send_json(
                    writer,
                    500,
                    {"error": {"status": 500, "reason": "internal-error"}},
                )
        finally:
            with contextlib.suppress(OSError):
                writer.close()
                await writer.wait_closed()

    def _count_http(self, route: str, code: int) -> None:
        self.metrics.counter(
            "serve_http_requests_total", route=route, code=code
        ).inc()

    async def _route(self, request: HttpRequest, writer: asyncio.StreamWriter) -> str:
        """Dispatch one request; returns the route label for metrics."""
        path, method = request.path.rstrip("/") or "/", request.method
        if path == "/healthz" and method in ("GET", "HEAD"):
            await self._handle_healthz(writer)
            return "/healthz"
        if path == "/metrics" and method in ("GET", "HEAD"):
            await self._handle_metrics(writer)
            return "/metrics"
        if path == "/v1/jobs" and method == "POST":
            await self._handle_submit(request, writer)
            return "/v1/jobs"
        if path == "/v1/debug/flight" and method == "GET":
            await self._handle_flight(writer)
            return "/v1/debug/flight"
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "jobs":
            job_id = parts[3]
            if len(parts) == 4 and method == "GET":
                await self._handle_status(job_id, writer)
                return "/v1/jobs/{id}"
            if len(parts) == 4 and method == "DELETE":
                await self._handle_cancel(job_id, writer)
                return "/v1/jobs/{id}"
            if len(parts) == 5 and parts[4] == "events" and method == "GET":
                await self._handle_events(job_id, writer)
                return "/v1/jobs/{id}/events"
            if len(parts) == 5 and parts[4] == "trace" and method == "GET":
                await self._handle_trace(job_id, writer)
                return "/v1/jobs/{id}/trace"
        raise ApiError(404, "not-found", f"{method} {request.path}")

    # ------------------------------------------------------------------
    async def _handle_submit(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        submit = parse_submit(request.body, self.config)
        job = submit.to_job()
        job_id = uuid.uuid4().hex[:12]
        # Every request gets a trace_id at admission — it is the
        # correlation key of the response, the JSONL events and (when
        # tracing is on) the span timeline, so it exists even with the
        # null tracer.
        trace_id = new_trace_id()
        record = JobRecord(
            job_id,
            job,
            tenant=submit.tenant,
            priority=submit.priority,
            trace_id=trace_id,
        )
        with use_context(TraceContext(trace_id)):
            record.request_span = self.tracer.start(
                names.SPAN_SERVE_REQUEST,
                job_id=job_id,
                tenant=submit.tenant,
                method=job.method,
                net=job.net.name,
            )
        # The context every later phase (dispatch, poll, cancel) runs
        # under: same trace, parented to the request span.
        record.trace_context = TraceContext(
            trace_id, getattr(record.request_span, "span_id", None)
        )
        sink = self._sink_for(record)
        with use_context(record.trace_context):
            sink.record("queued", job, detail=f"tenant={submit.tenant}")
            self.metrics.counter("serve_submitted_total").inc()

            # Cache fast path: identical (net, method, query, budget)
            # answered synchronously, without consuming a queue slot or a
            # worker.
            cached = self.pool.try_cache(job, events=sink)
            if cached is not None:
                self.metrics.counter("serve_cache_hits_total").inc()
                record.finish(cached)
                self.store.add(record)
                self._finish_record(record)
                self._count_http("/v1/jobs", 200)
                body = record.describe()
                body["cached"] = True
                await send_json(writer, 200, body)
                return

            # Backpressure: admission control happens before the record
            # is visible, so a rejected submission leaves no state
            # behind (the request span dies un-taken with the record).
            try:
                self.queue.push(
                    job_id, tenant=submit.tenant, priority=submit.priority
                )
            except QueueFull as exc:
                record.request_span.end(state="rejected")
                if record.trace_id is not None:
                    self.tracer.take(record.trace_id)
                raise ApiError(
                    429,
                    f"{exc.scope}-full",
                    f"the {exc.scope} admission limit is reached",
                    retry_after=exc.retry_after,
                ) from exc
            record.queue_span = self.tracer.start(
                names.SPAN_SERVE_QUEUE, tenant=submit.tenant
            )
        self.store.add(record)
        self._wake.set()
        self._count_http("/v1/jobs", 202)
        body = record.describe()
        body["cached"] = False
        await send_json(writer, 202, body)

    def _record_or_404(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record is None:
            raise ApiError(404, "unknown-job", job_id)
        return record

    async def _handle_status(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        record = self._record_or_404(job_id)
        self._count_http("/v1/jobs/{id}", 200)
        await send_json(writer, 200, record.describe())

    async def _handle_cancel(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        record = self._record_or_404(job_id)
        if not record.terminal:
            if record.state == "queued" and self.queue.remove(job_id):
                self._sink_for(record).record(
                    "cancelled", record.job, detail="cancelled while queued"
                )
                record.mark_cancelled_queued()
                self._finish_record(record)
            else:
                record.cancel_requested = True
                self._wake.set()
                await record.wait_terminal(self.config.cancel_wait_seconds)
        status = 200 if record.terminal else 202
        self._count_http("/v1/jobs/{id}", status)
        await send_json(writer, status, record.describe())

    async def _handle_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        record = self._record_or_404(job_id)
        self._count_http("/v1/jobs/{id}/events", 200)
        await start_chunked(
            writer,
            headers={"X-Event-Schema-Version": str(EVENT_SCHEMA_VERSION)},
        )
        index = 0
        while True:
            version = record.version
            while index < len(record.events):
                line = json.dumps(record.events[index], sort_keys=True) + "\n"
                await send_chunk(writer, line.encode("utf-8"))
                index += 1
            if record.terminal:
                break
            await record.wait_change(version)
        await end_chunked(writer)

    async def _handle_trace(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/jobs/{id}/trace``: the request's merged Chrome trace.

        One trace_id spanning admission → queue → reduce → search (and,
        for sharded jobs, the forked shard workers) → verdict.  Only
        meaningful once terminal — the spans are moved onto the record
        at the terminal transition — so a live job answers 409.
        """
        record = self._record_or_404(job_id)
        if not record.terminal:
            raise ApiError(
                409,
                "job-not-terminal",
                f"job {job_id} is {record.state}; its merged trace is "
                "available once the job is terminal",
            )
        records = record.trace_records or []
        body: dict[str, Any] = {
            "trace_id": record.trace_id,
            "spans": len(records),
            "tracing_enabled": self.tracer.enabled,
        }
        body.update(chrome_trace(records))
        self._count_http("/v1/jobs/{id}/trace", 200)
        await send_json(writer, 200, body)

    async def _handle_flight(self, writer: asyncio.StreamWriter) -> None:
        """``GET /v1/debug/flight``: the always-on diagnostic ring."""
        body: dict[str, Any] = {
            "capacity": FLIGHT.capacity,
            "recorded": FLIGHT.recorded,
            "records": FLIGHT.snapshot(),
        }
        self._count_http("/v1/debug/flight", 200)
        await send_json(writer, 200, body)

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> None:
        self._update_gauges()
        self._count_http("/metrics", 200)
        await send_text(writer, 200, prometheus_text(self.metrics))

    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> None:
        payload: dict[str, Any] = {
            "status": "ok",
            "service": "gpo-serve",
            "version": __version__,
            "protocol_version": API_VERSION,
            "event_schema_version": EVENT_SCHEMA_VERSION,
            "python": platform.python_version(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": self.pool.max_workers,
            "trace": self.tracer.enabled,
            "queue": {
                "depth": len(self.queue),
                "capacity": self.config.queue_capacity,
                "tenant_quota": self.config.tenant_quota,
            },
            "jobs": self.store.counts(),
            "cache": {
                "enabled": self.cache is not None,
                "hits": self.cache.hits if self.cache else 0,
                "misses": self.cache.misses if self.cache else 0,
            },
        }
        self._count_http("/healthz", 200)
        await send_json(writer, 200, payload)
