"""Server-side job records: states, event buffers, change notification.

A :class:`JobRecord` is the daemon's view of one submitted
:class:`~repro.engine.jobs.VerificationJob` — its serve-level state
machine (``queued → running → done | cancelled | failed``), the buffered
lifecycle events that back ``GET /v1/jobs/{id}/events``, and an
asyncio-native change signal so streamers wake without polling.

Engine events reach the record through :class:`JobEventBuffer`, an
:class:`~repro.engine.events.EventSink` handed to the worker pool per
call — the pool's own lifecycle machinery stays untouched, the serve
layer just routes each job's stream to its own buffer and enriches every
payload with the serve job id (the schema version ``v`` is stamped by
:meth:`JobEvent.payload` itself).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any

from repro.engine.cache import result_to_dict
from repro.engine.events import EventSink, JobEvent
from repro.engine.jobs import JobResult, VerificationJob

__all__ = ["JobEventBuffer", "JobRecord", "JobStore", "TERMINAL_STATES"]

#: Serve-level states a record can end in.
TERMINAL_STATES = frozenset({"done", "cancelled", "failed"})

#: Engine JobResult.status → serve-level terminal state.  A ``killed``
#: job produced a legitimate (non-exhaustive) result at its deadline, so
#: it completes as ``done``; only worker errors/crashes are ``failed``.
_STATUS_TO_STATE = {
    "ok": "done",
    "cached": "done",
    "killed": "done",
    "cancelled": "cancelled",
    "error": "failed",
}


class JobRecord:
    """One submitted job: identity, state, outcome and event buffer."""

    def __init__(
        self,
        job_id: str,
        job: VerificationJob,
        *,
        tenant: str,
        priority: int,
        trace_id: str | None = None,
    ) -> None:
        self.id = job_id
        self.job = job
        self.tenant = tenant
        self.priority = priority
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.dispatched_at: float | None = None
        self.finished_at: float | None = None
        self.outcome: JobResult | None = None
        self.cancel_requested = False
        self.events: list[dict[str, Any]] = []
        self.sink = JobEventBuffer(self)
        # Request correlation: the trace_id minted at admission, the
        # TraceContext the dispatcher re-installs around engine calls,
        # the request/queue spans (typed loosely — Span or the null
        # span), and the request's finished span records, moved off the
        # daemon tracer at terminal transition so they are retained (and
        # evicted) with the record itself.
        self.trace_id = trace_id
        self.trace_context: Any = None
        self.request_span: Any = None
        self.queue_span: Any = None
        self.trace_records: list[dict[str, Any]] | None = None
        # Running-state bookkeeping owned by the dispatcher: the live
        # WorkerHandle (typed loosely to keep this module engine-agnostic).
        self.handle: Any = None
        self._version = 0
        self._changed = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def version(self) -> int:
        """Monotonic change counter; bumps on every event/state change."""
        return self._version

    def _touch(self) -> None:
        self._version += 1
        changed, self._changed = self._changed, asyncio.Event()
        changed.set()

    async def wait_change(self, seen_version: int) -> None:
        """Block until the record changes past ``seen_version``."""
        while self._version == seen_version:
            await self._changed.wait()

    async def wait_terminal(self, timeout: float | None = None) -> bool:
        """Wait until the record is terminal; ``False`` on timeout."""

        async def _wait() -> None:
            while not self.terminal:
                await self.wait_change(self._version)

        try:
            await asyncio.wait_for(_wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    # ------------------------------------------------------------------
    def add_event(self, payload: dict[str, Any]) -> None:
        """Append one event payload (already schema-stamped) and notify."""
        payload.setdefault("job_id", self.id)
        self.events.append(payload)
        self._touch()

    @property
    def queue_wait_seconds(self) -> float | None:
        """Seconds from admission to dispatch (or to terminal, for jobs
        that never ran: cache hits, queued cancellations)."""
        reference = self.dispatched_at
        if reference is None:
            reference = self.finished_at
        if reference is None:
            return None
        return max(0.0, reference - self.submitted_at)

    def mark_running(self, handle: Any) -> None:
        self.state = "running"
        self.started_at = time.time()
        self.dispatched_at = self.started_at
        self.handle = handle
        self._touch()

    def finish(self, outcome: JobResult) -> None:
        """Record the engine outcome and enter the matching terminal state."""
        self.outcome = outcome
        self.state = _STATUS_TO_STATE.get(outcome.status, "done")
        self.finished_at = time.time()
        self.handle = None
        self._touch()

    def mark_cancelled_queued(self) -> None:
        """Cancel a job that never started (no engine outcome exists)."""
        self.state = "cancelled"
        self.finished_at = time.time()
        self._touch()

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """The JSON body of ``GET /v1/jobs/{id}``."""
        out: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "tenant": self.tenant,
            "priority": self.priority,
            "net": self.job.net.name,
            "method": self.job.method,
            "query": self.job.query,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
            "cancel_requested": self.cancel_requested,
            "trace_id": self.trace_id,
        }
        wait = self.queue_wait_seconds
        if wait is not None:
            out["queue_wait_seconds"] = wait
        if self.outcome is not None:
            out["engine_status"] = self.outcome.status
            out["wall_seconds"] = self.outcome.wall_seconds
            if self.outcome.error is not None:
                out["error"] = self.outcome.error
            if self.outcome.status != "error":
                out["result"] = result_to_dict(self.outcome.result)
                out["verdict"] = self.outcome.result.verdict
        return out


class JobEventBuffer(EventSink):
    """Event sink routing one job's lifecycle events into its record."""

    def __init__(self, record: JobRecord) -> None:
        self._record = record

    def emit(self, event: JobEvent) -> None:
        self._record.add_event(event.payload())


class JobStore:
    """Id-keyed record store with bounded retention of terminal records.

    Live (queued/running) records are never evicted; once the number of
    terminal records exceeds ``max_finished``, the oldest-finished ones
    are dropped so a long-lived daemon's memory stays bounded.
    """

    def __init__(self, max_finished: int = 4096) -> None:
        self.max_finished = max_finished
        self._records: OrderedDict[str, JobRecord] = OrderedDict()

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: JobRecord) -> None:
        self._records[record.id] = record

    def get(self, job_id: str) -> JobRecord | None:
        return self._records.get(job_id)

    def counts(self) -> dict[str, int]:
        """State → record count (the /healthz jobs summary)."""
        out: dict[str, int] = {}
        for record in self._records.values():
            out[record.state] = out.get(record.state, 0) + 1
        return out

    def evict_finished(self) -> int:
        """Drop oldest terminal records beyond the cap; returns #dropped."""
        terminal = [r.id for r in self._records.values() if r.terminal]
        excess = len(terminal) - self.max_finished
        for job_id in terminal[:max(0, excess)]:
            del self._records[job_id]
        return max(0, excess)
