"""Minimal HTTP/1.1 plumbing over asyncio streams (stdlib only).

Just enough of the protocol for the verification API: request-line +
headers + Content-Length bodies on the way in, JSON and chunked
streaming responses on the way out.  Deliberately simple-by-policy:

* one request per connection (every response carries
  ``Connection: close``) — no keep-alive state machine to get wrong;
* hard limits on request-line, header block and body sizes, enforced
  **before** any allocation proportional to client input;
* malformed input maps to :class:`ApiError` (400/413/431/405), never a
  traceback on the wire.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.serve.protocol import ApiError

__all__ = [
    "HttpRequest",
    "read_request",
    "send_chunk",
    "send_json",
    "send_text",
    "start_chunked",
    "end_chunked",
]

_MAX_REQUEST_LINE = 4096
_SUPPORTED_METHODS = frozenset({"GET", "POST", "DELETE", "HEAD"})

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


@dataclass
class HttpRequest:
    """One parsed request: method, split path, query and body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = 16 * 1024,
    max_body_bytes: int = 2 * 1024 * 1024,
) -> HttpRequest | None:
    """Read and validate one request; ``None`` on a cleanly closed socket."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ApiError(400, "bad-request-line", "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ApiError(431, "request-line-too-long") from exc
    if len(line) > _MAX_REQUEST_LINE:
        raise ApiError(431, "request-line-too-long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ApiError(400, "bad-request-line", line.decode("latin-1").strip())
    method, target = parts[0].upper(), parts[1]
    if method not in _SUPPORTED_METHODS:
        raise ApiError(405, "method-not-allowed", method)

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise ApiError(400, "bad-headers", "truncated header block") from exc
        header_bytes += len(line)
        if header_bytes > max_header_bytes:
            raise ApiError(431, "headers-too-large")
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ApiError(400, "bad-headers", f"malformed header {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ApiError(400, "bad-headers", "non-integer content-length") from exc
        if length < 0:
            raise ApiError(400, "bad-headers", "negative content-length")
        if length > max_body_bytes:
            raise ApiError(
                413,
                "body-too-large",
                f"body is {length} bytes; limit {max_body_bytes}",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ApiError(400, "bad-request", "truncated body") from exc
    elif headers.get("transfer-encoding"):
        raise ApiError(
            400, "bad-request", "chunked request bodies are not supported"
        )

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def _head(
    status: int,
    content_type: str,
    extra_headers: dict[str, str] | None,
    *,
    length: int | None,
    chunked: bool = False,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif length is not None:
        lines.append(f"Content-Length: {length}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_text(
    writer: asyncio.StreamWriter,
    status: int,
    text: str,
    *,
    content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    headers: dict[str, str] | None = None,
) -> None:
    """Write a complete plain-text response."""
    payload = text.encode("utf-8")
    writer.write(
        _head(status, content_type, headers, length=len(payload)) + payload
    )
    await writer.drain()


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict[str, Any],
    *,
    headers: dict[str, str] | None = None,
) -> None:
    """Write a complete JSON response."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    writer.write(
        _head(status, "application/json", headers, length=len(body)) + body
    )
    await writer.drain()


async def start_chunked(
    writer: asyncio.StreamWriter,
    status: int = 200,
    *,
    content_type: str = "application/x-ndjson",
    headers: dict[str, str] | None = None,
) -> None:
    """Begin a chunked response (the event-stream endpoint)."""
    writer.write(_head(status, content_type, headers, length=None, chunked=True))
    await writer.drain()


async def send_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    """Write one chunk and flush it to the client immediately."""
    if not data:
        return
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
    await writer.drain()


async def end_chunked(writer: asyncio.StreamWriter) -> None:
    """Terminate a chunked response."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
