"""Verification-as-a-service: a stdlib-only asyncio HTTP daemon.

``repro.serve`` turns the one-shot execution engine into serving
capacity: one long-lived process with one warm
:class:`~repro.engine.pool.WorkerPool` and one shared result cache
behind an HTTP API —

* :class:`~repro.serve.app.ServeApp` — the daemon (``gpo serve``);
* :class:`~repro.serve.queue.TenantQueue` — priority admission with
  per-tenant quotas and 429 backpressure;
* :class:`~repro.serve.client.ServeClient` — stdlib asyncio client;
* :mod:`repro.serve.loadtest` — the ``gpo loadtest`` workload replayer
  producing ``BENCH_serve.json``.

API surface (v1)::

    POST   /v1/jobs             submit a net (native/PNML); cache hits
                                answer synchronously
    GET    /v1/jobs/{id}        status + AnalysisResult JSON
    GET    /v1/jobs/{id}/events chunked NDJSON lifecycle-event stream
    DELETE /v1/jobs/{id}        cancel (queued or running)
    GET    /metrics             live Prometheus text exposition
    GET    /healthz             build/schema versions, queue/jobs summary
"""

from repro.serve.app import ServeApp
from repro.serve.client import HttpResponse, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.jobs import JobRecord, JobStore
from repro.serve.loadtest import (
    LoadtestConfig,
    format_report,
    mismatch_count,
    quick_config,
    run_loadtest,
    write_report,
)
from repro.serve.protocol import ApiError, parse_submit, parse_wire_net
from repro.serve.queue import QueueFull, TenantQueue

__all__ = [
    "ApiError",
    "HttpResponse",
    "JobRecord",
    "JobStore",
    "LoadtestConfig",
    "QueueFull",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "TenantQueue",
    "format_report",
    "mismatch_count",
    "parse_submit",
    "parse_wire_net",
    "quick_config",
    "run_loadtest",
    "write_report",
]
