"""Linter-style diagnostics for reduction results.

``gpo reduce --explain`` and ``gpo lint`` render reductions as findings:
one line per rule application (what was removed and why it was sound),
plus per-rule opportunity summaries.  The data form feeds the lint
report's JSON and SARIF serializations; the text form is for terminals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.reduce.engine import Reduction

__all__ = ["ReductionFinding", "explain", "findings_of"]

#: Stable finding identifiers, one per rule, for machine consumers
#: (SARIF ``ruleId`` values).
_RULE_IDS = {
    "dead-transition": "reduce/dead-transition",
    "constant-place": "reduce/constant-place",
    "duplicate-place": "reduce/duplicate-place",
    "isolated-place": "reduce/isolated-place",
    "sink-place": "reduce/sink-place",
    "fuse-series": "reduce/fuse-series",
    "pre-agglomerate": "reduce/pre-agglomerate",
}


@dataclass(frozen=True)
class ReductionFinding:
    """One structural finding: a rule application, linter-shaped."""

    rule_id: str
    message: str
    places: tuple[str, ...] = ()
    transitions: tuple[str, ...] = ()

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {"rule": self.rule_id, "message": self.message}
        if self.places:
            out["places"] = list(self.places)
        if self.transitions:
            out["transitions"] = list(self.transitions)
        return out


def findings_of(reduction: Reduction) -> tuple[ReductionFinding, ...]:
    """One finding per applied reduction step."""
    findings = []
    for step in reduction.trace.steps:
        findings.append(
            ReductionFinding(
                rule_id=_RULE_IDS.get(step.rule, f"reduce/{step.rule}"),
                message=step.describe(),
                places=step.removed_places,
                transitions=step.removed_transitions,
            )
        )
    return tuple(findings)


def explain(reduction: Reduction) -> str:
    """Human-readable ``--explain`` report for one reduction."""
    pre, post = reduction.sizes()
    lines = [
        f"net {reduction.original.name!r}: "
        f"{pre[0]}P/{pre[1]}T/{pre[2]}A -> {post[0]}P/{post[1]}T/{post[2]}A "
        f"(level={reduction.level}, mode={reduction.mode})"
    ]
    if not reduction.reduced:
        lines.append("  no rule applied; the net is already irreducible")
        return "\n".join(lines)
    for name, count in reduction.rule_counts().items():
        lines.append(f"  {name}: {count} application(s)")
    for finding in findings_of(reduction):
        lines.append(f"  [{finding.rule_id}] {finding.message}")
    if reduction.counts_preserved:
        lines.append(
            "  counts preserved: state/edge counts map back 1:1"
        )
    else:
        lines.append(
            "  counts NOT preserved: verdicts and witnesses map back, "
            "state counts do not"
        )
    return "\n".join(lines)
