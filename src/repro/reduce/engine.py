"""The reduction fixpoint: apply the rule catalog until nothing moves.

:func:`reduce_net` is the single entry point every caller uses — the
``gpo reduce`` command, the engine's per-job pre-pass, the portfolio and
the bounded safety walk.  It copies the net into a
:class:`~repro.reduce.rules.ScratchNet`, builds the guard context from
the **original** net's static analysis once, and cycles through the
level's rule subset until a full pass applies nothing (bounded by a
pass budget).  The result is a :class:`Reduction`: original net, reduced
net (same name — it answers *for* the original), the replayable
:class:`~repro.reduce.trace.ReductionTrace` and the level/mode that
produced it, plus the ``extras`` payload results carry.

Reductions are memoized on the net (keyed by level, mode and protected
places), so a portfolio racing four analyzers on one net reduces once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.net.petrinet import PetriNet
from repro.obs.names import (
    REDUCE_PLACES_REMOVED,
    REDUCE_RULES_APPLIED,
    REDUCE_TRANSITIONS_REMOVED,
    SPAN_REDUCE,
)
from repro.obs.tracer import current_tracer
from repro.reduce.rules import (
    ReductionLevelError,
    ScratchNet,
    context_for,
    rules_for,
)
from repro.reduce.trace import ReductionStep, ReductionTrace

__all__ = ["MODES", "Reduction", "reduce_net"]

#: Recognized reduction modes.  ``off`` never reaches this module (the
#: callers skip the pre-pass entirely); it is listed for validation.
MODES: tuple[str, ...] = ("off", "auto", "aggressive")

#: Fixpoint pass budgets.  Each pass tries every rule once; ``auto``
#: converges on all shipped models in ≤ 3 passes, the cap is headroom.
_PASS_BUDGET = {"auto": 4, "aggressive": 16}

#: Rules whose applications are marking-for-marking bijections; a trace
#: containing only these keeps state/edge counts comparable.
_COUNT_RULES = frozenset(
    {"dead-transition", "constant-place", "duplicate-place", "isolated-place"}
)


@dataclass(frozen=True)
class Reduction:
    """One net's reduction outcome, with everything needed to report it."""

    original: PetriNet
    net: PetriNet
    trace: ReductionTrace
    level: str
    mode: str

    @property
    def reduced(self) -> bool:
        """Did any rule fire?  ``False`` means ``net is original``."""
        return bool(self.trace)

    @property
    def counts_preserved(self) -> bool:
        """True when every applied rule was a marking bijection — state
        and edge counts of the reduced exploration equal the original's."""
        return all(step.rule in _COUNT_RULES for step in self.trace.steps)

    def rule_counts(self) -> dict[str, int]:
        return self.trace.rule_counts()

    def sizes(self) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        """``((P, T, A) before, (P, T, A) after)``."""
        return (
            (
                self.original.num_places,
                self.original.num_transitions,
                self.original.num_arcs,
            ),
            (self.net.num_places, self.net.num_transitions, self.net.num_arcs),
        )

    def stats_extras(self) -> dict[str, Any]:
        """The ``extras["reduce"]`` payload attached to results.

        JSON-safe: it travels through the result cache, the JSONL event
        stream and the serve wire format unchanged.  The full trace rides
        along so clients (and the cache) can re-map witnesses without the
        engine's help.
        """
        pre, post = self.sizes()
        return {
            "level": self.level,
            "mode": self.mode,
            "rules": self.rule_counts(),
            "pre": list(pre),
            "post": list(post),
            "counts_preserved": self.counts_preserved,
            "net_hash": self.net.canonical_hash(),
            "trace_hash": self.trace.trace_hash(),
            "trace": self.trace.to_json(),
        }


def _unreduced(net: PetriNet, level: str, mode: str) -> Reduction:
    return Reduction(
        original=net,
        net=net,
        trace=ReductionTrace(net_name=net.name),
        level=level,
        mode=mode,
    )


def reduce_net(
    net: PetriNet,
    *,
    level: str = "deadlock",
    mode: str = "auto",
    protect: Iterable[str] = (),
) -> Reduction:
    """Reduce ``net`` under the given preservation level and mode.

    ``level`` selects the sound rule subset (see
    :data:`repro.props.compat.REDUCTION_LEVELS`); ``protect`` lists place
    names the property under check observes — they are never removed or
    merged, so property evaluation on the reduced net reads the same
    tokens.  ``mode="aggressive"`` raises the pass budget and always runs
    the siphon enumeration; ``mode="off"`` returns the net unchanged with
    an empty trace.  Results are memoized per ``(level, mode, protect)``
    on the net instance.
    """
    if mode not in MODES:
        raise ReductionLevelError(
            f"unknown reduction mode {mode!r}; expected one of {MODES}"
        )
    rules = rules_for(level)  # validates the level even when mode is off
    if mode == "off":
        return _unreduced(net, level, mode)
    protected = frozenset(protect)
    memo_key = (level, mode, protected)
    memo = net._reductions
    if memo is None:
        memo = {}
        net._reductions = memo
    cached = memo.get(memo_key)
    if cached is not None:
        return cached  # type: ignore[return-value]

    tracer = current_tracer()
    with tracer.span(SPAN_REDUCE, net=net.name, level=level, mode=mode) as span:
        scratch = ScratchNet(net)
        ctx = context_for(net, protect=protected, aggressive=mode == "aggressive")
        steps: list[ReductionStep] = []
        for _ in range(_PASS_BUDGET[mode]):
            applied_this_pass = 0
            for rule in rules:
                for step in rule.fn(scratch, ctx):
                    steps.append(step)
                    applied_this_pass += 1
                    tracer.metrics.counter(
                        REDUCE_RULES_APPLIED, rule=step.rule
                    ).inc()
            if not applied_this_pass:
                break
        trace = ReductionTrace(net_name=net.name, steps=tuple(steps))
        if steps:
            reduced = scratch.build()
        else:
            reduced = net  # identity: callers can test ``net is original``
        result = Reduction(
            original=net, net=reduced, trace=trace, level=level, mode=mode
        )
        places_removed = net.num_places - reduced.num_places
        transitions_removed = net.num_transitions - reduced.num_transitions
        tracer.metrics.counter(REDUCE_PLACES_REMOVED).inc(places_removed)
        tracer.metrics.counter(REDUCE_TRANSITIONS_REMOVED).inc(
            transitions_removed
        )
        span.set(
            steps=len(steps),
            places_removed=places_removed,
            transitions_removed=transitions_removed,
        )
    memo[memo_key] = result
    return result
