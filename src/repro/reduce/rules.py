"""The reduction rule catalog and the mutable scratch net it rewrites.

Each rule is a classical sound structural reduction (Murata's
simplifications, Berthelot's agglomerations, in the polyhedral-reduction
spirit of Amat & Dal Zilio) specialized to the 1-safe set-marking
semantics of :mod:`repro.net.petrinet`.  Rules are grouped into three
nested preservation levels — see :data:`RULES_BY_LEVEL`:

``count``
    Applications are marking-for-marking bijections between the original
    and the reduced reachable sets (``dead-transition``,
    ``constant-place``, ``duplicate-place``, ``isolated-place``): state
    and edge counts, deadlock verdicts, reachability of surviving places
    and the 1-safety verdict all carry over exactly.
``reachability``
    Adds ``sink-place``: enabling never depends on a consumer-free
    place, so reachability of every *surviving* place (and deadlock) is
    preserved, but distinct originals may collapse — counts shrink.
``deadlock``
    Adds the agglomerations (``fuse-series``, ``pre-agglomerate``) which
    contract internal firing sequences: only the deadlock question
    survives, and witness traces need the recorded expansions to map
    back.

Every guard that relies on a *dynamic* fact (a place can hold at most
one token; two places are never simultaneously marked; a place is never
marked at all) consults the **original** net's exact structural analysis
— the P-invariant basis, the invariant-derived safety bounds and the
minimal-siphon enumeration of :mod:`repro.static`.  Original-net facts
remain sound throughout the fixpoint because every rule keeps the
surviving places' token histories embeddable in the original's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterator, Mapping

from repro.net.petrinet import NetBuilder, PetriNet
from repro.reduce.trace import ReductionStep

__all__ = [
    "RULES",
    "RULES_BY_LEVEL",
    "ReductionLevelError",
    "RuleContext",
    "ScratchNet",
    "context_for",
]


class ReductionLevelError(ValueError):
    """An unknown preservation level or rule subset was requested."""


# ----------------------------------------------------------------------
# Scratch net
# ----------------------------------------------------------------------
class ScratchNet:
    """A name-keyed mutable working copy of a :class:`PetriNet`.

    Insertion order is preserved (plain dicts) so rebuilding the reduced
    net is deterministic; reverse adjacency is recomputed per pass — the
    rule engine's cost is dominated by the static analysis, not by these
    scans.
    """

    def __init__(self, net: PetriNet) -> None:
        self.name = net.name
        self.places: dict[str, None] = {p: None for p in net.places}
        self.marking: set[str] = {net.places[p] for p in net.initial_marking}
        self.pre: dict[str, set[str]] = {}
        self.post: dict[str, set[str]] = {}
        for t, tname in enumerate(net.transitions):
            self.pre[tname] = {net.places[p] for p in net.pre_places[t]}
            self.post[tname] = {net.places[p] for p in net.post_places[t]}

    # ------------------------------------------------------------------
    @property
    def num_places(self) -> int:
        return len(self.places)

    @property
    def num_transitions(self) -> int:
        return len(self.pre)

    @property
    def num_arcs(self) -> int:
        return sum(len(s) for s in self.pre.values()) + sum(
            len(s) for s in self.post.values()
        )

    def producers(self) -> dict[str, set[str]]:
        """Place name -> transitions producing into it (``•p``)."""
        out: dict[str, set[str]] = {p: set() for p in self.places}
        for t, post in self.post.items():
            for p in post:
                out[p].add(t)
        return out

    def consumers(self) -> dict[str, set[str]]:
        """Place name -> transitions consuming from it (``p•``)."""
        out: dict[str, set[str]] = {p: set() for p in self.places}
        for t, pre in self.pre.items():
            for p in pre:
                out[p].add(t)
        return out

    def remove_place(self, place: str) -> None:
        """Drop a place and every arc touching it."""
        del self.places[place]
        self.marking.discard(place)
        for pre in self.pre.values():
            pre.discard(place)
        for post in self.post.values():
            post.discard(place)

    def remove_transition(self, name: str) -> None:
        del self.pre[name]
        del self.post[name]

    def fresh_transition_name(self, base: str) -> str:
        """A transition name not colliding with any existing node."""
        name = base
        while name in self.pre or name in self.places:
            name += "'"
        return name

    def build(self) -> PetriNet:
        """Freeze the scratch state back into an immutable net.

        The reduced net keeps the original's name: it answers for the
        original in every report, and the trace carries the structural
        provenance.
        """
        builder = NetBuilder(self.name)
        for place in self.places:
            builder.place(place, marked=place in self.marking)
        for t, pre in self.pre.items():
            builder.transition(t, inputs=sorted(pre), outputs=sorted(self.post[t]))
        return builder.build()


# ----------------------------------------------------------------------
# Guard context (original-net structural facts)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleContext:
    """Original-net facts plus per-run guard configuration.

    ``protect`` holds place names the property under check observes —
    they are never removed or merged.  ``mutex``/``bound_one`` are
    P-invariant-derived dynamic facts; ``never_marked`` comes from the
    minimal-siphon enumeration (a siphon with no initially marked trap
    never gains a token).  ``aggressive`` lifts the cost gates.
    """

    protect: frozenset[str] = frozenset()
    mutex: Callable[[str, str], bool] = lambda p, q: False
    bound_one: Callable[[str], bool] = lambda p: False
    never_marked: frozenset[str] = frozenset()
    aggressive: bool = False


def _invariant_facts(
    net: PetriNet,
) -> tuple[
    Callable[[str, str], bool],
    Callable[[str], bool],
]:
    """Build the mutex and bound-one oracles from the P-invariant basis.

    ``mutex(p, q)``: some invariant ``y`` has ``y(p) ≥ 1``, ``y(q) ≥ 1``
    and ``y(p) + y(q) > y·m0`` — conservation then forbids ``p`` and
    ``q`` being simultaneously marked in any reachable marking.
    ``bound_one(p)``: the invariant-derived structural token bound of
    ``p`` is at most 1, so no firing can ever double-mark ``p``.
    """
    analysis = net.static_analysis()
    basis = analysis.p_invariants
    m0 = net.initial_marking
    index = net.place_index
    invariants: list[tuple[Mapping[int, Fraction], Fraction]] = []
    for inv in basis.invariants:
        weights = {i: inv.weights[i] for i in inv.support}
        invariants.append((weights, inv.value(m0)))

    def mutex(p: str, q: str) -> bool:
        i, j = index.get(p), index.get(q)
        if i is None or j is None:
            return False
        for weights, initial in invariants:
            wp = weights.get(i)
            wq = weights.get(j)
            if wp is not None and wq is not None and wp + wq > initial:
                return True
        return False

    bounds = analysis.safety_certificate.bounds

    def bound_one(p: str) -> bool:
        i = index.get(p)
        if i is None:
            return False
        bound = bounds.get(i)
        return bound is not None and bound <= 1

    return mutex, bound_one


#: Above this many places the ``auto`` mode skips the siphon enumeration
#: (worst-case expensive); ``aggressive`` always runs it.
_SIPHON_GATE = 400


def context_for(
    net: PetriNet,
    *,
    protect: frozenset[str] = frozenset(),
    aggressive: bool = False,
) -> RuleContext:
    """Compute the guard context from the original net's static facts."""
    mutex, bound_one = _invariant_facts(net)
    never: set[str] = set()
    if aggressive or net.num_places <= _SIPHON_GATE:
        # An initially token-free siphon can never gain a token: every
        # producer of a siphon place consumes from the siphon (•S ⊆ S•),
        # so with no token inside, none ever enters.  (This is stronger
        # than ``unmarked_siphons()``, whose Commoner condition flags
        # siphons that could *drain* — those places are live until then.)
        analysis = net.static_analysis()
        m0 = net.initial_marking
        for siphon in analysis.siphons.siphons:
            if not (siphon & m0):
                never.update(net.places[p] for p in siphon)
    return RuleContext(
        protect=protect,
        mutex=mutex,
        bound_one=bound_one,
        never_marked=frozenset(never),
        aggressive=aggressive,
    )


# ----------------------------------------------------------------------
# Rules — each takes (scratch, context) and yields the steps it applied.
# ----------------------------------------------------------------------
RuleFn = Callable[[ScratchNet, RuleContext], Iterator[ReductionStep]]


def rule_dead_transition(
    s: ScratchNet, ctx: RuleContext
) -> Iterator[ReductionStep]:
    """Remove transitions that can never fire, and the places they strand.

    A place is *dead* when it lies in an initially unmarked minimal
    siphon of the original net (no marked trap inside: it can never gain
    a token) or, structurally, when it is unmarked and producer-free in
    the current net.  Every transition consuming from a dead place is
    dead; removing those transitions may strand further places, so the
    closure iterates.  Count-preserving: dead transitions contribute no
    edges and dead places are never marked.  Protected dead places stay
    behind as (harmless, token-free) isolated places so property
    predicates still see them.
    """
    dead_places: set[str] = {
        p for p in ctx.never_marked if p in s.places and p not in s.marking
    }
    removed_places: list[str] = []
    removed_transitions: list[str] = []
    while True:
        producers = s.producers()
        dead_places.update(
            p for p in s.places if p not in s.marking and not producers[p]
        )
        dead_now = [t for t, pre in s.pre.items() if pre & dead_places]
        for t in dead_now:
            s.remove_transition(t)
            removed_transitions.append(t)
        # A siphon place's producers all consume from the siphon, so once
        # the dead transitions are gone the dead places are arc-free.
        producers = s.producers()
        consumers = s.consumers()
        stranded = [
            p
            for p in dead_places
            if p in s.places
            and p not in ctx.protect
            and not producers[p]
            and not consumers[p]
        ]
        for p in stranded:
            s.remove_place(p)
            removed_places.append(p)
        if not dead_now and not stranded:
            break
    if removed_places or removed_transitions:
        yield ReductionStep(
            rule="dead-transition",
            removed_places=tuple(removed_places),
            removed_transitions=tuple(removed_transitions),
            restore={p: "-" for p in removed_places},
            detail="never enabled: consumes from a token-free siphon",
        )


def rule_constant_place(
    s: ScratchNet, ctx: RuleContext
) -> Iterator[ReductionStep]:
    """Remove always-marked self-loop places (singleton P-invariants).

    An initially marked place with ``p ∈ •t ⟺ p ∈ t•`` for every
    transition carries a singleton P-invariant ``m(p) = 1``: it is
    marked in every reachable marking, so the enabling conditions it
    contributes are vacuous.  Removal is a marking bijection
    (``m ↦ m∖{p}``).  Skipped when some transition would be left with an
    empty preset (the net must stay source-free) or the place is
    observed by the property.
    """
    for p in list(s.places):
        if p not in s.marking or p in ctx.protect:
            continue
        adjacent = [t for t in s.pre if p in s.pre[t] or p in s.post[t]]
        if not adjacent:
            continue
        if any((p in s.pre[t]) != (p in s.post[t]) for t in adjacent):
            continue
        if any(s.pre[t] == {p} for t in adjacent):
            continue
        s.remove_place(p)
        yield ReductionStep(
            rule="constant-place",
            removed_places=(p,),
            restore={p: "+"},
            detail=f"always marked (singleton P-invariant m({p}) = 1); "
            "self-loop enabling is vacuous",
        )


def rule_duplicate_place(
    s: ScratchNet, ctx: RuleContext
) -> Iterator[ReductionStep]:
    """Remove places that mirror another place's marking forever.

    Two places with identical producer and consumer transition sets and
    the same initial marking hold identical tokens in every reachable
    marking (a redundant place: the difference of their rows is a null
    P-flow).  The duplicate's enabling contribution is therefore
    subsumed by the keeper's.  Count-preserving (marking bijection).
    """
    producers = s.producers()
    consumers = s.consumers()
    groups: dict[tuple[frozenset[str], frozenset[str], bool], list[str]] = {}
    for p in s.places:
        prod = frozenset(producers[p])
        cons = frozenset(consumers[p])
        if not prod and not cons:
            continue  # isolated-place's business
        groups.setdefault((prod, cons, p in s.marking), []).append(p)
    for group in groups.values():
        if len(group) < 2:
            continue
        keeper = next(
            (p for p in group if p in ctx.protect), group[0]
        )
        for p in group:
            if p is keeper or p in ctx.protect:
                continue
            s.remove_place(p)
            yield ReductionStep(
                rule="duplicate-place",
                removed_places=(p,),
                restore={p: keeper},
                detail=f"marking always equals {keeper!r} "
                "(same producers, consumers and initial token)",
            )


def rule_isolated_place(
    s: ScratchNet, ctx: RuleContext
) -> Iterator[ReductionStep]:
    """Remove places no arc touches.  Count-preserving bijection."""
    producers = s.producers()
    consumers = s.consumers()
    for p in list(s.places):
        if p in ctx.protect or producers[p] or consumers[p]:
            continue
        marked = p in s.marking
        s.remove_place(p)
        yield ReductionStep(
            rule="isolated-place",
            removed_places=(p,),
            restore={p: "+" if marked else "-"},
            detail="no arcs" + (" (initially marked)" if marked else ""),
        )


def rule_sink_place(
    s: ScratchNet, ctx: RuleContext
) -> Iterator[ReductionStep]:
    """Remove consumer-free places nothing can ever test.

    A place with ``p• = ∅`` never occurs in a preset, so enabling — and
    hence every firing sequence and the deadlock question — is
    independent of it.  Requires the original invariant-derived token
    bound ≤ 1: an uncovered sink could silently absorb the double-marking
    that makes the original net unsafe, and the reduced run would miss
    the :class:`~repro.net.exceptions.UnsafeNetError` the original
    raises.  Reachability-preserving for surviving places; **not**
    count-preserving (markings differing only in ``p`` collapse).
    """
    producers = s.producers()
    consumers = s.consumers()
    for p in list(s.places):
        if p in ctx.protect or consumers[p] or not producers[p]:
            continue
        if not ctx.bound_one(p):
            continue
        s.remove_place(p)
        yield ReductionStep(
            rule="sink-place",
            removed_places=(p,),
            restore={p: "-"},
            detail="no consumers; invariant bound 1 — enabling never "
            "depends on it",
        )


def rule_fuse_series(
    s: ScratchNet, ctx: RuleContext
) -> Iterator[ReductionStep]:
    """Post-agglomeration: contract ``a → p → b`` into an atomic step.

    When place ``p`` has a single consumer ``b`` with ``•b = {p}``, every
    token entering ``p`` leaves through ``b``; if additionally every
    output place of ``b`` is P-invariant-mutually-exclusive with ``p``,
    no transition can interact with ``b``'s outputs while ``p`` is
    marked, so firing ``b`` immediately after the producer commutes with
    every interleaving.  Each producer ``a`` then absorbs ``b``
    (``a• := (a• ∖ {p}) ∪ b•``) and both ``p`` and ``b`` disappear.
    Deadlock-preserving only: the intermediate marking with ``p`` marked
    exists in the original but not the reduced net.  The recorded
    expansion maps each reduced firing of ``a`` to ``a ; b``.
    """
    changed = True
    while changed:
        changed = False
        producers = s.producers()
        consumers = s.consumers()
        for p in list(s.places):
            if p not in s.places or p in ctx.protect or p in s.marking:
                continue
            cons = consumers[p]
            prods = producers[p]
            if len(cons) != 1 or not prods:
                continue
            (b,) = cons
            if b in prods or s.pre[b] != {p} or p in s.post[b]:
                continue
            if not ctx.bound_one(p):
                continue
            if any(p in s.pre[a] for a in prods):
                continue
            if any(s.post[a] & s.post[b] for a in prods):
                continue
            if any(not ctx.mutex(p, x) for x in s.post[b]):
                continue
            b_post = set(s.post[b])
            for a in prods:
                s.post[a] = (s.post[a] - {p}) | b_post
            s.remove_transition(b)
            s.remove_place(p)
            yield ReductionStep(
                rule="fuse-series",
                removed_places=(p,),
                removed_transitions=(b,),
                expansions={a: (a, b) for a in sorted(prods)},
                erased=(b,),
                restore={p: "-"},
                detail=f"series place {p!r} fused into its producers; "
                f"{b!r} now fires atomically after them",
            )
            changed = True
            break  # adjacency changed; recompute before the next match


def rule_pre_agglomerate(
    s: ScratchNet, ctx: RuleContext
) -> Iterator[ReductionStep]:
    """Pre-agglomeration: delay a pure buffer-filling transition.

    When transition ``a`` only moves tokens from producer-free,
    solely-``a``-consumed source places into a single buffer place ``p``
    (``a• = {p}``, ``•p = {a}``), ``a`` can fire at most once and
    nothing else ever touches its inputs — so firing ``a`` lazily, at
    the instant one of ``p``'s consumers needs the token, is
    deadlock-equivalent.  Each consumer ``b`` is replaced by a fused
    transition ``a;b`` with preset ``•a ∪ (•b ∖ {p})``.  The guards are
    deliberately strict (this is the narrowest classical variant): they
    make the delayed firing trivially safe.  Deadlock-preserving only.
    """
    changed = True
    while changed:
        changed = False
        producers = s.producers()
        consumers = s.consumers()
        for a in list(s.pre):
            if a not in s.pre or len(s.post[a]) != 1:
                continue
            (p,) = s.post[a]
            if p in ctx.protect or p in s.marking:
                continue
            if producers[p] != {a} or p in s.pre[a]:
                continue
            if not ctx.bound_one(p):
                continue
            branches = consumers[p]
            if not branches or a in branches:
                continue
            inputs = s.pre[a]
            if any(
                producers[q] or consumers[q] != {a} or q in ctx.protect
                for q in inputs
            ):
                continue
            if any(inputs & (s.pre[b] - {p}) or inputs & s.post[b] for b in branches):
                continue
            if any(p in s.post[b] for b in branches):
                continue
            fused_steps: dict[str, tuple[str, ...]] = {}
            for b in sorted(branches):
                fused = s.fresh_transition_name(f"{a};{b}")
                s.pre[fused] = set(inputs) | (s.pre[b] - {p})
                s.post[fused] = set(s.post[b])
                s.remove_transition(b)
                fused_steps[fused] = (a, b)
            s.remove_transition(a)
            s.remove_place(p)
            yield ReductionStep(
                rule="pre-agglomerate",
                removed_places=(p,),
                removed_transitions=(a, *sorted(branches)),
                expansions=fused_steps,
                erased=(a, *sorted(branches)),
                restore={p: "-"},
                detail=f"buffer place {p!r} filled only by {a!r} from "
                "untouched sources; filling is delayed into its consumers",
            )
            changed = True
            break


#: Every rule, in application order, with its preservation level.
@dataclass(frozen=True)
class Rule:
    """One registered reduction rule."""

    name: str
    level: str
    fn: RuleFn = field(repr=False)
    summary: str = ""


RULES: tuple[Rule, ...] = (
    Rule(
        "dead-transition",
        "count",
        rule_dead_transition,
        "never-enabled transitions and their token-free siphon places",
    ),
    Rule(
        "constant-place",
        "count",
        rule_constant_place,
        "always-marked self-loop places (singleton P-invariants)",
    ),
    Rule(
        "duplicate-place",
        "count",
        rule_duplicate_place,
        "places whose marking always equals another's (redundant places)",
    ),
    Rule(
        "isolated-place",
        "count",
        rule_isolated_place,
        "places no arc touches",
    ),
    Rule(
        "sink-place",
        "reachability",
        rule_sink_place,
        "consumer-free places with invariant bound 1",
    ),
    Rule(
        "fuse-series",
        "deadlock",
        rule_fuse_series,
        "series-place post-agglomeration (a→p→b contracted)",
    ),
    Rule(
        "pre-agglomerate",
        "deadlock",
        rule_pre_agglomerate,
        "delayed buffer filling (strict source-fed variant)",
    ),
)

#: Nested rule subsets by preservation level: ``count`` ⊂
#: ``reachability`` ⊂ ``deadlock``.  A property fragment picks its level
#: through :func:`repro.props.compat.reduction_level`.
RULES_BY_LEVEL: Mapping[str, tuple[Rule, ...]] = {
    "count": tuple(r for r in RULES if r.level == "count"),
    "reachability": tuple(
        r for r in RULES if r.level in ("count", "reachability")
    ),
    "deadlock": RULES,
}


def rules_for(level: str) -> tuple[Rule, ...]:
    """The rule subset of one preservation level (raises on unknown)."""
    try:
        return RULES_BY_LEVEL[level]
    except KeyError:
        raise ReductionLevelError(
            f"unknown reduction level {level!r}; expected one of "
            f"{sorted(RULES_BY_LEVEL)}"
        ) from None
