"""Structural reduction: shrink the net before any analyzer runs.

The paper's GPO analysis shrinks the *explored* state space; this
package shrinks the *net itself* first, in the style of polyhedral /
structural reductions (Berthelot's agglomerations, Murata's
simplifications), specialized to 1-safe set-marking semantics.  Sound
rule subsets are keyed by what the property under check needs —
``count`` ⊂ ``reachability`` ⊂ ``deadlock`` — and every application is
recorded in a replayable :class:`~repro.reduce.trace.ReductionTrace`
so verdicts and witnesses map back to the original net.

Entry points
------------
:func:`reduce_net`
    The fixpoint engine; returns a :class:`Reduction`.
:func:`back_map_witness`
    Translate (and replay-verify) a reduced-net witness.
:func:`explain` / :func:`findings_of`
    Linter-style per-rule diagnostics for ``gpo reduce`` / ``gpo lint``.
"""

from repro.reduce.engine import MODES, Reduction, reduce_net
from repro.reduce.explain import ReductionFinding, explain, findings_of
from repro.reduce.rules import (
    RULES,
    RULES_BY_LEVEL,
    ReductionLevelError,
    RuleContext,
    ScratchNet,
)
from repro.reduce.trace import (
    BackMapError,
    ReductionStep,
    ReductionTrace,
    back_map_witness,
    flatten_trace,
    replay,
)

__all__ = [
    "MODES",
    "RULES",
    "RULES_BY_LEVEL",
    "BackMapError",
    "Reduction",
    "ReductionFinding",
    "ReductionLevelError",
    "ReductionStep",
    "ReductionTrace",
    "RuleContext",
    "ScratchNet",
    "back_map_witness",
    "explain",
    "findings_of",
    "flatten_trace",
    "reduce_net",
    "replay",
]
