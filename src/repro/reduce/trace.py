"""Replayable reduction traces: mapping reduced-net answers back.

Every rule application of the reduction engine appends one
:class:`ReductionStep` to a :class:`ReductionTrace`.  A step records what
was removed and — for the agglomeration rules, which *rename the
behaviour* rather than merely projecting it — how each surviving
transition expands into a firing sequence of the net the step was applied
to.  Because steps compose (a transition introduced by one step may be
rewritten again by a later one), a reduced-net firing sequence is mapped
back by applying the step expansions in **reverse** application order.

Back-mapping is *replayed*, never trusted: :func:`back_map_witness` fires
the mapped sequence on the original net from its initial marking, so the
witness marking it reports is by construction a genuinely reachable
original marking.  For deadlock witnesses produced after agglomeration
the replayed marking may still owe a few internal firings (a
pre-agglomerated transition whose token never moved); the completion loop
fires the erased transitions until quiescence and then *checks* the
marking is dead.  Any inconsistency raises :class:`BackMapError` instead
of fabricating a witness.

Traces serialize to JSON (they travel with results through the cache and
``gpo serve``) and carry a stable SHA-256 ``trace_hash`` that the v3
cache-key material stamps alongside the reduced net's canonical hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.net.exceptions import NotEnabledError, UnknownNodeError, UnsafeNetError
from repro.net.petrinet import PetriNet
from repro.search.witness import DeadlockWitness

__all__ = [
    "BackMapError",
    "ReductionStep",
    "ReductionTrace",
    "back_map_witness",
    "flatten_trace",
    "replay",
]


class BackMapError(Exception):
    """A reduced-net answer could not be replayed on the original net."""


@dataclass(frozen=True)
class ReductionStep:
    """One rule application, with enough detail to undo its renaming.

    ``expansions`` maps a transition name of the *output* net of this
    step to the firing sequence of the *input* net it stands for; every
    transition not listed maps to itself.  ``erased`` lists input-net
    transitions that exist nowhere in the output net's behaviour mapping
    (the absorbed halves of agglomerations) — the completion loop of
    :func:`back_map_witness` may need to fire them.  ``restore`` maps
    each removed place to how its token is reconstructed when a marking
    (rather than a firing sequence) is mapped back: ``"+"`` always
    marked (constant places, frozen isolated tokens), ``"-"`` always
    unmarked, or the name of a surviving place whose token it mirrors
    (duplicate places).
    """

    rule: str
    removed_places: tuple[str, ...] = ()
    removed_transitions: tuple[str, ...] = ()
    expansions: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    erased: tuple[str, ...] = ()
    restore: Mapping[str, str] = field(default_factory=dict)
    detail: str = ""

    def to_json(self) -> dict[str, Any]:
        """JSON-safe form (stable key order is the serializer's job)."""
        out: dict[str, Any] = {"rule": self.rule}
        if self.removed_places:
            out["removed_places"] = list(self.removed_places)
        if self.removed_transitions:
            out["removed_transitions"] = list(self.removed_transitions)
        if self.expansions:
            out["expansions"] = {
                name: list(seq) for name, seq in sorted(self.expansions.items())
            }
        if self.erased:
            out["erased"] = list(self.erased)
        if self.restore:
            out["restore"] = dict(sorted(self.restore.items()))
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ReductionStep":
        return cls(
            rule=str(payload["rule"]),
            removed_places=tuple(payload.get("removed_places", ())),
            removed_transitions=tuple(payload.get("removed_transitions", ())),
            expansions={
                str(name): tuple(str(t) for t in seq)
                for name, seq in dict(payload.get("expansions", {})).items()
            },
            erased=tuple(payload.get("erased", ())),
            restore={
                str(place): str(spec)
                for place, spec in dict(payload.get("restore", {})).items()
            },
            detail=str(payload.get("detail", "")),
        )

    def describe(self) -> str:
        """One linter-style diagnostic line for ``--explain`` output."""
        bits = []
        if self.removed_places:
            bits.append("places " + ",".join(self.removed_places))
        if self.removed_transitions:
            bits.append("transitions " + ",".join(self.removed_transitions))
        removed = "; ".join(bits) if bits else "nothing removed"
        line = f"{self.rule}: {removed}"
        if self.detail:
            line += f" — {self.detail}"
        return line


@dataclass(frozen=True)
class ReductionTrace:
    """The ordered record of every rule application on one net."""

    net_name: str
    steps: tuple[ReductionStep, ...] = ()

    def __len__(self) -> int:
        return len(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "net": self.net_name,
            "steps": [step.to_json() for step in self.steps],
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ReductionTrace":
        return cls(
            net_name=str(payload.get("net", "")),
            steps=tuple(
                ReductionStep.from_json(step)
                for step in payload.get("steps", ())
            ),
        )

    def trace_hash(self) -> str:
        """SHA-256 of the canonical JSON form (hex digest).

        Stamped into v3 cache-key material next to the reduced net's
        canonical hash: two jobs share a cache entry only when they
        reduced the same way, so back-mapped answers never cross traces.
        """
        form = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(form.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Behaviour mapping
    # ------------------------------------------------------------------
    def rule_counts(self) -> dict[str, int]:
        """Applications per rule name, in first-application order."""
        counts: dict[str, int] = {}
        for step in self.steps:
            counts[step.rule] = counts.get(step.rule, 0) + 1
        return counts

    def erased_transitions(self) -> frozenset[str]:
        """Original-net transitions absorbed by agglomeration steps."""
        erased: set[str] = set()
        for step in self.steps:
            erased.update(step.erased)
        return frozenset(erased)

    def map_sequence(self, sequence: Iterable[str]) -> tuple[str, ...]:
        """Rewrite a reduced-net firing sequence into original-net names.

        Steps apply in reverse order: the last rule speaks the reduced
        net's names, and each earlier rule's expansions translate one
        layer further toward the original.  Unknown names pass through
        unchanged (they are either original names or an error that the
        replay will surface).
        """
        mapped = list(sequence)
        for step in reversed(self.steps):
            if not step.expansions:
                continue
            rewritten: list[str] = []
            for name in mapped:
                rewritten.extend(step.expansions.get(name, (name,)))
            mapped = rewritten
        return tuple(mapped)

    def map_marking(self, marking: Iterable[str]) -> frozenset[str]:
        """Reconstruct an original-net marking from a reduced-net one.

        Surviving places keep their token; each step's ``restore``
        directives (applied in reverse order) re-add the removed places.
        Used for witnesses without a concrete firing sequence (symbolic
        counterexamples, GPN multi-step traces that cover several
        scenarios); sink places come back unmarked, which never affects
        deadness — they occur in no preset.
        """
        names = set(marking)
        for step in reversed(self.steps):
            for place, spec in step.restore.items():
                if spec == "+":
                    names.add(place)
                elif spec == "-":
                    names.discard(place)
                elif spec in names:
                    names.add(place)
                else:
                    names.discard(place)
        return frozenset(names)


def flatten_trace(trace: Iterable[str]) -> tuple[str, ...]:
    """Sequentialize a witness trace that may contain GPN multi-steps.

    GPO witnesses render simultaneously fired transitions as ``"{a,b}"``;
    the fired transitions are mutually concurrent, so firing them one at
    a time in the rendered order reaches the same marking.
    """
    flat: list[str] = []
    for step in trace:
        step = step.strip()
        if step.startswith("{") and step.endswith("}"):
            flat.extend(
                token.strip() for token in step[1:-1].split(",") if token.strip()
            )
        else:
            flat.append(step)
    return tuple(flat)


def replay(net: PetriNet, sequence: Iterable[str]) -> frozenset[int]:
    """Fire ``sequence`` (transition names) from ``net``'s initial marking.

    Returns the reached marking; raises :class:`BackMapError` when a name
    is unknown or a firing is not enabled — a mapped trace must replay
    exactly or the back-mapping is wrong.
    """
    marking = net.initial_marking
    for name in sequence:
        try:
            marking = net.fire_by_name(name, marking)
        except (UnknownNodeError, NotEnabledError, UnsafeNetError) as exc:
            raise BackMapError(
                f"mapped trace does not replay on {net.name!r}: "
                f"firing {name!r} failed ({exc})"
            ) from exc
    return marking


def _complete_deadlock(
    net: PetriNet, marking: frozenset[int], erased: frozenset[str]
) -> tuple[frozenset[int], tuple[str, ...]]:
    """Fire erased internal transitions until quiescence.

    After replaying a mapped deadlock trace, the only transitions that
    may still be enabled are ones an agglomeration absorbed (their token
    is parked one step earlier than in the reduced net).  Firing them to
    fixpoint lands on the marking the reduced deadlock actually stands
    for.  The loop is bounded: each erased transition can fire at most a
    handful of times on a 1-safe net before quiescence.
    """
    if not erased:
        return marking, ()
    ids = [net.transition_id(t) for t in sorted(erased) if t in net.transition_index]
    fired_names: list[str] = []
    budget = 4 * len(ids) + 16
    for _ in range(budget):
        fired = False
        for t in ids:
            if net.is_enabled(t, marking):
                try:
                    marking = net.fire(t, marking)
                except UnsafeNetError as exc:  # pragma: no cover - guarded
                    raise BackMapError(
                        f"completion firing {net.transitions[t]!r} was unsafe: {exc}"
                    ) from exc
                fired_names.append(net.transitions[t])
                fired = True
                break
        if not fired:
            return marking, tuple(fired_names)
    raise BackMapError(
        f"completion loop on {net.name!r} did not quiesce within {budget} firings"
    )


def _map_marking_only(
    net: PetriNet,
    trace: ReductionTrace,
    witness: DeadlockWitness,
) -> DeadlockWitness:
    """Marking-level fallback for witnesses without a replayable trace.

    Symbolic counterexamples carry no firing sequence, and GPN witness
    traces render multi-steps that may cover several *conflicting*
    scenarios — neither replays as a sequence.  The reduced marking
    itself still maps back exactly (every rule records how its removed
    places' tokens are reconstructed), and for deadlock witnesses the
    reconstructed marking is *verified* dead on the original net.
    """
    names = trace.map_marking(witness.marking)
    try:
        marking = net.marking_from_names(names)
    except UnknownNodeError as exc:
        raise BackMapError(
            f"mapped witness marking names unknown places on {net.name!r}: {exc}"
        ) from exc
    if witness.label == "deadlock" and not net.is_deadlocked(marking):
        raise BackMapError(
            f"mapped witness marking is not dead on {net.name!r}"
        )
    return DeadlockWitness(marking=names, trace=(), label=witness.label)


def back_map_witness(
    net: PetriNet,
    trace: ReductionTrace,
    witness: DeadlockWitness,
) -> DeadlockWitness:
    """Translate a reduced-net witness into an original-net witness.

    The witness trace is flattened (GPN multi-steps), mapped through the
    trace's expansions, replayed on ``net`` and — for deadlock witnesses —
    completed and *verified* dead, so the returned witness carries a
    genuinely reachable original marking.  Witnesses whose trace cannot
    replay as a sequence (symbolic: no trace at all; GPO: multi-steps
    covering several conflicting scenarios) fall back to marking-level
    mapping, which reconstructs and dead-verifies the original marking
    but returns an empty trace.
    """
    flat = flatten_trace(witness.trace)
    if not flat and witness.marking:
        return _map_marking_only(net, trace, witness)
    mapped = trace.map_sequence(flat)
    try:
        marking = replay(net, mapped)
        completion: tuple[str, ...] = ()
        if witness.label == "deadlock":
            marking, completion = _complete_deadlock(
                net, marking, trace.erased_transitions()
            )
            if not net.is_deadlocked(marking):
                raise BackMapError(
                    f"mapped witness marking is not dead on {net.name!r}"
                )
    except BackMapError:
        if witness.marking:
            return _map_marking_only(net, trace, witness)
        raise
    return DeadlockWitness(
        marking=net.marking_names(marking),
        trace=mapped + completion,
        label=witness.label,
    )
