"""Analysis utilities over complete finite prefixes.

The prefix represents every reachable marking of a safe net; these helpers
extract that information for validation and reporting:

* :func:`prefix_markings` — all markings represented by configurations of
  the prefix (exponential enumeration; intended for the test-suite's
  completeness checks on small nets);
* :func:`analyze` — prefix construction packaged as an
  :class:`~repro.analysis.stats.AnalysisResult`, reporting the prefix
  sizes as the analyzer's "state" metric and a deadlock verdict obtained
  by walking cut markings through the prefix's events.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.stats import AnalysisResult, DeadlockWitness, stopwatch
from repro.net.petrinet import Marking, PetriNet
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.unfolding.prefix import Prefix, unfold

__all__ = ["prefix_markings", "deadlock_via_prefix", "analyze"]


def _cut_conditions(prefix: Prefix, config: frozenset[int]) -> frozenset[int]:
    """Condition indices in the cut of a configuration."""
    consumed: set[int] = set()
    for event_index in config:
        consumed.update(prefix.events[event_index].preset)
    return frozenset(
        c.index
        for c in prefix.conditions
        if (c.producer is None or c.producer in config)
        and c.index not in consumed
    )


def _cut_marking(prefix: Prefix, cut: frozenset[int]) -> Marking:
    return frozenset(prefix.conditions[c].place for c in cut)


def _enabled_events(prefix: Prefix, cut: frozenset[int]) -> list[int]:
    """Events whose whole preset lies in the cut."""
    return [
        e.index
        for e in prefix.events
        if all(b in cut for b in e.preset)
    ]


def prefix_markings(
    prefix: Prefix, *, limit: int | None = 100_000
) -> set[Marking]:
    """All markings represented by configurations of the prefix.

    Walks the occurrence net from the empty configuration, firing events
    whose presets are in the current cut; deduplicates on cuts.  By the
    completeness theorem this covers every reachable marking of the
    original net (asserted by the tests against explicit reachability).
    """
    initial = _cut_conditions(prefix, frozenset())
    seen_cuts: set[frozenset[int]] = {initial}
    markings: set[Marking] = {_cut_marking(prefix, initial)}
    queue: deque[frozenset[int]] = deque([initial])
    while queue:
        cut = queue.popleft()
        for event_index in _enabled_events(prefix, cut):
            event = prefix.events[event_index]
            new_cut = cut - frozenset(event.preset)
            new_cut |= frozenset(
                c.index
                for c in prefix.conditions
                if c.producer == event_index
            )
            if new_cut in seen_cuts:
                continue
            seen_cuts.add(new_cut)
            markings.add(_cut_marking(prefix, new_cut))
            if limit is not None and len(seen_cuts) > limit:
                raise RuntimeError("prefix enumeration limit exceeded")
            queue.append(new_cut)
    return markings


def deadlock_via_prefix(
    net: PetriNet, prefix: Prefix
) -> Marking | None:
    """A reachable dead marking found by walking the prefix, or ``None``.

    Every reachable marking is a represented cut, so checking net-level
    enabledness on each cut marking decides deadlock freedom.  (This
    validates the prefix; it is not faster than explicit search.)
    """
    for marking in prefix_markings(prefix):
        if net.is_deadlocked(marking):
            return marking
    return None


def analyze(
    net: PetriNet,
    *,
    max_events: int | None = 10_000,
    max_seconds: float | None = None,
    want_witness: bool = True,
) -> AnalysisResult:
    """Unfold and report prefix sizes plus a deadlock verdict."""
    tracer = current_tracer()
    with tracer.span(
        names.SPAN_ANALYZE, analyzer="unfolding", net=net.name
    ) as root:
        # Consult the structural certificate before unfolding: when it
        # holds, the occurrence-net construction never hits a safety
        # violation.
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        with stopwatch() as elapsed:
            with tracer.span(names.SPAN_UNFOLD):
                prefix = unfold(
                    net, max_events=max_events, max_seconds=max_seconds
                )
            exhaustive = (
                max_events is None or prefix.num_events < max_events
            )
            with tracer.span(names.SPAN_WITNESS):
                dead = deadlock_via_prefix(net, prefix) if exhaustive else None
        witness = None
        if dead is not None and want_witness:
            witness = DeadlockWitness(
                marking=net.marking_names(dead), trace=()
            )
        result = AnalysisResult(
            analyzer="unfolding",
            net_name=net.name,
            states=prefix.num_events,
            edges=prefix.num_conditions,
            deadlock=dead is not None,
            time_seconds=elapsed[0],
            witness=witness,
            exhaustive=exhaustive,
            extras={
                "conditions": prefix.num_conditions,
                "cutoffs": prefix.num_cutoffs,
                names.SAFETY_CERTIFIED: certified,
            },
        )
        root.set(states=result.states, edges=result.edges)
    record_result(result)
    return result
