"""Analysis utilities over complete finite prefixes.

The prefix represents every reachable marking of a safe net; these helpers
extract that information for validation and reporting:

* :func:`prefix_markings` — all markings represented by configurations of
  the prefix (exponential enumeration; intended for the test-suite's
  completeness checks on small nets);
* :func:`analyze` — prefix construction packaged as an
  :class:`~repro.analysis.stats.AnalysisResult`, reporting the prefix
  sizes as the analyzer's "state" metric and a deadlock verdict obtained
  by walking cut markings through the prefix's events.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.stats import AnalysisResult, DeadlockWitness, stopwatch
from repro.net.petrinet import Marking, PetriNet
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.props.ast import Invariant, Not, Property
from repro.props.compile import check_places, predicate_fn
from repro.props.eval import (
    engine_property,
    needs_decomposition,
    property_extras,
    reject_safe,
    run_property,
)
from repro.unfolding.prefix import Prefix, unfold

__all__ = ["prefix_markings", "deadlock_via_prefix", "analyze"]


def _cut_conditions(prefix: Prefix, config: frozenset[int]) -> frozenset[int]:
    """Condition indices in the cut of a configuration."""
    consumed: set[int] = set()
    for event_index in config:
        consumed.update(prefix.events[event_index].preset)
    return frozenset(
        c.index
        for c in prefix.conditions
        if (c.producer is None or c.producer in config)
        and c.index not in consumed
    )


def _cut_marking(prefix: Prefix, cut: frozenset[int]) -> Marking:
    return frozenset(prefix.conditions[c].place for c in cut)


def _enabled_events(prefix: Prefix, cut: frozenset[int]) -> list[int]:
    """Events whose whole preset lies in the cut."""
    return [
        e.index
        for e in prefix.events
        if all(b in cut for b in e.preset)
    ]


def prefix_markings(
    prefix: Prefix, *, limit: int | None = 100_000
) -> set[Marking]:
    """All markings represented by configurations of the prefix.

    Walks the occurrence net from the empty configuration, firing events
    whose presets are in the current cut; deduplicates on cuts.  By the
    completeness theorem this covers every reachable marking of the
    original net (asserted by the tests against explicit reachability).
    """
    initial = _cut_conditions(prefix, frozenset())
    seen_cuts: set[frozenset[int]] = {initial}
    markings: set[Marking] = {_cut_marking(prefix, initial)}
    queue: deque[frozenset[int]] = deque([initial])
    while queue:
        cut = queue.popleft()
        for event_index in _enabled_events(prefix, cut):
            event = prefix.events[event_index]
            new_cut = cut - frozenset(event.preset)
            new_cut |= frozenset(
                c.index
                for c in prefix.conditions
                if c.producer == event_index
            )
            if new_cut in seen_cuts:
                continue
            seen_cuts.add(new_cut)
            markings.add(_cut_marking(prefix, new_cut))
            if limit is not None and len(seen_cuts) > limit:
                raise RuntimeError("prefix enumeration limit exceeded")
            queue.append(new_cut)
    return markings


def deadlock_via_prefix(
    net: PetriNet, prefix: Prefix
) -> Marking | None:
    """A reachable dead marking found by walking the prefix, or ``None``.

    Every reachable marking is a represented cut, so checking net-level
    enabledness on each cut marking decides deadlock freedom.  (This
    validates the prefix; it is not faster than explicit search.)
    """
    for marking in prefix_markings(prefix):
        if net.is_deadlocked(marking):
            return marking
    return None


def analyze(
    net: PetriNet,
    *,
    max_events: int | None = 10_000,
    max_seconds: float | None = None,
    want_witness: bool = True,
    prop: "Property | str | None" = None,
) -> AnalysisResult:
    """Unfold and report prefix sizes plus a deadlock verdict.

    ``prop`` evaluates a property over the markings the prefix
    represents.  Every cut of a prefix — even a truncated one — is a
    genuinely reachable marking, so a hit is conclusive regardless of
    the event budget; a miss decides only when the prefix is complete.
    """
    goal_prop = engine_property(prop)
    if goal_prop is not None and needs_decomposition(goal_prop):
        return run_property(
            goal_prop,
            lambda leaf: analyze(
                net,
                max_events=max_events,
                max_seconds=max_seconds,
                want_witness=want_witness,
                prop=leaf,
            ),
            analyzer="unfolding",
            net_name=net.name,
        )
    goal_fn = None
    goal_hit_holds = True
    goal_label = "goal"
    if goal_prop is not None:
        reject_safe("unfolding", goal_prop)
        check_places(net, goal_prop)
        if isinstance(goal_prop, Invariant):
            target = Not(goal_prop.pred)
            goal_hit_holds, goal_label = False, "violation"
        else:
            target = goal_prop.pred
        goal_fn = predicate_fn(net, target)
    tracer = current_tracer()
    with tracer.span(
        names.SPAN_ANALYZE, analyzer="unfolding", net=net.name
    ) as root:
        # Consult the structural certificate before unfolding: when it
        # holds, the occurrence-net construction never hits a safety
        # violation.
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        with stopwatch() as elapsed:
            with tracer.span(names.SPAN_UNFOLD):
                prefix = unfold(
                    net, max_events=max_events, max_seconds=max_seconds
                )
            exhaustive = (
                max_events is None or prefix.num_events < max_events
            )
            dead = None
            found: Marking | None = None
            enumerated = True
            with tracer.span(names.SPAN_WITNESS):
                if goal_fn is None:
                    dead = (
                        deadlock_via_prefix(net, prefix) if exhaustive else None
                    )
                else:
                    try:
                        for marking in prefix_markings(prefix):
                            if goal_fn(net.marking_names(marking)):
                                found = marking
                                break
                    except RuntimeError:
                        enumerated = False
        witness = None
        if goal_fn is None:
            if dead is not None and want_witness:
                witness = DeadlockWitness(
                    marking=net.marking_names(dead), trace=()
                )
        elif found is not None and want_witness:
            witness = DeadlockWitness(
                marking=net.marking_names(found), trace=(), label=goal_label
            )
        extras: dict[str, object] = {
            "conditions": prefix.num_conditions,
            "cutoffs": prefix.num_cutoffs,
            names.SAFETY_CERTIFIED: certified,
        }
        if goal_fn is not None:
            if found is not None:
                holds: bool | None = goal_hit_holds
            elif exhaustive and enumerated:
                holds = not goal_hit_holds
            else:
                holds = None
            extras.update(property_extras(goal_prop, holds))
            if not enumerated:
                extras["aborted"] = "prefix enumeration limit exceeded"
        result = AnalysisResult(
            analyzer="unfolding",
            net_name=net.name,
            states=prefix.num_events,
            edges=prefix.num_conditions,
            deadlock=dead is not None,
            time_seconds=elapsed[0],
            witness=witness,
            exhaustive=exhaustive or (goal_fn is not None and found is not None),
            extras=extras,
        )
        root.set(states=result.states, edges=result.edges)
    record_result(result)
    return result
