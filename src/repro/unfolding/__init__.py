"""Net unfoldings: McMillan's complete finite prefix.

A further classical partial-order technique (used by the asynchronous
timing-verification work the paper cites [13]); provides a reduction
metric — events/conditions/cutoffs — alongside the Table 1 analyzers.
"""

from repro.unfolding.analysis import analyze, deadlock_via_prefix, prefix_markings
from repro.unfolding.prefix import Condition, Event, Prefix, unfold

__all__ = [
    "unfold",
    "Prefix",
    "Condition",
    "Event",
    "prefix_markings",
    "deadlock_via_prefix",
    "analyze",
]
