"""McMillan's finite complete prefix of the unfolding of a safe net.

Net unfoldings are the other classical true-concurrency attack on state
explosion (the paper cites their use for asynchronous-circuit verification
[13]).  The *unfolding* is an acyclic occurrence net whose conditions are
token occurrences and whose events are transition occurrences; McMillan's
*cutoff* criterion truncates it to a finite prefix that still represents
every reachable marking.

Implemented here:

* :class:`Condition` / :class:`Event` — occurrence-net nodes with local
  configurations and concurrency bookkeeping;
* :class:`Prefix` — the complete finite prefix, built with a priority
  queue ordered by local-configuration size (McMillan's adequate order);
  an event is a **cutoff** when some earlier event (or the empty
  configuration) already reaches the same marking with a strictly smaller
  local configuration;
* completeness/deadlock utilities used by the tests: enumerate the
  markings represented by prefix configurations and check deadlock
  freedom through the prefix.

The implementation favors clarity over asymptotics (concurrency is
decided from explicit causal pasts); it comfortably handles the
benchmark-family sizes used in the test-suite and serves as a reduction
*metric* (events/conditions/cutoffs vs. state counts), not as the fastest
engine in the repository.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import product

from repro.analysis.stats import Deadline
from repro.net.petrinet import Marking, PetriNet

__all__ = ["Condition", "Event", "Prefix", "unfold"]


@dataclass(frozen=True)
class Condition:
    """A token occurrence: a place plus the event that produced it.

    ``producer`` is ``None`` for the conditions of the initial marking.
    """

    index: int
    place: int
    producer: int | None


@dataclass(frozen=True)
class Event:
    """A transition occurrence consuming a co-set of conditions."""

    index: int
    transition: int
    preset: tuple[int, ...]  # condition indices
    local_config: frozenset[int]  # event indices, self included
    marking: Marking  # cut marking of the local configuration
    is_cutoff: bool


@dataclass
class Prefix:
    """The complete finite prefix of a safe net's unfolding."""

    net: PetriNet
    conditions: list[Condition] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)

    @property
    def num_conditions(self) -> int:
        return len(self.conditions)

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_cutoffs(self) -> int:
        return sum(1 for e in self.events if e.is_cutoff)

    def condition_label(self, index: int) -> str:
        """Place name of a condition."""
        return self.net.places[self.conditions[index].place]

    def event_label(self, index: int) -> str:
        """Transition name of an event."""
        return self.net.transitions[self.events[index].transition]

    def local_markings(self) -> set[Marking]:
        """Cut markings of all local configurations (plus the initial)."""
        out = {self.net.initial_marking}
        out.update(e.marking for e in self.events)
        return out

    def __repr__(self) -> str:
        return (
            f"Prefix(events={self.num_events}, "
            f"conditions={self.num_conditions}, cutoffs={self.num_cutoffs})"
        )


class _Builder:
    """Internal state of the unfolding construction."""

    def __init__(
        self,
        net: PetriNet,
        max_events: int | None,
        max_seconds: float | None = None,
    ) -> None:
        self.net = net
        self.max_events = max_events
        self.deadline = Deadline.of(max_seconds)
        self.prefix = Prefix(net)
        # per condition: its causal past as a frozenset of event indices
        self.past: list[frozenset[int]] = []
        # per condition index: consumed-by which (non-virtual) events
        self.consumers: list[set[int]] = []
        # conditions grouped by place label, for extension search
        self.by_place: dict[int, list[int]] = {}
        # markings seen with the size of the smallest local config
        self.best_size: dict[Marking, int] = {net.initial_marking: 0}
        # priority queue of candidate events:
        # (local size, transition, preset conditions, local config)
        self.queue: list[
            tuple[int, int, tuple[int, ...], frozenset[int]]
        ] = []
        self.enqueued: set[tuple[int, tuple[int, ...]]] = set()

    # -- occurrence-net helpers -----------------------------------------
    def add_condition(self, place: int, producer: int | None) -> int:
        index = len(self.prefix.conditions)
        self.prefix.conditions.append(Condition(index, place, producer))
        if producer is None:
            self.past.append(frozenset())
        else:
            self.past.append(self.prefix.events[producer].local_config)
        self.consumers.append(set())
        self.by_place.setdefault(place, []).append(index)
        return index

    def concurrent(self, b1: int, b2: int) -> bool:
        """Are two conditions concurrent (co)?

        Both lie on one cut iff their joint causal past is conflict-free
        (no condition consumed by two different events — that would be a
        choice resolved both ways) and neither condition is consumed
        *inside* that joint past (which would make it causally precede
        the other).  Conditions produced by the same event are concurrent.
        """
        if b1 == b2:
            return False
        joint = self.past[b1] | self.past[b2]
        consumed: dict[int, int] = {}
        for event_index in joint:
            for condition in self.prefix.events[event_index].preset:
                other = consumed.get(condition)
                if other is not None and other != event_index:
                    return False  # conflict
                consumed[condition] = event_index
        if b1 in consumed or b2 in consumed:
            return False  # causal precedence
        return True

    def coset_marking(self, local_config: frozenset[int]) -> Marking:
        """Cut marking of a configuration (initial + produced - consumed).

        A condition is in the cut iff it was produced by the configuration
        (or belongs to the initial marking) and no event of the
        configuration consumed it.
        """
        consumed_conditions: set[int] = set()
        for event_index in local_config:
            consumed_conditions.update(self.prefix.events[event_index].preset)
        cut_places: set[int] = set()
        for condition in self.prefix.conditions:
            in_config = (
                condition.producer is None
                or condition.producer in local_config
            )
            if in_config and condition.index not in consumed_conditions:
                cut_places.add(condition.place)
        return frozenset(cut_places)

    # -- extension search -------------------------------------------------
    def extensions_with(self, new_condition: int) -> None:
        """Enqueue all possible extensions whose preset uses ``new_condition``."""
        place = self.prefix.conditions[new_condition].place
        for t in self.net.post_transitions[place]:
            pre_places = sorted(self.net.pre_places[t])
            pools: list[list[int]] = []
            for p in pre_places:
                if p == place:
                    pools.append([new_condition])
                else:
                    pools.append(self.by_place.get(p, []))
            for combo in product(*pools):
                if len(set(combo)) != len(combo):
                    continue
                ok = True
                for i in range(len(combo)):
                    for j in range(i + 1, len(combo)):
                        if not self.concurrent(combo[i], combo[j]):
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    continue
                preset = tuple(sorted(combo))
                key = (t, preset)
                if key in self.enqueued:
                    continue
                self.enqueued.add(key)
                config = frozenset().union(*(self.past[b] for b in preset))
                size = len(config) + 1
                heapq.heappush(self.queue, (size, t, preset, config))

    def run(self) -> Prefix:
        for p in sorted(self.net.initial_marking):
            index = self.add_condition(p, None)
            self.extensions_with(index)
        while self.queue:
            if (
                self.max_events is not None
                and len(self.prefix.events) >= self.max_events
            ):
                break
            if self.deadline is not None:
                self.deadline.check(len(self.prefix.events))
            size, t, preset, config = heapq.heappop(self.queue)
            # A preset condition may have been consumed only in conflict —
            # occurrence nets allow sharing; but if any producer became a
            # cutoff's descendant we skip (cutoffs are not extended).
            if any(self._under_cutoff(b) for b in preset):
                continue
            event_index = len(self.prefix.events)
            local_config = config | {event_index}
            placeholder = Event(
                index=event_index,
                transition=t,
                preset=preset,
                local_config=local_config,
                marking=frozenset(),
                is_cutoff=False,
            )
            self.prefix.events.append(placeholder)
            # The event's own postset conditions are not materialized yet;
            # account for its produced places directly.
            marking = self.coset_marking(local_config) | frozenset(
                self.net.post_places[t]
            )
            best = self.best_size.get(marking)
            is_cutoff = best is not None and best < len(local_config)
            if not is_cutoff:
                self.best_size[marking] = len(local_config)
            self.prefix.events[event_index] = Event(
                index=event_index,
                transition=t,
                preset=preset,
                local_config=local_config,
                marking=marking,
                is_cutoff=is_cutoff,
            )
            for b in preset:
                self.consumers[b].add(event_index)
            # Cutoff events keep their postset conditions (so every
            # configuration has its full cut) but are never extended.
            for p in sorted(self.net.post_places[t]):
                condition = self.add_condition(p, event_index)
                if not is_cutoff:
                    self.extensions_with(condition)
        return self.prefix

    def _under_cutoff(self, condition: int) -> bool:
        producer = self.prefix.conditions[condition].producer
        return producer is not None and self.prefix.events[producer].is_cutoff


def unfold(
    net: PetriNet,
    *,
    max_events: int | None = 10_000,
    max_seconds: float | None = None,
) -> Prefix:
    """Build the complete finite prefix of ``net``'s unfolding.

    ``max_events`` guards against runaway growth (the prefix of a bounded
    net is finite, but can be large); reaching the bound leaves the prefix
    truncated — check ``num_events`` against it when completeness matters.
    ``max_seconds`` is a cooperative wall-clock budget: exceeding it raises
    :class:`~repro.analysis.stats.TimeLimitReached`.
    """
    return _Builder(net, max_events, max_seconds).run()
