"""Structural static analysis: facts from the net, not the state space.

Everything in this package is computed purely from the incidence
structure and the initial marking — invariant bases, siphons and traps,
the 1-safeness certificate, net classification, and the ``gpo lint``
report.  Zero states are ever explored here; the point is to *avoid*
exploration (certified safety, deadlock-freedom pre-check) or to gate it
(lint refusal of broken models).
"""

from repro.static.analysis import StaticAnalysis
from repro.static.classify import classification_chain, classify, mcs_consistency
from repro.static.invariants import (
    Invariant,
    InvariantBasis,
    farkas,
    p_invariants,
    t_invariants,
)
from repro.static.lint import LintReport, lint
from repro.static.matrix import IncidenceMatrix, incidence
from repro.static.safety import SafetyCertificate, assured_safety, certify_safety
from repro.static.siphons import (
    SiphonAnalysis,
    deadlock_freedom_precheck,
    maximal_trap_within,
    minimal_siphons,
    minimal_traps,
)

__all__ = [
    "StaticAnalysis",
    "IncidenceMatrix",
    "incidence",
    "Invariant",
    "InvariantBasis",
    "farkas",
    "p_invariants",
    "t_invariants",
    "SiphonAnalysis",
    "minimal_siphons",
    "minimal_traps",
    "maximal_trap_within",
    "deadlock_freedom_precheck",
    "SafetyCertificate",
    "certify_safety",
    "assured_safety",
    "classify",
    "classification_chain",
    "mcs_consistency",
    "LintReport",
    "lint",
]
