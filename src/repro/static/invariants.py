"""Exact P- and T-invariant bases via Farkas / Fourier–Motzkin elimination.

A **P-invariant** is a non-negative place weighting ``y`` with
``Σ_p y(p)·C[t][p] = 0`` for every transition ``t``: the weighted token
count ``y·m`` is conserved by every firing.  A **T-invariant** is a
non-negative transition counting ``x`` with zero net effect on every
place: any firing sequence whose Parikh vector is ``x`` returns to the
marking it started from.

Both are computed by the classical Farkas algorithm: start from
``[A | I]`` and eliminate the ``A`` columns one at a time, replacing the
rows by (a) the rows already zero in that column and (b) every positive
combination of a positive-entry row with a negative-entry row.  Positive
combinations of the identity seed rows stay non-negative, so what survives
elimination is exactly a generating set of the non-negative solution cone.

Arithmetic is exact throughout — no floats, no numpy.  Every working row
is kept as the smallest integral vector of its ray (integer combinations
of integer rows re-reduced by their gcd), which is the classical
all-integer variant of rational Fourier–Motzkin; the public API surfaces
the weights as :class:`fractions.Fraction` to make the exactness contract
explicit in the types.  Support sets are tracked as int bitmasks so the
minimal-support pruning — the step that dominates on invariant-rich nets —
costs two machine-int ops per comparison.

The intermediate row count can blow up combinatorially on adversarial
inputs, so the elimination carries a row cap; a basis computed under a hit
cap is flagged ``capped`` (incomplete — callers must not conclude from the
*absence* of an invariant) and its surviving rays are still genuine
invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd

from repro.net.petrinet import PetriNet
from repro.static.matrix import IncidenceMatrix, incidence

__all__ = [
    "Invariant",
    "InvariantBasis",
    "p_invariants",
    "t_invariants",
    "farkas",
]

#: Default bound on intermediate rows during elimination.  Generous for
#: the benchmark families (their structured nets stay in the thousands);
#: a net that exceeds it gets a ``capped`` (incomplete) basis instead of
#: an exponential computation.
DEFAULT_MAX_ROWS = 20_000


@dataclass(frozen=True)
class Invariant:
    """One non-negative integral invariant vector.

    ``weights`` is indexed by place (P-invariants) or transition
    (T-invariants).  Entries are :class:`~fractions.Fraction` to keep the
    exact-arithmetic contract visible in the type; after normalization
    they are always non-negative integers with gcd 1.
    """

    weights: tuple[Fraction, ...]

    @property
    def support(self) -> frozenset[int]:
        """Indices with a non-zero weight."""
        return frozenset(i for i, w in enumerate(self.weights) if w != 0)

    def value(self, marking: frozenset[int]) -> Fraction:
        """The conserved quantity ``y·m`` of a safe-net marking."""
        return sum((self.weights[p] for p in marking), start=Fraction(0))

    def describe(self, names: tuple[str, ...]) -> str:
        """Human-readable ``2*a + b + c`` rendering."""
        terms: list[str] = []
        for i in sorted(self.support):
            weight = self.weights[i]
            if weight == 1:
                terms.append(names[i])
            else:
                terms.append(f"{weight}*{names[i]}")
        return " + ".join(terms)


@dataclass(frozen=True)
class InvariantBasis:
    """A generating set of minimal-support non-negative invariants.

    ``capped`` is True when the elimination hit its row budget: the listed
    invariants are still valid, but the basis may be incomplete and
    non-coverage conclusions are unsound.
    """

    kind: str  # "P" or "T"
    invariants: tuple[Invariant, ...]
    capped: bool

    def __len__(self) -> int:
        return len(self.invariants)

    def covering(self, index: int) -> list[Invariant]:
        """The invariants whose support contains ``index``."""
        return [inv for inv in self.invariants if index in inv.support]


#: One elimination row: (constraint residual, seed vector, seed-support
#: bitmask).  Residual entries may be negative; seed entries never are,
#: so the support mask of a positive combination is exactly the union.
_Row = tuple[tuple[int, ...], tuple[int, ...], int]


def _reduce(row: list[int]) -> tuple[int, ...]:
    """Scale an integral ray down to gcd 1 (sign-preserving)."""
    g = 0
    for entry in row:
        g = gcd(g, entry)
    if g > 1:
        return tuple(entry // g for entry in row)
    return tuple(row)


def _minimal_support_filter(rows: list[_Row]) -> list[_Row]:
    """Drop rows whose seed support contains another row's.

    Keeping only support-minimal rays is the standard Farkas pruning: it
    preserves a generating set of the cone while preventing most of the
    intermediate blow-up.  Rows are scanned in ascending support size, so
    a kept mask can never be a strict superset of a later one; equal
    supports keep the first representative (minimal-support rays are
    unique up to scale, so a duplicated support is never minimal anyway).
    """
    ordered = sorted(rows, key=lambda row: row[2].bit_count())
    kept: list[_Row] = []
    # A kept mask can only be a subset of ``mask`` if its lowest set bit
    # is one of ``mask``'s bits, so bucketing kept masks by lowest bit
    # lets each candidate scan only the buckets of its own support.
    by_low_bit: dict[int, list[int]] = {}
    for row in ordered:
        mask = row[2]
        dominated = False
        remaining = mask
        while remaining and not dominated:
            low = remaining & -remaining
            for kept_mask in by_low_bit.get(low, ()):
                if kept_mask & mask == kept_mask:
                    dominated = True
                    break
            remaining ^= low
        if dominated:
            continue
        kept.append(row)
        by_low_bit.setdefault(mask & -mask, []).append(mask)
    return kept


def farkas(
    matrix: list[list[int]], *, max_rows: int = DEFAULT_MAX_ROWS
) -> tuple[list[tuple[Fraction, ...]], bool]:
    """Non-negative solutions of ``matrix · y = 0`` (columns of unknowns).

    ``matrix`` is a list of constraint rows, each of length ``n`` (one
    entry per unknown).  Returns ``(rays, capped)``: support-minimal
    integral rays spanning the solution cone, and whether the row budget
    was hit (making the answer possibly incomplete).
    """
    if not matrix:
        return [], False
    n = len(matrix[0])
    num_constraints = len(matrix)
    rows: list[_Row] = []
    for unknown in range(n):
        residual = tuple(constraint[unknown] for constraint in matrix)
        seed = tuple(1 if i == unknown else 0 for i in range(n))
        rows.append((residual, seed, 1 << unknown))

    capped = False
    for c in range(num_constraints):
        zero: list[_Row] = []
        positive: list[_Row] = []
        negative: list[_Row] = []
        for row in rows:
            entry = row[0][c]
            if entry == 0:
                zero.append(row)
            elif entry > 0:
                positive.append(row)
            else:
                negative.append(row)
        combined = list(zero)
        seen: set[tuple[int, ...]] = {seed for _, seed, _ in zero}
        overflow = False
        for residual_p, seed_p, mask_p in positive:
            alpha = residual_p[c]
            for residual_n, seed_n, mask_n in negative:
                beta = -residual_n[c]
                # The residual is a fixed linear image of the seed, so
                # reducing them *jointly* keeps the pair consistent and
                # makes the seed a valid dedup key.
                joint = [
                    beta * rp + alpha * rn
                    for rp, rn in zip(residual_p, residual_n)
                ]
                joint += [
                    beta * sp + alpha * sn
                    for sp, sn in zip(seed_p, seed_n)
                ]
                norm = _reduce(joint)
                norm_seed = norm[num_constraints:]
                if norm_seed in seen:
                    continue
                seen.add(norm_seed)
                combined.append(
                    (norm[:num_constraints], norm_seed, mask_p | mask_n)
                )
                if len(combined) > max_rows:
                    overflow = True
                    break
            if overflow:
                break
        rows = _minimal_support_filter(combined)
        if overflow:
            capped = True
            # Keep only the rows that already satisfy the remaining
            # constraints: they are genuine invariants even under the cap.
            rows = [
                row
                for row in rows
                if all(row[0][k] == 0 for k in range(c + 1, num_constraints))
            ]
            break
    rays = [
        tuple(Fraction(entry) for entry in seed)
        for residual, seed, _ in rows
        if all(entry == 0 for entry in residual)
    ]
    return rays, capped


def p_invariants(
    net: PetriNet,
    *,
    matrix: IncidenceMatrix | None = None,
    max_rows: int = DEFAULT_MAX_ROWS,
) -> InvariantBasis:
    """Minimal-support non-negative P-invariant basis of ``net``.

    Constraint system: one row per transition, unknowns are the place
    weights — ``Σ_p y(p)·C[t][p] = 0`` for every ``t``.
    """
    mat = matrix if matrix is not None else incidence(net)
    constraints = [list(mat.effect[t]) for t in range(mat.num_transitions)]
    rays, capped = farkas(constraints, max_rows=max_rows)
    return InvariantBasis(
        kind="P",
        invariants=tuple(Invariant(weights=ray) for ray in rays),
        capped=capped,
    )


def t_invariants(
    net: PetriNet,
    *,
    matrix: IncidenceMatrix | None = None,
    max_rows: int = DEFAULT_MAX_ROWS,
) -> InvariantBasis:
    """Minimal-support non-negative T-invariant basis of ``net``.

    Constraint system: one row per place, unknowns are the transition
    counts — ``Σ_t x(t)·C[t][p] = 0`` for every ``p``.
    """
    mat = matrix if matrix is not None else incidence(net)
    constraints = [
        [mat.effect[t][p] for t in range(mat.num_transitions)]
        for p in range(mat.num_places)
    ]
    rays, capped = farkas(constraints, max_rows=max_rows)
    return InvariantBasis(
        kind="T",
        invariants=tuple(Invariant(weights=ray) for ray in rays),
        capped=capped,
    )
