"""Exact incidence matrices of safe Petri nets.

The linear-algebraic view the structural analyses build on: for a net
``(P, T, F, m0)`` the *incidence matrix* is ``C = C⁺ − C⁻`` where
``C⁻[t][p] = 1`` iff ``p ∈ •t`` and ``C⁺[t][p] = 1`` iff ``p ∈ t•``.
The state equation ``m' = m + Cᵀ·σ`` (σ the Parikh vector of a firing
sequence) is what makes P-invariants (``yᵀCᵀ = 0``) conservation laws and
T-invariants (``C ᵀx = 0`` … i.e. ``x`` with zero net effect) reproducing
firing counts.

Entries are plain Python ints (the kernel has no arc weights); downstream
invariant computation lifts them into :class:`fractions.Fraction` so the
whole pipeline stays exact — no floats, no numpy.

Note the deliberate information loss: a self-loop place ``p ∈ •t ∩ t•``
contributes ``0`` to ``C[t][p]``.  That is correct for everything derived
from the state equation (the marking of ``p`` really is unchanged by
``t``), but it means invariant-based facts never *see* self-loop
read-arcs; the siphon/trap analyses, which work on the raw flow relation,
do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.petrinet import PetriNet

__all__ = ["IncidenceMatrix", "incidence"]


@dataclass(frozen=True)
class IncidenceMatrix:
    """Incidence data of a net, indexed ``[transition][place]``.

    ``pre``/``post`` are the input and output matrices ``C⁻``/``C⁺``;
    ``effect`` is ``C = C⁺ − C⁻``.  Rows are transitions, columns places —
    the orientation under which firing ``t`` adds row ``effect[t]`` to the
    marking vector.
    """

    num_places: int
    num_transitions: int
    pre: tuple[tuple[int, ...], ...]
    post: tuple[tuple[int, ...], ...]
    effect: tuple[tuple[int, ...], ...]

    def column(self, place: int) -> tuple[int, ...]:
        """The effect column of one place across all transitions."""
        return tuple(self.effect[t][place] for t in range(self.num_transitions))


def incidence(net: PetriNet) -> IncidenceMatrix:
    """Build the exact incidence matrix of ``net``."""
    num_places = net.num_places
    pre_rows: list[tuple[int, ...]] = []
    post_rows: list[tuple[int, ...]] = []
    effect_rows: list[tuple[int, ...]] = []
    for t in range(net.num_transitions):
        inputs = net.pre_places[t]
        outputs = net.post_places[t]
        pre_rows.append(tuple(1 if p in inputs else 0 for p in range(num_places)))
        post_rows.append(tuple(1 if p in outputs else 0 for p in range(num_places)))
        effect_rows.append(
            tuple(
                (1 if p in outputs else 0) - (1 if p in inputs else 0)
                for p in range(num_places)
            )
        )
    return IncidenceMatrix(
        num_places=num_places,
        num_transitions=net.num_transitions,
        pre=tuple(pre_rows),
        post=tuple(post_rows),
        effect=tuple(effect_rows),
    )
