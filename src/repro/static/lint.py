"""Model linting: advisory diagnostics merged with structural facts.

One entry point, :func:`lint`, producing a :class:`LintReport` that joins
the advisory diagnostics of :func:`repro.net.validation.diagnose` with
everything the static subsystem can say without exploring a single state:
net class, invariant bases, siphons/traps, the 1-safeness certificate and
the siphon–trap deadlock-freedom pre-check.  With ``reduce=True`` the
report also folds in the :mod:`repro.reduce` opportunity findings — one
per structural-reduction rule application the deadlock-preserving preset
would perform.  The CLI's ``gpo lint`` renders it (human-readable,
``--format json`` or ``--format sarif``); ``table1 --lint`` and
``bench-model --lint`` use :attr:`LintReport.broken` as a refusal gate
before spending any exploration budget (reduction findings are advisory
and never mark a model broken).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.petrinet import PetriNet
from repro.net.validation import Diagnostics, diagnose
from repro.static.analysis import StaticAnalysis
from repro.static.safety import SafetyCertificate

__all__ = ["LintReport", "lint"]


@dataclass(frozen=True)
class LintReport:
    """Everything ``gpo lint`` knows about a model, in one record."""

    net: PetriNet
    diagnostics: Diagnostics
    net_class: str
    p_invariant_count: int
    t_invariant_count: int
    invariants_capped: bool
    siphon_count: int
    trap_count: int
    siphons_capped: bool
    certificate: SafetyCertificate
    deadlock_precheck: str
    mcs_issues: tuple[str, ...]
    #: Structural-reduction opportunities (``lint(..., reduce=True)``):
    #: pre/post sizes, per-rule counts and one finding per application.
    reduction: "dict[str, Any] | None" = None

    @property
    def broken(self) -> bool:
        """True when the model should be refused by benchmark pre-passes.

        A model is *broken* when the advisory diagnostics fire (isolated
        places, structurally dead transitions, unmarked sources, sink
        transitions) or the MCS cross-check found an inconsistency.  An
        absent safety certificate is **not** breakage — it only means the
        dynamic fallback must run.
        """
        return bool(not self.diagnostics.clean or self.mcs_issues)

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable rendering (used by ``gpo lint --json``)."""
        return {
            "net": self.net.name,
            "places": self.net.num_places,
            "transitions": self.net.num_transitions,
            "broken": self.broken,
            "net_class": self.net_class,
            "diagnostics": {
                "clean": self.diagnostics.clean,
                "isolated_places": list(self.diagnostics.isolated_places),
                "sink_transitions": list(self.diagnostics.sink_transitions),
                "structurally_dead_transitions": list(
                    self.diagnostics.structurally_dead_transitions
                ),
                "unmarked_source_places": list(
                    self.diagnostics.unmarked_source_places
                ),
            },
            "invariants": {
                "p": self.p_invariant_count,
                "t": self.t_invariant_count,
                "capped": self.invariants_capped,
            },
            "siphons": {
                "minimal_siphons": self.siphon_count,
                "minimal_traps": self.trap_count,
                "capped": self.siphons_capped,
            },
            "safety": {
                "certified": self.certificate.certified,
                "uncovered_places": [
                    self.net.places[p] for p in self.certificate.uncovered
                ],
                "basis_capped": self.certificate.basis_capped,
            },
            "deadlock_precheck": self.deadlock_precheck,
            "mcs_issues": list(self.mcs_issues),
            "reduction": self.reduction,
        }

    def to_sarif(self) -> dict[str, Any]:
        """SARIF 2.1.0 log (used by ``gpo lint --format sarif``).

        Advisory diagnostics surface as ``warning`` results, MCS
        inconsistencies as ``error``, reduction opportunities as ``note``
        — so editors and CI annotators can consume one stream.
        """
        results: list[dict[str, Any]] = []
        rules: dict[str, str] = {}

        def add(
            rule_id: str,
            level: str,
            message: str,
            description: str,
            *,
            places: tuple[str, ...] = (),
            transitions: tuple[str, ...] = (),
        ) -> None:
            rules.setdefault(rule_id, description)
            locations = [
                {"logicalLocations": [{"name": name, "kind": "member"}]}
                for name in (*places, *transitions)
            ]
            result: dict[str, Any] = {
                "ruleId": rule_id,
                "level": level,
                "message": {"text": message},
            }
            if locations:
                result["locations"] = locations
            results.append(result)

        diag = self.diagnostics
        for place in diag.isolated_places:
            add("lint/isolated-place", "warning",
                f"place {place!r} has no arcs",
                "a place connected to no transition", places=(place,))
        for name in diag.sink_transitions:
            add("lint/sink-transition", "warning",
                f"transition {name!r} has no output places",
                "a transition that only consumes tokens",
                transitions=(name,))
        for name in diag.structurally_dead_transitions:
            add("lint/dead-transition", "warning",
                f"transition {name!r} can never fire",
                "a transition with an unmarkable input place",
                transitions=(name,))
        for place in diag.unmarked_source_places:
            add("lint/unmarked-source", "warning",
                f"place {place!r} is an unmarked source",
                "an initially empty place no transition ever marks",
                places=(place,))
        for issue in self.mcs_issues:
            add("lint/mcs-inconsistency", "error", issue,
                "marked-circuit-structure cross-check inconsistency")
        if not self.certificate.certified:
            uncovered = tuple(
                self.net.places[index] for index in self.certificate.uncovered
            )
            add("lint/uncertified-safety", "note",
                "no structural 1-safeness certificate; the dynamic check "
                "must run", "places not covered by any 1-bounded P-invariant",
                places=uncovered)
        for finding in (self.reduction or {}).get("findings", ()):
            add(str(finding["rule"]), "note", str(finding["message"]),
                "structural reduction opportunity (deadlock-preserving)",
                places=tuple(finding.get("places", ())),
                transitions=tuple(finding.get("transitions", ())))
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "gpo-lint",
                            "informationUri": (
                                "https://doi.org/10.1109/DATE.1998.655889"
                            ),
                            "rules": [
                                {
                                    "id": rule_id,
                                    "shortDescription": {"text": text},
                                }
                                for rule_id, text in sorted(rules.items())
                            ],
                        }
                    },
                    "results": results,
                }
            ],
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{self.net.name}: {self.net.num_places} places, "
            f"{self.net.num_transitions} transitions",
            f"  class: {self.net_class}",
        ]
        cap = " (capped)" if self.invariants_capped else ""
        lines.append(
            f"  invariants: {self.p_invariant_count} P, "
            f"{self.t_invariant_count} T{cap}"
        )
        cap = " (capped)" if self.siphons_capped else ""
        lines.append(
            f"  siphons/traps: {self.siphon_count} minimal siphons, "
            f"{self.trap_count} minimal traps{cap}"
        )
        lines.append(f"  1-safeness: {self.certificate.explain(self.net)}")
        lines.append(f"  deadlock pre-check: {self.deadlock_precheck}")
        if self.reduction is not None:
            pre = "/".join(str(n) for n in self.reduction["pre"])
            post = "/".join(str(n) for n in self.reduction["post"])
            count = len(self.reduction["findings"])
            if count:
                lines.append(
                    f"  reduction: {pre} -> {post} P/T/A "
                    f"({count} deadlock-preserving rule application(s))"
                )
                for finding in self.reduction["findings"]:
                    lines.append(
                        f"    [{finding['rule']}] {finding['message']}"
                    )
            else:
                lines.append("  reduction: irreducible at deadlock level")
        diag = self.diagnostics.summary()
        if diag:
            lines.append("  diagnostics:")
            lines.extend(f"    {line}" for line in diag.splitlines())
        else:
            lines.append("  diagnostics: clean")
        for issue in self.mcs_issues:
            lines.append(f"  MCS inconsistency: {issue}")
        lines.append(f"  verdict: {'BROKEN' if self.broken else 'ok'}")
        return "\n".join(lines)


def lint(
    net: PetriNet,
    *,
    analysis: StaticAnalysis | None = None,
    reduce: bool = False,
) -> LintReport:
    """Run every structural check on ``net`` and collect the report.

    ``reduce=True`` additionally runs the deadlock-preserving structural
    reduction preset and folds one advisory finding per rule application
    into the report (``gpo lint`` does; the benchmark refusal gates skip
    it — reduction findings never affect :attr:`LintReport.broken`).
    """
    if analysis is None:
        analysis = net.static_analysis()
    reduction: dict[str, Any] | None = None
    if reduce:
        # Imported lazily: the reduce engine consumes this package's
        # static analysis, so a module-level import would be circular.
        from repro.reduce import findings_of, reduce_net

        shrunk = reduce_net(net, level="deadlock", mode="auto")
        pre, post = shrunk.sizes()
        reduction = {
            "level": shrunk.level,
            "mode": shrunk.mode,
            "pre": list(pre),
            "post": list(post),
            "rules": shrunk.rule_counts(),
            "findings": [f.to_json() for f in findings_of(shrunk)],
        }
    siphons = analysis.siphons
    traps = analysis.traps
    p_basis = analysis.p_invariants
    t_basis = analysis.t_invariants
    return LintReport(
        net=net,
        diagnostics=diagnose(net),
        net_class=analysis.net_class,
        p_invariant_count=len(p_basis),
        t_invariant_count=len(t_basis),
        invariants_capped=p_basis.capped or t_basis.capped,
        siphon_count=len(siphons),
        trap_count=len(traps),
        siphons_capped=siphons.capped or traps.capped,
        certificate=analysis.safety_certificate,
        deadlock_precheck=analysis.deadlock_freedom(),
        mcs_issues=tuple(analysis.mcs_issues()),
        reduction=reduction,
    )
