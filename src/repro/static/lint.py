"""Model linting: advisory diagnostics merged with structural facts.

One entry point, :func:`lint`, producing a :class:`LintReport` that joins
the advisory diagnostics of :func:`repro.net.validation.diagnose` with
everything the static subsystem can say without exploring a single state:
net class, invariant bases, siphons/traps, the 1-safeness certificate and
the siphon–trap deadlock-freedom pre-check.  The CLI's ``gpo lint``
renders it (human-readable or ``--json``); ``table1 --lint`` and
``bench-model --lint`` use :attr:`LintReport.broken` as a refusal gate
before spending any exploration budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.petrinet import PetriNet
from repro.net.validation import Diagnostics, diagnose
from repro.static.analysis import StaticAnalysis
from repro.static.safety import SafetyCertificate

__all__ = ["LintReport", "lint"]


@dataclass(frozen=True)
class LintReport:
    """Everything ``gpo lint`` knows about a model, in one record."""

    net: PetriNet
    diagnostics: Diagnostics
    net_class: str
    p_invariant_count: int
    t_invariant_count: int
    invariants_capped: bool
    siphon_count: int
    trap_count: int
    siphons_capped: bool
    certificate: SafetyCertificate
    deadlock_precheck: str
    mcs_issues: tuple[str, ...]

    @property
    def broken(self) -> bool:
        """True when the model should be refused by benchmark pre-passes.

        A model is *broken* when the advisory diagnostics fire (isolated
        places, structurally dead transitions, unmarked sources, sink
        transitions) or the MCS cross-check found an inconsistency.  An
        absent safety certificate is **not** breakage — it only means the
        dynamic fallback must run.
        """
        return bool(not self.diagnostics.clean or self.mcs_issues)

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable rendering (used by ``gpo lint --json``)."""
        return {
            "net": self.net.name,
            "places": self.net.num_places,
            "transitions": self.net.num_transitions,
            "broken": self.broken,
            "net_class": self.net_class,
            "diagnostics": {
                "clean": self.diagnostics.clean,
                "isolated_places": list(self.diagnostics.isolated_places),
                "sink_transitions": list(self.diagnostics.sink_transitions),
                "structurally_dead_transitions": list(
                    self.diagnostics.structurally_dead_transitions
                ),
                "unmarked_source_places": list(
                    self.diagnostics.unmarked_source_places
                ),
            },
            "invariants": {
                "p": self.p_invariant_count,
                "t": self.t_invariant_count,
                "capped": self.invariants_capped,
            },
            "siphons": {
                "minimal_siphons": self.siphon_count,
                "minimal_traps": self.trap_count,
                "capped": self.siphons_capped,
            },
            "safety": {
                "certified": self.certificate.certified,
                "uncovered_places": [
                    self.net.places[p] for p in self.certificate.uncovered
                ],
                "basis_capped": self.certificate.basis_capped,
            },
            "deadlock_precheck": self.deadlock_precheck,
            "mcs_issues": list(self.mcs_issues),
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{self.net.name}: {self.net.num_places} places, "
            f"{self.net.num_transitions} transitions",
            f"  class: {self.net_class}",
        ]
        cap = " (capped)" if self.invariants_capped else ""
        lines.append(
            f"  invariants: {self.p_invariant_count} P, "
            f"{self.t_invariant_count} T{cap}"
        )
        cap = " (capped)" if self.siphons_capped else ""
        lines.append(
            f"  siphons/traps: {self.siphon_count} minimal siphons, "
            f"{self.trap_count} minimal traps{cap}"
        )
        lines.append(f"  1-safeness: {self.certificate.explain(self.net)}")
        lines.append(f"  deadlock pre-check: {self.deadlock_precheck}")
        diag = self.diagnostics.summary()
        if diag:
            lines.append("  diagnostics:")
            lines.extend(f"    {line}" for line in diag.splitlines())
        else:
            lines.append("  diagnostics: clean")
        for issue in self.mcs_issues:
            lines.append(f"  MCS inconsistency: {issue}")
        lines.append(f"  verdict: {'BROKEN' if self.broken else 'ok'}")
        return "\n".join(lines)


def lint(
    net: PetriNet, *, analysis: StaticAnalysis | None = None
) -> LintReport:
    """Run every structural check on ``net`` and collect the report."""
    if analysis is None:
        analysis = net.static_analysis()
    siphons = analysis.siphons
    traps = analysis.traps
    p_basis = analysis.p_invariants
    t_basis = analysis.t_invariants
    return LintReport(
        net=net,
        diagnostics=diagnose(net),
        net_class=analysis.net_class,
        p_invariant_count=len(p_basis),
        t_invariant_count=len(t_basis),
        invariants_capped=p_basis.capped or t_basis.capped,
        siphon_count=len(siphons),
        trap_count=len(traps),
        siphons_capped=siphons.capped or traps.capped,
        certificate=analysis.safety_certificate,
        deadlock_precheck=analysis.deadlock_freedom(),
        mcs_issues=tuple(analysis.mcs_issues()),
    )
