"""Structural 1-safeness certification from P-invariants.

The paper's entire theory (Defs. 2.1–2.4 and the GPN semantics of §3)
assumes 1-safe nets, but proving 1-safeness dynamically is itself a
reachability problem — the very explosion the analyzers are built to
avoid.  P-invariants close the loop structurally: if ``y`` is a
non-negative P-invariant then ``y·m = y·m0`` for *every* reachable
marking ``m`` (general place/transition semantics, so the argument is not
circular through the safe-marking representation).  With non-negative
weights this gives the per-place bound

    m(p) ≤ floor( (y·m0) / y(p) )        whenever y(p) > 0,

so a place is **covered** when some invariant yields a bound of 1 — in
the simplest and most common form, ``y(p) ≥ 1`` with ``y·m0 = 1`` (one
conservation component carrying exactly one token).  When every place is
covered the net is structurally certified 1-safe: no reachable marking
can ever put a second token anywhere, hence the kernel's
:class:`~repro.net.exceptions.UnsafeNetError` is unreachable and the
safe-marking representation is exact.

The certificate is *sound but incomplete*: an uncovered place is not
evidence of unsafety (there are 1-safe nets without a covering invariant
basis, and the basis itself may be capped).  Callers fall back to the
bounded dynamic check of :func:`repro.net.validation.check_safe` in that
case — see :func:`assured_safety`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.net.petrinet import PetriNet
from repro.net.validation import check_safe
from repro.static.invariants import InvariantBasis, p_invariants

__all__ = ["SafetyCertificate", "certify_safety", "assured_safety"]


@dataclass(frozen=True)
class SafetyCertificate:
    """A (possibly failed) structural proof of 1-safeness.

    ``certified`` is True when every place has a structural token bound
    of 1.  ``bounds`` maps each place index to its best invariant-derived
    bound (``None`` when no invariant with positive weight covers it);
    ``covering`` maps each certified place to the index (into the basis)
    of one invariant establishing its bound.  ``basis_capped`` records
    that the invariant computation hit its row budget — the certificate
    is still sound when it certifies, but a failure to certify may then
    be an artifact of the incomplete basis.
    """

    certified: bool
    bounds: dict[int, int | None]
    covering: dict[int, int]
    uncovered: tuple[int, ...]
    basis_capped: bool

    def explain(self, net: PetriNet) -> str:
        """One-paragraph human-readable account of the verdict."""
        if self.certified:
            distinct = len(set(self.covering.values()))
            return (
                f"structurally 1-safe: every place is covered by a "
                f"P-invariant with token count 1 "
                f"({distinct} covering invariant(s))"
            )
        names = ", ".join(
            net.places[p] for p in self.uncovered[:5]
        )
        suffix = ", ..." if len(self.uncovered) > 5 else ""
        cap_note = " (invariant basis capped)" if self.basis_capped else ""
        return (
            f"no structural certificate: {len(self.uncovered)} place(s) "
            f"not covered by a unit-token P-invariant ({names}{suffix})"
            f"{cap_note}"
        )


def certify_safety(
    net: PetriNet, *, basis: InvariantBasis | None = None
) -> SafetyCertificate:
    """Try to certify 1-safeness of ``net`` from its P-invariant basis.

    Purely structural — no state is ever explored.  For each place the
    best bound ``floor((y·m0)/y(p))`` over basis invariants with
    ``y·m0 > 0`` and ``y(p) > 0`` is recorded; the certificate holds when
    every place is bounded by 1.
    """
    if basis is None:
        basis = p_invariants(net)
    m0 = net.initial_marking
    bounds: dict[int, int | None] = {}
    covering: dict[int, int] = {}
    uncovered: list[int] = []
    values: list[Fraction] = [inv.value(m0) for inv in basis.invariants]
    for p in range(net.num_places):
        best: int | None = None
        best_index: int | None = None
        for index, invariant in enumerate(basis.invariants):
            weight = invariant.weights[p]
            if weight <= 0 or values[index] <= 0:
                continue
            bound = int(values[index] / weight)  # exact floor of a Fraction
            if best is None or bound < best:
                best = bound
                best_index = index
        bounds[p] = best
        if best is not None and best <= 1 and best_index is not None:
            covering[p] = best_index
        else:
            uncovered.append(p)
    return SafetyCertificate(
        certified=not uncovered,
        bounds=bounds,
        covering=covering,
        uncovered=tuple(uncovered),
        basis_capped=basis.capped,
    )


def assured_safety(
    net: PetriNet,
    *,
    certificate: SafetyCertificate | None = None,
    max_states: int = 100_000,
) -> tuple[str, str]:
    """Decide 1-safeness: structural certificate first, dynamics second.

    Returns ``(status, source)`` with ``status`` one of ``"safe"`` /
    ``"unsafe"`` / ``"unknown"`` and ``source`` either ``"structural"``
    (certificate, zero states explored) or ``"dynamic"`` (the bounded
    exploration of :func:`repro.net.validation.check_safe`, whose
    tri-state verdict is forwarded as-is).
    """
    if certificate is None:
        certificate = certify_safety(net)
    if certificate.certified:
        return "safe", "structural"
    return check_safe(net, max_states=max_states).status, "dynamic"
