"""Siphon and trap analysis on the raw flow relation.

A **siphon** (structural deadlock) is a place set ``D`` with ``•D ⊆ D•``:
every transition producing into ``D`` also consumes from it, so once ``D``
is token-free it stays token-free.  A **trap** is the dual, ``Q• ⊆ •Q``:
every transition consuming from ``Q`` also produces into it, so a marked
trap stays marked forever.

The load-bearing classical fact (the Commoner/Hack argument, valid for
*general* nets in the total-deadlock direction used here): at any dead
marking the set of empty places is a siphon, and — provided the net has at
least one transition and no transition has an empty preset — that siphon
is non-empty, hence contains a *minimal* siphon that is completely empty.
A siphon containing an initially marked trap can never be emptied.
Therefore:

    every minimal siphon contains an initially marked trap
        ⟹  no reachable marking is dead (deadlock-freedom).

The converse direction does not hold in general, so the pre-check answers
``"deadlock-free"`` or ``"unknown"`` — never "deadlock".

Minimal-siphon enumeration is NP-hard in general; the search below is a
branch-and-bound refinement (grow a candidate set by repairing one
violated constraint at a time, branching over the input places that can
repair it) with explicit size and count caps.  A capped enumeration sets
``capped`` and disables the deadlock-freedom conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.petrinet import PetriNet

__all__ = [
    "SiphonAnalysis",
    "minimal_siphons",
    "minimal_traps",
    "maximal_trap_within",
    "deadlock_freedom_precheck",
]

#: Default enumeration caps: generous for the benchmark families, hard
#: bounds against the exponential worst case.
DEFAULT_MAX_SIZE = 24
DEFAULT_MAX_COUNT = 512


@dataclass(frozen=True)
class SiphonAnalysis:
    """Result of one (possibly capped) minimal-siphon enumeration.

    ``siphons`` are inclusion-minimal among those found; when ``capped``
    is True the enumeration hit a size or count bound and *absence* of a
    siphon means nothing.
    """

    siphons: tuple[frozenset[int], ...]
    capped: bool

    def __len__(self) -> int:
        return len(self.siphons)


def _enumerate_refinement(
    *,
    num_places: int,
    producing: tuple[frozenset[int], ...],
    repairing: tuple[frozenset[int], ...],
    max_size: int,
    max_count: int,
) -> SiphonAnalysis:
    """Shared siphon/trap search over an abstract constraint system.

    A set ``D`` is feasible iff for every transition ``t`` with
    ``producing[p] ∋ t`` for some ``p ∈ D`` there is a ``q ∈ D`` with
    ``t ∈ repairing-domain`` — concretely: every *violated* transition
    (touches ``D`` on the constrained side, does not touch it on the
    repairing side) is repaired by adding one of ``repairing[t]``.
    Instantiated with producers/presets it enumerates siphons; with the
    roles dualized, traps.
    """
    found: list[frozenset[int]] = []
    capped = False

    # ``producing[p]`` are the transitions constrained by p's membership;
    # ``repairing[t]`` are the places whose presence satisfies t.
    def violated(include: frozenset[int]) -> int | None:
        producers: set[int] = set()
        for p in include:
            producers |= producing[p]
        for t in sorted(producers):
            if not (repairing[t] & include):
                return t
        return None

    def minimal_against(candidate: frozenset[int]) -> bool:
        return not any(existing <= candidate for existing in found)

    def search(include: frozenset[int], excluded: frozenset[int]) -> None:
        nonlocal capped
        if len(found) >= max_count:
            capped = True
            return
        if len(include) > max_size:
            capped = True
            return
        if not minimal_against(include):
            return
        t = violated(include)
        if t is None:
            found.append(include)
            return
        options = sorted(repairing[t] - include - excluded)
        tried: set[int] = set()
        for p in options:
            search(include | {p}, excluded | frozenset(tried))
            tried.add(p)

    for seed in range(num_places):
        search(frozenset([seed]), frozenset(range(seed)))

    # The search records sets in discovery order; later discoveries can
    # subsume earlier ones (a superset found first from another seed), so
    # filter to the inclusion-minimal ones.
    minimal: list[frozenset[int]] = []
    for candidate in sorted(found, key=len):
        if not any(existing <= candidate for existing in minimal):
            minimal.append(candidate)
    minimal.sort(key=lambda s: (len(s), sorted(s)))
    return SiphonAnalysis(siphons=tuple(minimal), capped=capped)


def minimal_siphons(
    net: PetriNet,
    *,
    max_size: int = DEFAULT_MAX_SIZE,
    max_count: int = DEFAULT_MAX_COUNT,
) -> SiphonAnalysis:
    """Enumerate minimal siphons (``•D ⊆ D•``), capped and flagged.

    A violated transition produces into the candidate without consuming
    from it; it is repaired by adding one of its input places.
    """
    return _enumerate_refinement(
        num_places=net.num_places,
        producing=net.pre_transitions,  # •p per place: producers into D
        repairing=net.pre_places,  # •t: adding an input place repairs t
        max_size=max_size,
        max_count=max_count,
    )


def minimal_traps(
    net: PetriNet,
    *,
    max_size: int = DEFAULT_MAX_SIZE,
    max_count: int = DEFAULT_MAX_COUNT,
) -> SiphonAnalysis:
    """Enumerate minimal traps (``Q• ⊆ •Q``) — the dual enumeration."""
    return _enumerate_refinement(
        num_places=net.num_places,
        producing=net.post_transitions,  # p• per place: consumers from Q
        repairing=net.post_places,  # t•: adding an output place repairs t
        max_size=max_size,
        max_count=max_count,
    )


def maximal_trap_within(
    net: PetriNet, places: frozenset[int]
) -> frozenset[int]:
    """The largest trap contained in ``places`` (possibly empty).

    Iteratively removes any place with a consumer producing nothing back
    into the remaining set; the fixpoint is the unique maximal trap.
    """
    remaining = set(places)
    changed = True
    while changed:
        changed = False
        for p in sorted(remaining):
            for t in net.post_transitions[p]:
                if not (net.post_places[t] & remaining):
                    remaining.discard(p)
                    changed = True
                    break
    return frozenset(remaining)


def deadlock_freedom_precheck(
    net: PetriNet, analysis: SiphonAnalysis | None = None
) -> str:
    """``"deadlock-free"`` when the siphon–trap condition closes the case.

    Returns ``"deadlock-free"`` only when it is a theorem that no
    reachable marking is dead: every minimal siphon of a complete
    enumeration contains an initially marked trap (or some transition has
    an empty preset and is permanently enabled).  Everything else —
    including a capped enumeration — is ``"unknown"``; this check never
    claims the *presence* of a deadlock.
    """
    if net.num_transitions == 0:
        # No transitions: the initial marking itself is dead.
        return "unknown"
    if any(not pre for pre in net.pre_places):
        return "deadlock-free"  # a source transition is always enabled
    if analysis is None:
        analysis = minimal_siphons(net)
    if analysis.capped:
        return "unknown"
    for siphon in analysis.siphons:
        trap = maximal_trap_within(net, siphon)
        if not (trap & net.initial_marking):
            return "unknown"
    return "deadlock-free"
