"""Memoized facade over the structural analyses.

One :class:`StaticAnalysis` instance per net, reachable through the cached
:meth:`repro.net.petrinet.PetriNet.static_analysis` accessor.  Every field
is computed lazily and exactly once, purely from the incidence structure
and the initial marking — **zero states are ever explored** by anything in
this module.  The analyzers consult :attr:`safety_certificate` before
exploring; the CLI's ``gpo lint`` renders the full picture.
"""

from __future__ import annotations

from fractions import Fraction

from repro.net.petrinet import PetriNet
from repro.static.classify import classify, mcs_consistency
from repro.static.invariants import (
    InvariantBasis,
    p_invariants,
    t_invariants,
)
from repro.static.matrix import IncidenceMatrix, incidence
from repro.static.safety import SafetyCertificate, certify_safety
from repro.static.siphons import (
    SiphonAnalysis,
    deadlock_freedom_precheck,
    maximal_trap_within,
    minimal_siphons,
    minimal_traps,
)

__all__ = ["StaticAnalysis"]


class StaticAnalysis:
    """Lazily computed structural facts about one net.

    Obtain via ``net.static_analysis()`` (cached on the net, excluded
    from pickles so worker processes recompute locally instead of
    shipping fraction matrices around).
    """

    __slots__ = (
        "net",
        "_incidence",
        "_p_invariants",
        "_t_invariants",
        "_siphons",
        "_traps",
        "_certificate",
        "_net_class",
        "_deadlock_freedom",
    )

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self._incidence: IncidenceMatrix | None = None
        self._p_invariants: InvariantBasis | None = None
        self._t_invariants: InvariantBasis | None = None
        self._siphons: SiphonAnalysis | None = None
        self._traps: SiphonAnalysis | None = None
        self._certificate: SafetyCertificate | None = None
        self._net_class: str | None = None
        self._deadlock_freedom: str | None = None

    # ------------------------------------------------------------------
    @property
    def incidence(self) -> IncidenceMatrix:
        """The exact incidence matrix ``C = C⁺ − C⁻``."""
        if self._incidence is None:
            self._incidence = incidence(self.net)
        return self._incidence

    @property
    def p_invariants(self) -> InvariantBasis:
        """Minimal-support non-negative P-invariant basis (exact)."""
        if self._p_invariants is None:
            self._p_invariants = p_invariants(self.net, matrix=self.incidence)
        return self._p_invariants

    @property
    def t_invariants(self) -> InvariantBasis:
        """Minimal-support non-negative T-invariant basis (exact)."""
        if self._t_invariants is None:
            self._t_invariants = t_invariants(self.net, matrix=self.incidence)
        return self._t_invariants

    @property
    def siphons(self) -> SiphonAnalysis:
        """Minimal siphons (capped enumeration, flag on the result)."""
        if self._siphons is None:
            self._siphons = minimal_siphons(self.net)
        return self._siphons

    @property
    def traps(self) -> SiphonAnalysis:
        """Minimal traps (capped enumeration, flag on the result)."""
        if self._traps is None:
            self._traps = minimal_traps(self.net)
        return self._traps

    @property
    def safety_certificate(self) -> SafetyCertificate:
        """Structural 1-safeness certificate (may be a failed one)."""
        if self._certificate is None:
            self._certificate = certify_safety(
                self.net, basis=self.p_invariants
            )
        return self._certificate

    @property
    def net_class(self) -> str:
        """Most specific structural class of the net."""
        if self._net_class is None:
            self._net_class = classify(self.net)
        return self._net_class

    # ------------------------------------------------------------------
    def deadlock_freedom(self) -> str:
        """Siphon–trap pre-check: ``"deadlock-free"`` or ``"unknown"``."""
        if self._deadlock_freedom is None:
            self._deadlock_freedom = deadlock_freedom_precheck(
                self.net, self.siphons
            )
        return self._deadlock_freedom

    def place_bound(self, place: int) -> int | None:
        """Best invariant-derived structural token bound of one place."""
        return self.safety_certificate.bounds.get(place)

    def conserved_value(self, index: int) -> Fraction:
        """Initial value ``y·m0`` of the ``index``-th P-invariant."""
        return self.p_invariants.invariants[index].value(
            self.net.initial_marking
        )

    def unmarked_siphons(self) -> list[frozenset[int]]:
        """Minimal siphons without an initially marked trap inside.

        These are the structures that *could* eventually empty and cause
        a dead marking — the places to look at first when debugging a
        deadlock the dynamic analyzers report.
        """
        out: list[frozenset[int]] = []
        for siphon in self.siphons.siphons:
            trap = maximal_trap_within(self.net, siphon)
            if not (trap & self.net.initial_marking):
                out.append(siphon)
        return out

    def mcs_issues(self) -> list[str]:
        """Cross-check of the MCS machinery (empty = consistent)."""
        return mcs_consistency(self.net)
