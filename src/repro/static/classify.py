"""Structural net classification and MCS sanity checking.

The classical syntactic hierarchy, most specific first:

* **state machine** — ``|•t| = |t•| = 1`` for every transition: no
  concurrency, all conflict;
* **marked graph** — ``|•p| = |p•| = 1`` for every place: no conflict,
  all concurrency;
* **free choice** — ``p ∈ •t`` and ``|p•| > 1`` imply ``•t = {p}``:
  whenever there is a choice, it is a *free* one (no other place can veto
  a branch);
* **extended free choice** — ``•t ∩ •u ≠ ∅`` implies ``•t = •u``;
* **asymmetric choice** — ``p• ∩ q• ≠ ∅`` implies ``p• ⊆ q•`` or
  ``q• ⊆ p•``;
* **general** — anything else.

The classification doubles as a cross-check of the conflict machinery in
:mod:`repro.net.structure`: in an (extended) free-choice net the conflict
relation of Definition 2.2 is an equivalence, so every maximal conflict
set must be a set of transitions with pairwise-equal presets.
:func:`mcs_consistency` asserts exactly that and returns human-readable
discrepancies (always empty unless the MCS machinery is broken).
"""

from __future__ import annotations

from repro.net.petrinet import PetriNet
from repro.net.structure import StructuralInfo

__all__ = ["classify", "classification_chain", "mcs_consistency"]


def _is_state_machine(net: PetriNet) -> bool:
    return all(
        len(net.pre_places[t]) == 1 and len(net.post_places[t]) == 1
        for t in range(net.num_transitions)
    )


def _is_marked_graph(net: PetriNet) -> bool:
    return all(
        len(net.pre_transitions[p]) == 1 and len(net.post_transitions[p]) == 1
        for p in range(net.num_places)
    )


def _is_free_choice(net: PetriNet) -> bool:
    for p in range(net.num_places):
        consumers = net.post_transitions[p]
        if len(consumers) <= 1:
            continue
        if any(net.pre_places[t] != frozenset([p]) for t in consumers):
            return False
    return True


def _is_extended_free_choice(net: PetriNet) -> bool:
    for t in range(net.num_transitions):
        for u in range(t + 1, net.num_transitions):
            if net.pre_places[t] & net.pre_places[u]:
                if net.pre_places[t] != net.pre_places[u]:
                    return False
    return True


def _is_asymmetric_choice(net: PetriNet) -> bool:
    for p in range(net.num_places):
        for q in range(p + 1, net.num_places):
            consumers_p = net.post_transitions[p]
            consumers_q = net.post_transitions[q]
            if consumers_p & consumers_q:
                if not (
                    consumers_p <= consumers_q or consumers_q <= consumers_p
                ):
                    return False
    return True


def classification_chain(net: PetriNet) -> list[str]:
    """Every class of the hierarchy the net belongs to, specific first."""
    chain: list[str] = []
    if _is_state_machine(net):
        chain.append("state-machine")
    if _is_marked_graph(net):
        chain.append("marked-graph")
    if _is_free_choice(net):
        chain.append("free-choice")
    if _is_extended_free_choice(net):
        chain.append("extended-free-choice")
    if _is_asymmetric_choice(net):
        chain.append("asymmetric-choice")
    chain.append("general")
    return chain


def classify(net: PetriNet) -> str:
    """The most specific structural class of ``net``."""
    return classification_chain(net)[0]


def mcs_consistency(
    net: PetriNet, info: StructuralInfo | None = None
) -> list[str]:
    """Cross-check the MCS machinery against the classification.

    In an extended-free-choice net conflict is an equivalence relation
    (``•t ∩ •u ≠ ∅ ⟹ •t = •u``), so each maximal conflict set computed by
    :mod:`repro.net.structure` must consist of transitions with identical
    presets.  Independently of the class, singleton MCSs must be exactly
    the transitions with no distinct conflicter.  Returns discrepancy
    strings (empty = consistent).
    """
    if info is None:
        info = StructuralInfo(net)
    issues: list[str] = []
    if _is_extended_free_choice(net):
        for component in info.mcs_list:
            presets = {net.pre_places[t] for t in component}
            if len(presets) > 1:
                names = ", ".join(
                    net.transitions[t] for t in sorted(component)
                )
                issues.append(
                    f"extended-free-choice net has an MCS with unequal "
                    f"presets: {{{names}}}"
                )
    for t in range(net.num_transitions):
        lonely = not info.conflicters(t)
        singleton = len(info.mcs(t)) == 1
        if lonely != singleton:
            issues.append(
                f"transition {net.transitions[t]!r}: conflict-free={lonely} "
                f"but |MCS|={len(info.mcs(t))}"
            )
    return issues
