"""Immutable safe Petri nets and a mutable builder.

This module implements Definition 2.1 of the paper: a Petri net is a tuple
``(P, T, F, m0)`` with places ``P``, transitions ``T``, flow relation
``F ⊆ (P×T) ∪ (T×P)`` and initial marking ``m0``.  Only *safe* (1-bounded)
nets are supported, so markings are represented as frozen sets of place
indices rather than multisets.

Places and transitions carry string names at the API surface; internally
every node is an integer index so that hot loops (enabling tests, firing,
conflict queries) work on small ints and frozensets of ints.

Example
-------
>>> from repro.net import NetBuilder
>>> b = NetBuilder("demo")
>>> b.place("p0", marked=True)
'p0'
>>> b.place("p1")
'p1'
>>> b.transition("t", inputs=["p0"], outputs=["p1"])
't'
>>> net = b.build()
>>> sorted(net.transitions)
['t']
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:
    from repro.net.kernel import MarkingKernel
    from repro.static.analysis import StaticAnalysis

from repro.net.exceptions import (
    DuplicateNodeError,
    NetStructureError,
    NotEnabledError,
    UnknownNodeError,
    UnsafeNetError,
)

__all__ = ["PetriNet", "NetBuilder", "Marking"]

#: A marking of a safe net: the set of marked place indices.
Marking = frozenset


class PetriNet:
    """An immutable safe Petri net ``(P, T, F, m0)``.

    Instances should be created through :class:`NetBuilder` (or the parsers
    in :mod:`repro.net.parser` / :mod:`repro.net.pnml`), which validate the
    structure; the constructor here trusts its inputs.

    Attributes
    ----------
    name:
        Human-readable net name (used in reports and DOT output).
    places / transitions:
        Tuples of node names; the position of a name is its index.
    pre_places / post_places:
        Per transition index, the frozenset of input / output place indices
        (the paper's ``•t`` and ``t•``).
    pre_transitions / post_transitions:
        Per place index, the frozenset of input / output transition indices
        (``•p`` and ``p•``).
    initial_marking:
        Frozen set of initially marked place indices (``m0``).
    """

    __slots__ = (
        "name",
        "places",
        "transitions",
        "place_index",
        "transition_index",
        "pre_places",
        "post_places",
        "pre_transitions",
        "post_transitions",
        "initial_marking",
        "_hash",
        "_canonical_hash",
        "_static",
        "_kernel",
        "_num_arcs",
        "_reductions",
    )

    def __init__(
        self,
        name: str,
        places: Sequence[str],
        transitions: Sequence[str],
        pre_places: Sequence[frozenset[int]],
        post_places: Sequence[frozenset[int]],
        initial_marking: Iterable[int],
    ) -> None:
        self.name = name
        self.places: tuple[str, ...] = tuple(places)
        self.transitions: tuple[str, ...] = tuple(transitions)
        self.place_index: Mapping[str, int] = {
            p: i for i, p in enumerate(self.places)
        }
        self.transition_index: Mapping[str, int] = {
            t: i for i, t in enumerate(self.transitions)
        }
        self.pre_places: tuple[frozenset[int], ...] = tuple(pre_places)
        self.post_places: tuple[frozenset[int], ...] = tuple(post_places)

        pre_trans: list[set[int]] = [set() for _ in self.places]
        post_trans: list[set[int]] = [set() for _ in self.places]
        for t, inputs in enumerate(self.pre_places):
            for p in inputs:
                post_trans[p].add(t)  # t consumes from p, so t ∈ p•
        for t, outputs in enumerate(self.post_places):
            for p in outputs:
                pre_trans[p].add(t)  # t produces into p, so t ∈ •p
        self.pre_transitions: tuple[frozenset[int], ...] = tuple(
            frozenset(s) for s in pre_trans
        )
        self.post_transitions: tuple[frozenset[int], ...] = tuple(
            frozenset(s) for s in post_trans
        )
        self.initial_marking: Marking = frozenset(initial_marking)
        self._hash: int | None = None
        self._canonical_hash: str | None = None
        self._static: object | None = None
        self._kernel: object | None = None
        self._num_arcs: int | None = None
        self._reductions: dict[object, object] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_places(self) -> int:
        """Number of places ``|P|``."""
        return len(self.places)

    @property
    def num_transitions(self) -> int:
        """Number of transitions ``|T|``."""
        return len(self.transitions)

    @property
    def num_arcs(self) -> int:
        """Number of arcs ``|F|`` (computed once, then cached)."""
        if self._num_arcs is None:
            self._num_arcs = sum(len(s) for s in self.pre_places) + sum(
                len(s) for s in self.post_places
            )
        return self._num_arcs

    def place_id(self, name: str) -> int:
        """Return the index of place ``name`` (raises ``UnknownNodeError``)."""
        try:
            return self.place_index[name]
        except KeyError:
            raise UnknownNodeError("place", name) from None

    def transition_id(self, name: str) -> int:
        """Return the index of transition ``name``."""
        try:
            return self.transition_index[name]
        except KeyError:
            raise UnknownNodeError("transition", name) from None

    def place_name(self, index: int) -> str:
        """Return the name of the place with the given index."""
        return self.places[index]

    def transition_name(self, index: int) -> str:
        """Return the name of the transition with the given index."""
        return self.transitions[index]

    def arcs(self) -> Iterator[tuple[str, str]]:
        """Iterate over all arcs as ``(source_name, target_name)`` pairs."""
        for t, inputs in enumerate(self.pre_places):
            for p in sorted(inputs):
                yield (self.places[p], self.transitions[t])
        for t, outputs in enumerate(self.post_places):
            for p in sorted(outputs):
                yield (self.transitions[t], self.places[p])

    # ------------------------------------------------------------------
    # Dynamics (Definitions 2.3 and 2.4 of the paper)
    # ------------------------------------------------------------------
    def is_enabled(self, transition: int, marking: Marking) -> bool:
        """Enabling rule (Def. 2.3): every input place holds a token."""
        return self.pre_places[transition] <= marking

    def enabled_transitions(self, marking: Marking) -> list[int]:
        """All transitions enabled in ``marking``, in index order.

        This is the *reference implementation* of the enabling scan,
        kept deliberately close to Def. 2.3.  The hot exploration paths
        use the precompiled bitmask form in
        :class:`repro.net.kernel.MarkingKernel`; ``gpo check --no-kernel``
        and the differential test-suite route through this one so the
        slow path stays exercised and debuggable.
        """
        return [
            t
            for t in range(len(self.transitions))
            if self.pre_places[t] <= marking
        ]

    def _fire_enabled(self, transition: int, marking: Marking) -> Marking:
        """Firing for a transition already known enabled (1-safety checked)."""
        pre = self.pre_places[transition]
        post = self.post_places[transition]
        after_consume = marking - pre
        conflict_places = after_consume & post
        if conflict_places:
            place = self.places[min(conflict_places)]
            raise UnsafeNetError(self.transitions[transition], place)
        return after_consume | post

    def fire(self, transition: int, marking: Marking) -> Marking:
        """Firing rule (Def. 2.4) for safe nets — reference implementation.

        Removes a token from every input place and adds one to every output
        place.  Raises :class:`NotEnabledError` when the transition is not
        enabled and :class:`UnsafeNetError` when firing would put a second
        token into a marked place (self-loop places ``p ∈ •t ∩ t•`` keep
        their token and are fine).  The bitmask fast path is
        :meth:`repro.net.kernel.MarkingKernel.fire`.
        """
        if not self.pre_places[transition] <= marking:
            raise NotEnabledError(self.transitions[transition])
        return self._fire_enabled(transition, marking)

    def successors(self, marking: Marking) -> list[tuple[int, Marking]]:
        """All ``(transition, next_marking)`` pairs reachable in one step.

        Fires inline from the already-computed enabled list — the
        enabling test runs once per transition, not again inside the
        firing (``fire`` keeps the check for the public API).
        """
        out = []
        for t in self.enabled_transitions(marking):
            out.append((t, self._fire_enabled(t, marking)))
        return out

    def is_deadlocked(self, marking: Marking) -> bool:
        """True when no transition is enabled in ``marking``.

        Reference implementation; the exploration layer uses the
        kernel's ``enabled_mask == 0`` check instead.
        """
        return not any(
            self.pre_places[t] <= marking
            for t in range(len(self.transitions))
        )

    # ------------------------------------------------------------------
    # Name-based convenience wrappers (for examples and tests)
    # ------------------------------------------------------------------
    def marking_from_names(self, names: Iterable[str]) -> Marking:
        """Build a marking from place names."""
        return frozenset(self.place_id(n) for n in names)

    def marking_names(self, marking: Marking) -> frozenset[str]:
        """Render a marking as a frozenset of place names."""
        return frozenset(self.places[p] for p in marking)

    def fire_by_name(self, transition: str, marking: Marking) -> Marking:
        """Fire a transition given by name."""
        return self.fire(self.transition_id(transition), marking)

    # ------------------------------------------------------------------
    # Canonical structural identity
    # ------------------------------------------------------------------
    def canonical_form(self) -> str:
        """Stable structural serialization, independent of declaration order.

        Places are listed sorted by name, transitions sorted by name with
        their pre/post place names sorted, and the initial marking sorted —
        so two nets that differ only in the order places/transitions were
        declared produce the same text.  The net's ``name`` is *not* part
        of the form: it identifies structure, not labeling.
        """
        lines = ["places " + ",".join(sorted(self.places))]
        lines.append(
            "marked "
            + ",".join(sorted(self.places[p] for p in self.initial_marking))
        )
        transitions = []
        for t, name in enumerate(self.transitions):
            inputs = ",".join(
                sorted(self.places[p] for p in self.pre_places[t])
            )
            outputs = ",".join(
                sorted(self.places[p] for p in self.post_places[t])
            )
            transitions.append(f"trans {name} {inputs} -> {outputs}")
        lines.extend(sorted(transitions))
        return "\n".join(lines)

    def canonical_hash(self) -> str:
        """SHA-256 of :meth:`canonical_form` (hex digest, cached).

        This is the structural identity used by the result cache in
        :mod:`repro.engine.cache`: equal hashes mean the nets have the same
        named structure regardless of declaration order.
        """
        if self._canonical_hash is None:
            form = self.canonical_form().encode("utf-8")
            self._canonical_hash = hashlib.sha256(form).hexdigest()
        return self._canonical_hash

    # ------------------------------------------------------------------
    # Structural static analysis
    # ------------------------------------------------------------------
    def static_analysis(self) -> "StaticAnalysis":
        """The cached :class:`repro.static.analysis.StaticAnalysis` facade.

        Imported lazily to keep ``repro.net`` free of a dependency on the
        analysis layer; the instance itself computes everything lazily, so
        calling this is cheap until a specific fact is requested.
        """
        if self._static is None:
            from repro.static.analysis import StaticAnalysis

            self._static = StaticAnalysis(self)
        return self._static  # type: ignore[return-value]

    def kernel(self) -> "MarkingKernel":
        """The cached compiled :class:`repro.net.kernel.MarkingKernel`.

        Built on first use (one pass over the structure) and shared by
        every explorer running on this net; imported lazily so the
        reference dynamics above stay importable on their own.
        """
        if self._kernel is None:
            from repro.net.kernel import MarkingKernel

            self._kernel = MarkingKernel(self)
        return self._kernel  # type: ignore[return-value]

    def __getstate__(self) -> dict[str, object]:
        # Worker processes receive pickled nets; the static-analysis,
        # kernel and reduction caches (back-reference cycles) are
        # recomputable and deliberately not shipped.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_static", "_kernel", "_reductions")
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._static = None
        self._kernel = None
        self._reductions = None

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PetriNet):
            return NotImplemented
        return (
            self.places == other.places
            and self.transitions == other.transitions
            and self.pre_places == other.pre_places
            and self.post_places == other.post_places
            and self.initial_marking == other.initial_marking
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self.places,
                    self.transitions,
                    self.pre_places,
                    self.post_places,
                    self.initial_marking,
                )
            )
        return self._hash

    def __repr__(self) -> str:
        return (
            f"PetriNet({self.name!r}, |P|={self.num_places}, "
            f"|T|={self.num_transitions}, |F|={self.num_arcs})"
        )


class NetBuilder:
    """Mutable builder producing validated :class:`PetriNet` instances.

    The builder accepts nodes and arcs in any order; :meth:`build` validates
    the accumulated structure (no dangling arc endpoints, no transitions
    without input places unless explicitly allowed) and freezes it.

    >>> b = NetBuilder("n")
    >>> b.place("p", marked=True)
    'p'
    >>> b.transition("t", inputs=["p"], outputs=[])
    't'
    >>> b.build().num_transitions
    1
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: list[str] = []
        self._place_set: dict[str, int] = {}
        self._transitions: list[str] = []
        self._transition_set: dict[str, int] = {}
        self._pre: list[set[int]] = []
        self._post: list[set[int]] = []
        self._marked: set[int] = set()

    # ------------------------------------------------------------------
    def place(self, name: str, *, marked: bool = False) -> str:
        """Declare a place; returns the name for chaining convenience."""
        if name in self._place_set:
            raise DuplicateNodeError("place", name)
        if name in self._transition_set:
            raise DuplicateNodeError("node", name)
        index = len(self._places)
        self._places.append(name)
        self._place_set[name] = index
        if marked:
            self._marked.add(index)
        return name

    def places(self, *names: str, marked: bool = False) -> list[str]:
        """Declare several places at once."""
        return [self.place(n, marked=marked) for n in names]

    def mark(self, name: str) -> None:
        """Put the initial token into an already declared place."""
        if name not in self._place_set:
            raise UnknownNodeError("place", name)
        self._marked.add(self._place_set[name])

    def transition(
        self,
        name: str,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
    ) -> str:
        """Declare a transition with input and output places by name.

        Places mentioned in ``inputs``/``outputs`` must already exist; this
        keeps typos from silently creating nodes.
        """
        if name in self._transition_set:
            raise DuplicateNodeError("transition", name)
        if name in self._place_set:
            raise DuplicateNodeError("node", name)
        index = len(self._transitions)
        self._transitions.append(name)
        self._transition_set[name] = index
        self._pre.append(set())
        self._post.append(set())
        for p in inputs:
            self.arc(p, name)
        for p in outputs:
            self.arc(name, p)
        return name

    def arc(self, source: str, target: str) -> None:
        """Add an arc; one endpoint must be a place, the other a transition."""
        if source in self._place_set and target in self._transition_set:
            self._pre[self._transition_set[target]].add(
                self._place_set[source]
            )
        elif source in self._transition_set and target in self._place_set:
            self._post[self._transition_set[source]].add(
                self._place_set[target]
            )
        elif source in self._place_set and target in self._place_set:
            raise NetStructureError(
                f"arc {source!r} -> {target!r} connects two places"
            )
        elif source in self._transition_set and target in self._transition_set:
            raise NetStructureError(
                f"arc {source!r} -> {target!r} connects two transitions"
            )
        else:
            # Some endpoint was never declared; report the first one.
            for endpoint in (source, target):
                if (
                    endpoint not in self._place_set
                    and endpoint not in self._transition_set
                ):
                    raise UnknownNodeError("node", endpoint)
            raise AssertionError("unreachable: both endpoints exist")

    # ------------------------------------------------------------------
    def build(self, *, allow_source_transitions: bool = False) -> PetriNet:
        """Validate and freeze the net.

        A transition with an empty preset is permanently enabled and makes
        the net unbounded under Def. 2.4; it is rejected unless
        ``allow_source_transitions`` is set (useful for structural tests).
        """
        if not allow_source_transitions:
            for t, pre in enumerate(self._pre):
                if not pre:
                    raise NetStructureError(
                        f"transition {self._transitions[t]!r} has no input "
                        "places (net would be unbounded); pass "
                        "allow_source_transitions=True to permit it"
                    )
        return PetriNet(
            self.name,
            self._places,
            self._transitions,
            [frozenset(s) for s in self._pre],
            [frozenset(s) for s in self._post],
            self._marked,
        )
