"""Compiled bitmask marking kernel for safe nets.

The frozenset firing rules in :mod:`repro.net.petrinet` are the *reference
implementation*: readable, directly checked against the paper's
definitions, and kept as the debuggable slow path.  This module is the
fast path every explicit explorer runs on: a :class:`MarkingKernel` is
built once per net and packs a safe-net marking into a single Python
``int`` — bit ``p`` set iff place ``p`` holds its token — with
per-transition masks precompiled so the hot loop is pure integer algebra:

* **enabling** (Def. 2.3) — ``m & pre_mask[t] == pre_mask[t]``;
* **firing** (Def. 2.4) — ``(m & clear_mask[t]) | post_mask[t]`` with the
  1-safety violation check ``m & clear_mask[t] & post_mask[t]`` (a set
  bit is a place that already holds a token and is not consumed by
  ``t`` — exactly the ``(m − •t) ∩ t•`` conflict of the reference rule);
* **successor generation** — one fused pass per marking; the enabling
  test is performed exactly once per transition (the reference
  ``PetriNet.successors`` historically re-checked it inside ``fire``);
* **incremental enabling** — after firing ``t`` only the transitions in
  ``affected[t]`` (those whose preset touches ``•t ∪ t•``) can change
  their enabling status, so a successor's enabled set is derived from its
  predecessor's in O(affected) instead of O(|T|·|preset|) per state.

The packed representation never leaves the exploration layer: explorers
carry ``int`` states internally and convert back to the classical
``frozenset`` :data:`~repro.net.petrinet.Marking` via :meth:`decode` only
at the reachability-graph / witness / report boundary.

Index tables (``pre_index`` / ``post_index`` / ``consumers`` / ...) expose
the same structure as sorted tuples for explorers whose states are not
plain markings (GPN scenario families, timed state classes) but whose
inner loops still iterate presets and postsets per transition.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.net.exceptions import NotEnabledError, UnsafeNetError
from repro.net.petrinet import Marking, PetriNet

__all__ = ["CLOSURE_MEMO_CAP", "MarkingKernel", "iter_bits"]

#: Upper bound on distinct ``(enabled_mask, seed)`` keys the closure
#: memo stores per kernel.  NSDP(8) needs ~56k entries (~10 MB); the cap
#: keeps million-state nets from trading unbounded memory for hits.
CLOSURE_MEMO_CAP = 1 << 18


def iter_bits(mask: int) -> Iterator[int]:
    """Positions of the set bits of ``mask``, in ascending order.

    Ascending order is what makes the kernel path yield transitions in
    index order — the same deterministic order the reference
    ``PetriNet.enabled_transitions`` produces.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class MarkingKernel:
    """Per-net compiled tables for integer-marking exploration.

    Build once via :meth:`PetriNet.kernel` (cached on the net); all tables
    are immutable tuples, so a kernel is safe to share between explorers.

    Attributes
    ----------
    pre_mask / post_mask:
        Per transition, the bitmask of its input / output places
        (``•t`` and ``t•``).
    clear_mask:
        ``~pre_mask[t]``; ``m & clear_mask[t]`` removes the consumed
        tokens (Python's arbitrary-precision AND keeps the result exact
        for any net size).
    self_loop_mask:
        ``pre_mask[t] & post_mask[t]`` — places that keep their token.
    affected:
        Per transition ``t``, the ascending tuple of transitions ``u``
        whose preset intersects ``•t ∪ t•`` — the only transitions whose
        enabling can change when ``t`` fires.
    consumers:
        Per place ``p``, the ascending tuple of transitions consuming
        from ``p`` (``p•`` — the place→consumers index).
    conflicters_mask / producers_mask / scapegoat_plan:
        Precompiled stubborn-set closure tables: per transition the
        conflicter bitmask (D2), per place the producer bitmask (D1) and
        per transition the sorted D1 scapegoat candidate scan.  See
        :meth:`stubborn_closure`.
    pre_index / post_index / pre_not_post_index / post_not_pre_index:
        Sorted index-tuple views of the presets/postsets for explorers
        that iterate them per transition without packing states.
    initial:
        The packed initial marking ``m0``.
    """

    __slots__ = (
        "net",
        "num_places",
        "num_transitions",
        "pre_mask",
        "post_mask",
        "clear_mask",
        "self_loop_mask",
        "affected",
        "_affected_tests",
        "consumers",
        "producers",
        "conflicters_mask",
        "producers_mask",
        "scapegoat_plan",
        "closure_mask",
        "pre_index",
        "post_index",
        "pre_not_post_index",
        "post_not_pre_index",
        "initial",
        "stat_fires",
        "stat_full_scans",
        "stat_incremental",
        "stat_closure_iterations",
        "stat_closure_memo_hits",
        "_closure_memo",
    )

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.num_places: int = net.num_places
        self.num_transitions: int = net.num_transitions
        pre_masks: List[int] = []
        post_masks: List[int] = []
        for t in range(net.num_transitions):
            pre = 0
            for p in net.pre_places[t]:
                pre |= 1 << p
            post = 0
            for p in net.post_places[t]:
                post |= 1 << p
            pre_masks.append(pre)
            post_masks.append(post)
        self.pre_mask: Tuple[int, ...] = tuple(pre_masks)
        self.post_mask: Tuple[int, ...] = tuple(post_masks)
        self.clear_mask: Tuple[int, ...] = tuple(~m for m in pre_masks)
        self.self_loop_mask: Tuple[int, ...] = tuple(
            pre & post for pre, post in zip(pre_masks, post_masks)
        )
        self.affected: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                u
                for u in range(net.num_transitions)
                if pre_masks[u] & (pre_masks[t] | post_masks[t])
            )
            for t in range(net.num_transitions)
        )
        # Hot-loop companion of ``affected``: per affected transition u the
        # triple (pre_mask[u], 1 << u, ~(1 << u)) so the incremental update
        # does no table indexing or shifting per re-test.
        self._affected_tests: Tuple[Tuple[Tuple[int, int, int], ...], ...] = (
            tuple(
                tuple(
                    (pre_masks[u], 1 << u, ~(1 << u))
                    for u in affected_t
                )
                for affected_t in self.affected
            )
        )
        self.consumers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.post_transitions[p]))
            for p in range(net.num_places)
        )
        self.producers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.pre_transitions[p]))
            for p in range(net.num_places)
        )
        # Stubborn-set closure tables (rules D1/D2, see
        # :mod:`repro.stubborn.stubborn`).  ``conflicters_mask[t]`` packs
        # the transitions sharing an input place with ``t`` (minus ``t``
        # itself) — exactly ``StructuralInfo.conflicters(t)`` — so the D2
        # step of the closure is one mask union.  ``producers_mask[p]``
        # packs the producers of place ``p`` for the D1 step.
        consumers_masks: List[int] = []
        producers_masks: List[int] = []
        for p in range(net.num_places):
            cmask = 0
            for u in net.post_transitions[p]:
                cmask |= 1 << u
            consumers_masks.append(cmask)
            pmask = 0
            for u in net.pre_transitions[p]:
                pmask |= 1 << u
            producers_masks.append(pmask)
        conflicter_masks: List[int] = []
        for t in range(net.num_transitions):
            mask = 0
            for p in net.pre_places[t]:
                mask |= consumers_masks[p]
            conflicter_masks.append(mask & ~(1 << t))
        self.conflicters_mask: Tuple[int, ...] = tuple(conflicter_masks)
        self.producers_mask: Tuple[int, ...] = tuple(producers_masks)
        # ``scapegoat_plan[t]`` precompiles the D1 scapegoat scan: the
        # input places of ``t`` as ``(place_bit, producers_mask)`` pairs,
        # stably sorted by producer count with the original ``pre_places``
        # iteration position as tie-break.  The first pair whose place is
        # unmarked is therefore *exactly* the "fewest producers, first
        # seen" scapegoat the reference rule picks — the reduced graph
        # depends on this choice, so the sort must stay stable.
        plans: List[Tuple[Tuple[int, int], ...]] = []
        for t in range(net.num_transitions):
            candidates = sorted(
                (len(net.pre_transitions[p]), position, p)
                for position, p in enumerate(net.pre_places[t])
            )
            plans.append(
                tuple((1 << p, producers_masks[p]) for _, _, p in candidates)
            )
        self.scapegoat_plan: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            plans
        )
        # ``closure_mask[t]`` — the must-include closure of ``{t}`` under
        # the *marking-independent* D2 rule alone (transitive conflicters,
        # including ``t``).  When every member happens to be enabled in
        # the current marking, the dynamic D1/D2 fixpoint from ``t``
        # never leaves this set and equals it exactly, so
        # :meth:`stubborn_closure` answers with one mask comparison.
        closure_masks: List[int] = []
        for t in range(net.num_transitions):
            mask = 1 << t
            work = conflicter_masks[t] & ~mask
            while work:
                low = work & -work
                work ^= low
                mask |= low
                u = low.bit_length() - 1
                work |= conflicter_masks[u] & ~mask
            closure_masks.append(mask)
        self.closure_mask: Tuple[int, ...] = tuple(closure_masks)
        self.pre_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.pre_places[t]))
            for t in range(net.num_transitions)
        )
        self.post_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.post_places[t]))
            for t in range(net.num_transitions)
        )
        self.pre_not_post_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.pre_places[t] - net.post_places[t]))
            for t in range(net.num_transitions)
        )
        self.post_not_pre_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.post_places[t] - net.pre_places[t]))
            for t in range(net.num_transitions)
        )
        self.initial: int = self.encode(net.initial_marking)
        # Successor-pass counters for the observability layer: checked
        # firings, full O(|T|) enabling scans, incremental O(affected)
        # updates.  Plain int increments — the kernel is shared between
        # explorers, so the numbers aggregate per net.
        self.stat_fires: int = 0
        self.stat_full_scans: int = 0
        self.stat_incremental: int = 0
        self.stat_closure_iterations: int = 0
        self.stat_closure_memo_hits: int = 0
        # Replay memo for dynamic closures, keyed by (enabled_mask,
        # seed_bit); see ``stubborn_closure``.  Lazily built like the
        # rest of the kernel's tables and capped so huge nets cannot
        # grow it without bound.
        self._closure_memo: dict[
            Tuple[int, int], List[Tuple[int, int, int]]
        ] = {}

    # ------------------------------------------------------------------
    # Packing boundary
    # ------------------------------------------------------------------
    def encode(self, marking: Marking) -> int:
        """Pack a classical frozenset marking into the int representation."""
        bits = 0
        for p in marking:
            bits |= 1 << p
        return bits

    def decode(self, bits: int) -> Marking:
        """Unpack an int marking back into the classical frozenset form."""
        return frozenset(iter_bits(bits))

    # ------------------------------------------------------------------
    # Dynamics (bitmask forms of Defs. 2.3 / 2.4)
    # ------------------------------------------------------------------
    def is_enabled(self, transition: int, bits: int) -> bool:
        """Enabling rule: all input-place bits set in ``bits``."""
        pre = self.pre_mask[transition]
        return bits & pre == pre

    def enabled_transitions(self, bits: int) -> List[int]:
        """All enabled transitions in index order (full scan)."""
        self.stat_full_scans += 1
        return [
            t
            for t, pre in enumerate(self.pre_mask)
            if bits & pre == pre
        ]

    def enabled_mask(self, bits: int) -> int:
        """The enabled set as a transition bitmask (full scan)."""
        self.stat_full_scans += 1
        mask = 0
        for t, pre in enumerate(self.pre_mask):
            if bits & pre == pre:
                mask |= 1 << t
        return mask

    def update_enabled_mask(self, enabled: int, fired: int, bits: int) -> int:
        """Enabled mask of ``bits``, derived incrementally.

        ``enabled`` is the enabled mask of the *predecessor* marking and
        ``bits`` the marking obtained by firing ``fired`` from it; only
        the transitions in ``affected[fired]`` are re-tested.
        """
        self.stat_incremental += 1
        for pre, bit, notbit in self._affected_tests[fired]:
            if bits & pre == pre:
                enabled |= bit
            else:
                enabled &= notbit
        return enabled

    def is_deadlocked(self, bits: int) -> bool:
        """True when no transition is enabled in ``bits``."""
        return not any(
            bits & pre == pre for pre in self.pre_mask
        )

    def fire(self, transition: int, bits: int) -> int:
        """Checked firing: raises like the reference ``PetriNet.fire``.

        :class:`NotEnabledError` when some input bit is missing;
        :class:`UnsafeNetError` when a surviving token collides with a
        produced one (lowest-index conflict place reported, matching the
        reference path byte for byte).
        """
        pre = self.pre_mask[transition]
        if bits & pre != pre:
            raise NotEnabledError(self.net.transitions[transition])
        self.stat_fires += 1
        cleared = bits & self.clear_mask[transition]
        post = self.post_mask[transition]
        conflict = cleared & post
        if conflict:
            place = (conflict & -conflict).bit_length() - 1
            raise UnsafeNetError(
                self.net.transitions[transition], self.net.places[place]
            )
        return cleared | post

    def fire_enabled(self, transition: int, bits: int) -> int:
        """Firing for a transition already known enabled (1-safety checked)."""
        self.stat_fires += 1
        cleared = bits & self.clear_mask[transition]
        post = self.post_mask[transition]
        conflict = cleared & post
        if conflict:
            place = (conflict & -conflict).bit_length() - 1
            raise UnsafeNetError(
                self.net.transitions[transition], self.net.places[place]
            )
        return cleared | post

    def successors(self, bits: int) -> List[Tuple[int, int]]:
        """All ``(transition, successor)`` pairs in one fused pass.

        The enabling test runs exactly once per transition; no
        intermediate sets are allocated.
        """
        out: List[Tuple[int, int]] = []
        clear_mask = self.clear_mask
        post_mask = self.post_mask
        for t, pre in enumerate(self.pre_mask):
            if bits & pre != pre:
                continue
            cleared = bits & clear_mask[t]
            post = post_mask[t]
            conflict = cleared & post
            if conflict:
                place = (conflict & -conflict).bit_length() - 1
                raise UnsafeNetError(
                    self.net.transitions[t], self.net.places[place]
                )
            out.append((t, cleared | post))
        self.stat_fires += len(out)
        return out

    def stubborn_closure(
        self, bits: int, seed_bit: int, enabled_mask: int | None = None
    ) -> int:
        """Close ``seed_bit`` under rules D1/D2 as a bitmask fixpoint.

        The single stubborn-set closure implementation (both the
        frozenset and packed-marking entry points of
        :mod:`repro.stubborn.stubborn` are thin adapters over it).  The
        closure is a least fixpoint whose *result set* is independent of
        worklist order given the deterministic scapegoat plan, so
        replacing the historical per-transition worklist with mask
        unions keeps the reduced graph byte-identical.

        ``seed_bit`` is ``1 << seed`` for an enabled seed transition;
        the return value is the chosen stubborn set as a transition
        bitmask.  Each transition is processed exactly once, so the
        iteration counter advances by the closure's cardinality.

        ``enabled_mask``, when the caller already knows the full enabled
        set of ``bits``, unlocks the precomputed fast path: whenever the
        fixpoint reaches an enabled transition whose *static*
        must-include closure (conflicters only) is fully enabled, that
        whole closure is absorbed in one mask union — it equals the
        dynamic closure from that transition, because no disabled member
        can pull producers in.  Passing the mask never changes the
        result, only the cost.

        Dynamic closures are additionally memoized per ``(enabled_mask,
        seed_bit)``.  Given the enabled set, ``bits`` influences the
        fixpoint only through the scapegoat scans of disabled members,
        so each memo entry records which places those scans found marked
        and which unmarked; a stored closure is replayed exactly when
        the current marking satisfies both masks (two AND-compares),
        which makes a hit provably identical to recomputation.  The memo
        lives as long as the kernel — repeated analyses of the same net
        (differential runs, best-of-N benchmarks, the portfolio) hit it
        heavily — and stops absorbing new entries at
        ``CLOSURE_MEMO_CAP`` so huge state spaces cannot grow it without
        bound.
        """
        if enabled_mask is not None:
            closure_masks = self.closure_mask
            static = closure_masks[seed_bit.bit_length() - 1]
            if static & enabled_mask == static:
                # Seed's whole static closure enabled: answered with one
                # mask comparison, no worklist at all.
                self.stat_closure_iterations += static.bit_count()
                return static
            memo = self._closure_memo
            key = (enabled_mask, seed_bit)
            entries = memo.get(key)
            if entries is not None:
                for marked, unmarked, closure in entries:
                    if bits & marked == marked and not bits & unmarked:
                        self.stat_closure_memo_hits += 1
                        self.stat_closure_iterations += closure.bit_count()
                        return closure
            conflicters = self.conflicters_mask
            plans = self.scapegoat_plan
            marked_acc = 0
            unmarked_acc = 0
            stubborn = 0
            work = seed_bit
            while work:
                low = work & -work
                work ^= low
                stubborn |= low
                t = low.bit_length() - 1
                if enabled_mask & low:
                    static = closure_masks[t]
                    if static & enabled_mask == static:
                        # Static closure fully enabled: it is exactly
                        # the dynamic closure from t — absorb wholesale
                        # and strike its members from the worklist.
                        stubborn |= static
                        work &= ~static
                    else:
                        # D2: pull in everything that can disable t.
                        work |= conflicters[t] & ~stubborn
                else:
                    # D1: first unmarked place of the precompiled
                    # candidate scan is the fewest-producers scapegoat;
                    # pull in its producers.  Places the scan skips over
                    # were marked, the scapegoat unmarked — together the
                    # replay condition of the memo entry below.
                    for place_bit, producers in plans[t]:
                        if bits & place_bit:
                            marked_acc |= place_bit
                        else:
                            unmarked_acc |= place_bit
                            work |= producers & ~stubborn
                            break
                    else:
                        raise AssertionError(
                            "disabled transition must have an unmarked input"
                        )
            self.stat_closure_iterations += stubborn.bit_count()
            if entries is not None:
                entries.append((marked_acc, unmarked_acc, stubborn))
            elif len(memo) < CLOSURE_MEMO_CAP:
                memo[key] = [(marked_acc, unmarked_acc, stubborn)]
            return stubborn
        pre_mask = self.pre_mask
        conflicters = self.conflicters_mask
        plans = self.scapegoat_plan
        stubborn = 0
        work = seed_bit
        while work:
            low = work & -work
            work ^= low
            stubborn |= low
            t = low.bit_length() - 1
            pre = pre_mask[t]
            if bits & pre == pre:
                # D2: pull in everything that can disable t.
                work |= conflicters[t] & ~stubborn
            else:
                # D1: first unmarked place of the precompiled candidate
                # scan is the fewest-producers scapegoat; pull in its
                # producers.
                for place_bit, producers in plans[t]:
                    if not bits & place_bit:
                        work |= producers & ~stubborn
                        break
                else:
                    raise AssertionError(
                        "disabled transition must have an unmarked input"
                    )
        self.stat_closure_iterations += stubborn.bit_count()
        return stubborn

    def stats(self) -> dict[str, int]:
        """Successor-pass counters (reset-free, aggregated per net)."""
        return {
            "fires": self.stat_fires,
            "full_scans": self.stat_full_scans,
            "incremental_updates": self.stat_incremental,
            "closure_iterations": self.stat_closure_iterations,
        }

    def __repr__(self) -> str:
        return (
            f"MarkingKernel({self.net.name!r}, |P|={self.num_places}, "
            f"|T|={self.num_transitions})"
        )
