"""Compiled bitmask marking kernel for safe nets.

The frozenset firing rules in :mod:`repro.net.petrinet` are the *reference
implementation*: readable, directly checked against the paper's
definitions, and kept as the debuggable slow path.  This module is the
fast path every explicit explorer runs on: a :class:`MarkingKernel` is
built once per net and packs a safe-net marking into a single Python
``int`` — bit ``p`` set iff place ``p`` holds its token — with
per-transition masks precompiled so the hot loop is pure integer algebra:

* **enabling** (Def. 2.3) — ``m & pre_mask[t] == pre_mask[t]``;
* **firing** (Def. 2.4) — ``(m & clear_mask[t]) | post_mask[t]`` with the
  1-safety violation check ``m & clear_mask[t] & post_mask[t]`` (a set
  bit is a place that already holds a token and is not consumed by
  ``t`` — exactly the ``(m − •t) ∩ t•`` conflict of the reference rule);
* **successor generation** — one fused pass per marking; the enabling
  test is performed exactly once per transition (the reference
  ``PetriNet.successors`` historically re-checked it inside ``fire``);
* **incremental enabling** — after firing ``t`` only the transitions in
  ``affected[t]`` (those whose preset touches ``•t ∪ t•``) can change
  their enabling status, so a successor's enabled set is derived from its
  predecessor's in O(affected) instead of O(|T|·|preset|) per state.

The packed representation never leaves the exploration layer: explorers
carry ``int`` states internally and convert back to the classical
``frozenset`` :data:`~repro.net.petrinet.Marking` via :meth:`decode` only
at the reachability-graph / witness / report boundary.

Index tables (``pre_index`` / ``post_index`` / ``consumers`` / ...) expose
the same structure as sorted tuples for explorers whose states are not
plain markings (GPN scenario families, timed state classes) but whose
inner loops still iterate presets and postsets per transition.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.net.exceptions import NotEnabledError, UnsafeNetError
from repro.net.petrinet import Marking, PetriNet

__all__ = ["MarkingKernel", "iter_bits"]


def iter_bits(mask: int) -> Iterator[int]:
    """Positions of the set bits of ``mask``, in ascending order.

    Ascending order is what makes the kernel path yield transitions in
    index order — the same deterministic order the reference
    ``PetriNet.enabled_transitions`` produces.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class MarkingKernel:
    """Per-net compiled tables for integer-marking exploration.

    Build once via :meth:`PetriNet.kernel` (cached on the net); all tables
    are immutable tuples, so a kernel is safe to share between explorers.

    Attributes
    ----------
    pre_mask / post_mask:
        Per transition, the bitmask of its input / output places
        (``•t`` and ``t•``).
    clear_mask:
        ``~pre_mask[t]``; ``m & clear_mask[t]`` removes the consumed
        tokens (Python's arbitrary-precision AND keeps the result exact
        for any net size).
    self_loop_mask:
        ``pre_mask[t] & post_mask[t]`` — places that keep their token.
    affected:
        Per transition ``t``, the ascending tuple of transitions ``u``
        whose preset intersects ``•t ∪ t•`` — the only transitions whose
        enabling can change when ``t`` fires.
    consumers:
        Per place ``p``, the ascending tuple of transitions consuming
        from ``p`` (``p•`` — the place→consumers index).
    pre_index / post_index / pre_not_post_index / post_not_pre_index:
        Sorted index-tuple views of the presets/postsets for explorers
        that iterate them per transition without packing states.
    initial:
        The packed initial marking ``m0``.
    """

    __slots__ = (
        "net",
        "num_places",
        "num_transitions",
        "pre_mask",
        "post_mask",
        "clear_mask",
        "self_loop_mask",
        "affected",
        "_affected_tests",
        "consumers",
        "producers",
        "pre_index",
        "post_index",
        "pre_not_post_index",
        "post_not_pre_index",
        "initial",
        "stat_fires",
        "stat_full_scans",
        "stat_incremental",
    )

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.num_places: int = net.num_places
        self.num_transitions: int = net.num_transitions
        pre_masks: List[int] = []
        post_masks: List[int] = []
        for t in range(net.num_transitions):
            pre = 0
            for p in net.pre_places[t]:
                pre |= 1 << p
            post = 0
            for p in net.post_places[t]:
                post |= 1 << p
            pre_masks.append(pre)
            post_masks.append(post)
        self.pre_mask: Tuple[int, ...] = tuple(pre_masks)
        self.post_mask: Tuple[int, ...] = tuple(post_masks)
        self.clear_mask: Tuple[int, ...] = tuple(~m for m in pre_masks)
        self.self_loop_mask: Tuple[int, ...] = tuple(
            pre & post for pre, post in zip(pre_masks, post_masks)
        )
        self.affected: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                u
                for u in range(net.num_transitions)
                if pre_masks[u] & (pre_masks[t] | post_masks[t])
            )
            for t in range(net.num_transitions)
        )
        # Hot-loop companion of ``affected``: per affected transition u the
        # triple (pre_mask[u], 1 << u, ~(1 << u)) so the incremental update
        # does no table indexing or shifting per re-test.
        self._affected_tests: Tuple[Tuple[Tuple[int, int, int], ...], ...] = (
            tuple(
                tuple(
                    (pre_masks[u], 1 << u, ~(1 << u))
                    for u in affected_t
                )
                for affected_t in self.affected
            )
        )
        self.consumers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.post_transitions[p]))
            for p in range(net.num_places)
        )
        self.producers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.pre_transitions[p]))
            for p in range(net.num_places)
        )
        self.pre_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.pre_places[t]))
            for t in range(net.num_transitions)
        )
        self.post_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.post_places[t]))
            for t in range(net.num_transitions)
        )
        self.pre_not_post_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.pre_places[t] - net.post_places[t]))
            for t in range(net.num_transitions)
        )
        self.post_not_pre_index: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(net.post_places[t] - net.pre_places[t]))
            for t in range(net.num_transitions)
        )
        self.initial: int = self.encode(net.initial_marking)
        # Successor-pass counters for the observability layer: checked
        # firings, full O(|T|) enabling scans, incremental O(affected)
        # updates.  Plain int increments — the kernel is shared between
        # explorers, so the numbers aggregate per net.
        self.stat_fires: int = 0
        self.stat_full_scans: int = 0
        self.stat_incremental: int = 0

    # ------------------------------------------------------------------
    # Packing boundary
    # ------------------------------------------------------------------
    def encode(self, marking: Marking) -> int:
        """Pack a classical frozenset marking into the int representation."""
        bits = 0
        for p in marking:
            bits |= 1 << p
        return bits

    def decode(self, bits: int) -> Marking:
        """Unpack an int marking back into the classical frozenset form."""
        return frozenset(iter_bits(bits))

    # ------------------------------------------------------------------
    # Dynamics (bitmask forms of Defs. 2.3 / 2.4)
    # ------------------------------------------------------------------
    def is_enabled(self, transition: int, bits: int) -> bool:
        """Enabling rule: all input-place bits set in ``bits``."""
        pre = self.pre_mask[transition]
        return bits & pre == pre

    def enabled_transitions(self, bits: int) -> List[int]:
        """All enabled transitions in index order (full scan)."""
        self.stat_full_scans += 1
        return [
            t
            for t, pre in enumerate(self.pre_mask)
            if bits & pre == pre
        ]

    def enabled_mask(self, bits: int) -> int:
        """The enabled set as a transition bitmask (full scan)."""
        self.stat_full_scans += 1
        mask = 0
        for t, pre in enumerate(self.pre_mask):
            if bits & pre == pre:
                mask |= 1 << t
        return mask

    def update_enabled_mask(self, enabled: int, fired: int, bits: int) -> int:
        """Enabled mask of ``bits``, derived incrementally.

        ``enabled`` is the enabled mask of the *predecessor* marking and
        ``bits`` the marking obtained by firing ``fired`` from it; only
        the transitions in ``affected[fired]`` are re-tested.
        """
        self.stat_incremental += 1
        for pre, bit, notbit in self._affected_tests[fired]:
            if bits & pre == pre:
                enabled |= bit
            else:
                enabled &= notbit
        return enabled

    def is_deadlocked(self, bits: int) -> bool:
        """True when no transition is enabled in ``bits``."""
        return not any(
            bits & pre == pre for pre in self.pre_mask
        )

    def fire(self, transition: int, bits: int) -> int:
        """Checked firing: raises like the reference ``PetriNet.fire``.

        :class:`NotEnabledError` when some input bit is missing;
        :class:`UnsafeNetError` when a surviving token collides with a
        produced one (lowest-index conflict place reported, matching the
        reference path byte for byte).
        """
        pre = self.pre_mask[transition]
        if bits & pre != pre:
            raise NotEnabledError(self.net.transitions[transition])
        self.stat_fires += 1
        cleared = bits & self.clear_mask[transition]
        post = self.post_mask[transition]
        conflict = cleared & post
        if conflict:
            place = (conflict & -conflict).bit_length() - 1
            raise UnsafeNetError(
                self.net.transitions[transition], self.net.places[place]
            )
        return cleared | post

    def fire_enabled(self, transition: int, bits: int) -> int:
        """Firing for a transition already known enabled (1-safety checked)."""
        self.stat_fires += 1
        cleared = bits & self.clear_mask[transition]
        post = self.post_mask[transition]
        conflict = cleared & post
        if conflict:
            place = (conflict & -conflict).bit_length() - 1
            raise UnsafeNetError(
                self.net.transitions[transition], self.net.places[place]
            )
        return cleared | post

    def successors(self, bits: int) -> List[Tuple[int, int]]:
        """All ``(transition, successor)`` pairs in one fused pass.

        The enabling test runs exactly once per transition; no
        intermediate sets are allocated.
        """
        out: List[Tuple[int, int]] = []
        clear_mask = self.clear_mask
        post_mask = self.post_mask
        for t, pre in enumerate(self.pre_mask):
            if bits & pre != pre:
                continue
            cleared = bits & clear_mask[t]
            post = post_mask[t]
            conflict = cleared & post
            if conflict:
                place = (conflict & -conflict).bit_length() - 1
                raise UnsafeNetError(
                    self.net.transitions[t], self.net.places[place]
                )
            out.append((t, cleared | post))
        self.stat_fires += len(out)
        return out

    def stats(self) -> dict[str, int]:
        """Successor-pass counters (reset-free, aggregated per net)."""
        return {
            "fires": self.stat_fires,
            "full_scans": self.stat_full_scans,
            "incremental_updates": self.stat_incremental,
        }

    def __repr__(self) -> str:
        return (
            f"MarkingKernel({self.net.name!r}, |P|={self.num_places}, "
            f"|T|={self.num_transitions})"
        )
