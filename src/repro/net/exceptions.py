"""Exception hierarchy for the Petri-net kernel.

All errors raised by :mod:`repro.net` derive from :class:`NetError`, so
callers can catch the whole family with a single ``except`` clause while the
analysis packages (:mod:`repro.analysis`, :mod:`repro.gpo`, ...) re-use the
more specific subclasses where appropriate.
"""

from __future__ import annotations

__all__ = [
    "NetError",
    "NetStructureError",
    "DuplicateNodeError",
    "UnknownNodeError",
    "NotEnabledError",
    "UnsafeNetError",
    "ParseError",
]


class NetError(Exception):
    """Base class for all Petri-net related errors."""


class NetStructureError(NetError):
    """The net structure violates a structural requirement.

    Raised, for instance, when an arc connects two places, two transitions,
    or refers to a node that was never declared.
    """


class DuplicateNodeError(NetStructureError):
    """A place or transition name was declared twice."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(f"duplicate {kind} name: {name!r}")
        self.kind = kind
        self.name = name


class UnknownNodeError(NetStructureError):
    """A place or transition name is not part of the net."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(f"unknown {kind}: {name!r}")
        self.kind = kind
        self.name = name


class NotEnabledError(NetError):
    """An attempt was made to fire a transition that is not enabled."""

    def __init__(self, transition: str) -> None:
        super().__init__(f"transition {transition!r} is not enabled")
        self.transition = transition


class UnsafeNetError(NetError):
    """Firing would place a second token into an already marked place.

    The entire theory of the paper (Defs. 3.1-3.6) is developed for *safe*
    (1-bounded) Petri nets; we surface violations eagerly instead of silently
    collapsing multiset markings into sets.
    """

    def __init__(self, transition: str, place: str) -> None:
        super().__init__(
            f"firing {transition!r} would make place {place!r} unsafe "
            "(more than one token)"
        )
        self.transition = transition
        self.place = place


class ParseError(NetError):
    """A textual net description could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line
