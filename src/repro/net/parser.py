"""Textual net description language: parser and serializer.

The format is line-oriented and intended to be written by hand in examples
and golden-file tests.  Grammar (``#`` starts a comment anywhere):

.. code-block:: text

    net <name>                      # optional header, first line
    place <name> [marked]           # declare a place
    trans <name>                    # declare a transition
    trans <name> : <p> ... -> <p> ...   # declare with presets/postsets
    trans <name> : ... -> ... @ [eft,lft]  # with a firing interval
    arc <src> -> <dst>              # add a flow arc

Firing intervals (``lft`` may be ``inf``) are ignored by :func:`parse_net`
but consumed by :func:`parse_timed_net`, which returns a
:class:`~repro.timed.tpn.TimedPetriNet` (untimed transitions default to
``[0, inf)``).

Example::

    net choice
    place p0 marked
    place p1
    place p2
    trans a : p0 -> p1
    trans b : p0 -> p2

Round-trips through :func:`to_text` / :func:`parse_net` are stable and
covered by tests.
"""

from __future__ import annotations

import io
from typing import TextIO

from repro.net.exceptions import ParseError
from repro.net.petrinet import NetBuilder, PetriNet

__all__ = [
    "parse_net",
    "parse_timed_net",
    "to_text",
    "load_net",
    "save_net",
]


def _tokenize(line: str) -> list[str]:
    """Strip comments and split a line into whitespace-delimited tokens."""
    if "#" in line:
        line = line[: line.index("#")]
    return line.split()


def _split_interval(
    tokens: list[str], lineno: int
) -> tuple[list[str], tuple[int, int | None] | None]:
    """Split a ``trans`` line's tokens at ``@`` and parse the interval."""
    if "@" not in tokens:
        return tokens, None
    at = tokens.index("@")
    spec = "".join(tokens[at + 1 :])
    if not (spec.startswith("[") and spec.endswith("]")):
        raise ParseError("interval must look like [eft,lft]", lineno)
    parts = spec[1:-1].split(",")
    if len(parts) != 2:
        raise ParseError("interval must have two bounds", lineno)
    try:
        eft = int(parts[0])
        lft = None if parts[1].strip() in ("inf", "") else int(parts[1])
    except ValueError as exc:
        raise ParseError(f"invalid interval bound in {spec!r}", lineno) from exc
    return tokens[:at], (eft, lft)


def _parse(
    text: str, default_name: str
) -> tuple[PetriNet, dict[str, tuple[int, int | None]]]:
    """Shared parser core: returns the net plus declared intervals."""
    builder: NetBuilder | None = None
    pending: list[tuple[int, list[str]]] = []
    intervals: dict[str, tuple[int, int | None]] = {}

    lines = text.splitlines()
    for lineno, raw in enumerate(lines, start=1):
        tokens = _tokenize(raw)
        if not tokens:
            continue
        keyword = tokens[0]
        if keyword == "net":
            if builder is not None:
                raise ParseError("duplicate 'net' header", lineno)
            if len(tokens) != 2:
                raise ParseError("'net' expects exactly one name", lineno)
            if pending:
                raise ParseError(
                    "'net' header must come before declarations", lineno
                )
            builder = NetBuilder(tokens[1])
            continue
        pending.append((lineno, tokens))

    if builder is None:
        builder = NetBuilder(default_name)

    # Two passes: declare all places first so 'trans ... : ...' shorthand and
    # 'arc' lines can reference places declared later in the file.
    for lineno, tokens in pending:
        if tokens[0] == "place":
            _parse_place(builder, tokens, lineno)
    for lineno, tokens in pending:
        if tokens[0] == "trans":
            stripped, interval = _split_interval(tokens, lineno)
            _parse_trans(builder, stripped, lineno)
            if interval is not None:
                intervals[stripped[1]] = interval
    for lineno, tokens in pending:
        if tokens[0] == "arc":
            _parse_arc(builder, tokens, lineno)
        elif tokens[0] not in ("place", "trans"):
            raise ParseError(f"unknown keyword {tokens[0]!r}", lineno)

    try:
        return builder.build(), intervals
    except Exception as exc:  # re-raise with parse context
        raise ParseError(str(exc)) from exc


def parse_net(text: str, *, name: str = "net") -> PetriNet:
    """Parse a net description; see the module docstring for the grammar.

    Firing intervals, if present, are accepted and discarded; use
    :func:`parse_timed_net` to keep them.
    """
    net, _ = _parse(text, name)
    return net


def parse_timed_net(text: str, *, name: str = "net"):
    """Parse a net description into a :class:`TimedPetriNet`.

    Transitions without an ``@ [eft,lft]`` annotation default to
    ``[0, inf)``.
    """
    from repro.timed.tpn import TimedPetriNet

    net, declared = _parse(text, name)
    intervals = [
        declared.get(t, (0, None)) for t in net.transitions
    ]
    return TimedPetriNet(net, intervals)


def _parse_place(builder: NetBuilder, tokens: list[str], lineno: int) -> None:
    if len(tokens) < 2 or len(tokens) > 3:
        raise ParseError("'place' expects a name and optional 'marked'", lineno)
    marked = False
    if len(tokens) == 3:
        if tokens[2] != "marked":
            raise ParseError(
                f"expected 'marked', found {tokens[2]!r}", lineno
            )
        marked = True
    try:
        builder.place(tokens[1], marked=marked)
    except Exception as exc:
        raise ParseError(str(exc), lineno) from exc


def _parse_trans(builder: NetBuilder, tokens: list[str], lineno: int) -> None:
    if len(tokens) < 2:
        raise ParseError("'trans' expects a name", lineno)
    name = tokens[1]
    inputs: list[str] = []
    outputs: list[str] = []
    if len(tokens) > 2:
        if tokens[2] != ":":
            raise ParseError("expected ':' after transition name", lineno)
        rest = tokens[3:]
        if "->" not in rest:
            raise ParseError("expected '->' in transition shorthand", lineno)
        split = rest.index("->")
        inputs = rest[:split]
        outputs = rest[split + 1 :]
    try:
        builder.transition(name, inputs=inputs, outputs=outputs)
    except Exception as exc:
        raise ParseError(str(exc), lineno) from exc


def _parse_arc(builder: NetBuilder, tokens: list[str], lineno: int) -> None:
    if len(tokens) != 4 or tokens[2] != "->":
        raise ParseError("'arc' expects '<src> -> <dst>'", lineno)
    try:
        builder.arc(tokens[1], tokens[3])
    except Exception as exc:
        raise ParseError(str(exc), lineno) from exc


def to_text(net: PetriNet) -> str:
    """Serialize a net into the textual format parsed by :func:`parse_net`."""
    out = io.StringIO()
    out.write(f"net {net.name}\n")
    for p, place in enumerate(net.places):
        marked = " marked" if p in net.initial_marking else ""
        out.write(f"place {place}{marked}\n")
    for t, transition in enumerate(net.transitions):
        inputs = " ".join(net.places[p] for p in sorted(net.pre_places[t]))
        outputs = " ".join(net.places[p] for p in sorted(net.post_places[t]))
        out.write(f"trans {transition} : {inputs} -> {outputs}\n")
    return out.getvalue()


def load_net(stream: TextIO | str) -> PetriNet:
    """Load a net from an open text stream or a file path."""
    if isinstance(stream, str):
        with open(stream, "r", encoding="utf-8") as handle:
            return parse_net(handle.read())
    return parse_net(stream.read())


def save_net(net: PetriNet, stream: TextIO | str) -> None:
    """Write a net to an open text stream or a file path."""
    if isinstance(stream, str):
        with open(stream, "w", encoding="utf-8") as handle:
            handle.write(to_text(net))
        return
    stream.write(to_text(net))
