"""Structural sanity checks for nets.

The kernel enforces hard structural constraints at build time; this module
collects *advisory* diagnostics (isolated places, dead transitions by
structure, sources/sinks) plus a bounded-effort dynamic safety check used by
the test-suite and the CLI's ``gpo check`` command.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.exceptions import UnsafeNetError
from repro.net.petrinet import Marking, PetriNet

__all__ = ["Diagnostics", "SafetyCheck", "diagnose", "check_safe"]


@dataclass
class Diagnostics:
    """Collected structural warnings for a net."""

    isolated_places: list[str] = field(default_factory=list)
    sink_transitions: list[str] = field(default_factory=list)
    structurally_dead_transitions: list[str] = field(default_factory=list)
    unmarked_source_places: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no advisory diagnostics were raised."""
        return not (
            self.isolated_places
            or self.sink_transitions
            or self.structurally_dead_transitions
            or self.unmarked_source_places
        )

    def summary(self) -> str:
        """Human-readable multi-line summary (empty string when clean)."""
        lines = []
        if self.isolated_places:
            lines.append(
                "isolated places (no arcs): " + ", ".join(self.isolated_places)
            )
        if self.sink_transitions:
            lines.append(
                "sink transitions (no outputs): "
                + ", ".join(self.sink_transitions)
            )
        if self.structurally_dead_transitions:
            lines.append(
                "transitions with an input place that can never be marked: "
                + ", ".join(self.structurally_dead_transitions)
            )
        if self.unmarked_source_places:
            lines.append(
                "unmarked places with no producers: "
                + ", ".join(self.unmarked_source_places)
            )
        return "\n".join(lines)


def diagnose(net: PetriNet) -> Diagnostics:
    """Run all structural diagnostics on ``net``."""
    diagnostics = Diagnostics()
    for p in range(net.num_places):
        has_arcs = net.pre_transitions[p] or net.post_transitions[p]
        if not has_arcs:
            diagnostics.isolated_places.append(net.places[p])
        if (
            not net.pre_transitions[p]
            and p not in net.initial_marking
            and net.post_transitions[p]
        ):
            diagnostics.unmarked_source_places.append(net.places[p])
    for t in range(net.num_transitions):
        if not net.post_places[t]:
            diagnostics.sink_transitions.append(net.transitions[t])

    # A transition is structurally dead when some input place is unmarked
    # and has no producers: no execution can ever mark it.
    dead_places = {
        p
        for p in range(net.num_places)
        if not net.pre_transitions[p] and p not in net.initial_marking
    }
    for t in range(net.num_transitions):
        if net.pre_places[t] & dead_places:
            diagnostics.structurally_dead_transitions.append(
                net.transitions[t]
            )
    return diagnostics


@dataclass(frozen=True)
class SafetyCheck:
    """Tri-state verdict of the bounded dynamic 1-safety check.

    ``status`` is ``"safe"`` (exhaustive exploration, no violation),
    ``"unsafe"`` (a reachable firing puts two tokens on a place), or
    ``"unknown"`` (the state bound was hit before either conclusion —
    explicitly *not* conflated with "safe").  Truthiness means proven
    safe, so ``assert check_safe(net)`` keeps its historical reading.
    """

    status: str
    states: int
    violation: str | None = None

    def __bool__(self) -> bool:
        return self.status == "safe"


def check_safe(
    net: PetriNet, *, max_states: int = 100_000, use_kernel: bool = True
) -> SafetyCheck:
    """Dynamically check 1-safety by bounded exhaustive exploration.

    Returns a :class:`SafetyCheck`: ``"safe"`` only when the *entire*
    state space was explored within ``max_states`` states without a
    violation, ``"unsafe"`` on the first violating firing, ``"unknown"``
    when the bound was exhausted first.  For a structural (zero-state)
    safety proof see :func:`repro.static.safety.certify_safety`.

    ``use_kernel`` (default) runs the walk on packed integer markings via
    the net's :class:`~repro.net.kernel.MarkingKernel`; ``gpo check
    --no-kernel`` selects the frozenset reference rules instead.  Both
    walks pop and fire in the same order, so they report the same verdict,
    state count and violation.
    """
    if use_kernel:
        return _check_safe_kernel(net, max_states=max_states)
    seen: set[Marking] = {net.initial_marking}
    frontier = [net.initial_marking]
    while frontier:
        if len(seen) > max_states:
            return SafetyCheck(status="unknown", states=len(seen))
        marking = frontier.pop()
        for t in net.enabled_transitions(marking):
            try:
                successor = net.fire(t, marking)
            except UnsafeNetError as exc:
                return SafetyCheck(
                    status="unsafe", states=len(seen), violation=str(exc)
                )
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return SafetyCheck(status="safe", states=len(seen))


def _check_safe_kernel(net: PetriNet, *, max_states: int) -> SafetyCheck:
    """Bitmask twin of the reference walk in :func:`check_safe`.

    Same DFS pop order, same per-marking transition order, same bound
    semantics — only the marking representation differs.
    """
    kernel = net.kernel()
    seen: set[int] = {kernel.initial}
    frontier = [kernel.initial]
    while frontier:
        if len(seen) > max_states:
            return SafetyCheck(status="unknown", states=len(seen))
        bits = frontier.pop()
        # Fire one transition at a time (not the fused kernel.successors)
        # so the states count at an "unsafe" verdict includes successors
        # discovered before the violating firing, like the reference walk.
        for t in kernel.enabled_transitions(bits):
            try:
                successor = kernel.fire_enabled(t, bits)
            except UnsafeNetError as exc:
                return SafetyCheck(
                    status="unsafe", states=len(seen), violation=str(exc)
                )
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return SafetyCheck(status="safe", states=len(seen))
