"""Optional numpy-backed batched marking operations.

The scalar :class:`~repro.net.kernel.MarkingKernel` packs one marking
into one Python ``int`` and pays one interpreter round-trip per state
per transition.  This module lifts the same tables into a uint64
bit-matrix — rows are frontier states, columns are 64-place words — so
a whole BFS level is enabled-checked and fired with **one vectorized op
per transition per level** instead of a Python loop per state:

* **enabling** — ``(rows & pre[t] == pre[t]).all(axis=1)``;
* **firing** — ``(rows[src] & clear[t]) | post[t]``;
* **1-safety** — ``rows[src] & clear[t] & post[t]`` nonzero is exactly
  the scalar kernel's conflict check, surfaced as the same
  :class:`~repro.net.exceptions.UnsafeNetError`.

The semantics are the scalar kernel's, bit for bit: a batched level
produces exactly the successor multiset the scalar loop produces for
the same frontier, so state/edge/deadlock counts are byte-identical.
Only the *grouping* differs (per transition instead of per state) —
callers that need the scalar edge order keep using the scalar kernel.

numpy is an optional extra (``pip install .[fast]``): import this
module freely and check :data:`HAVE_NUMPY` (or catch the
:class:`RuntimeError` from :class:`BatchedKernel`) before constructing;
the scalar path remains the behavioural reference and the fallback.

The module also defines the canonical **shard key** of a packed
marking — a splitmix64 fold over its 64-bit words — in one scalar and
one vectorized form that agree exactly.  The sharded explorer
(:mod:`repro.search.parallel`) routes states by ``state_key % shards``,
so the two forms agreeing is what lets batched and scalar shards
partition the state space identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Sequence, Tuple

from repro.net.exceptions import UnsafeNetError

if TYPE_CHECKING:
    from repro.net.kernel import MarkingKernel

try:  # pragma: no cover - exercised via the [fast] extra matrix leg
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "BatchedKernel",
    "mix64",
    "state_key",
    "words_of",
]

_MASK64 = (1 << 64) - 1
#: splitmix64 increment, doubling as the fold seed.
_SEED = 0x9E3779B97F4A7C15
_MULT1 = 0xBF58476D1CE4E5B9
_MULT2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * _MULT1) & _MASK64
    x = ((x ^ (x >> 27)) * _MULT2) & _MASK64
    return x ^ (x >> 31)


def words_of(num_places: int) -> int:
    """64-bit words needed to hold a packed marking of ``num_places``."""
    return max(1, (num_places + 63) // 64)


def state_key(bits: int, words: int) -> int:
    """Canonical 64-bit key of a packed marking (scalar form).

    A splitmix64 fold over the marking's ``words`` little-endian 64-bit
    words.  :meth:`BatchedKernel.state_keys` is the vectorized twin; the
    differential tests hold the two equal, which is what makes shard
    ownership (``state_key % shards``) independent of whether a shard
    expands with numpy or with the scalar kernel.
    """
    h = _SEED
    for _ in range(words):
        h = mix64(h ^ (bits & _MASK64))
        bits >>= 64
    return h


class BatchedKernel:
    """Vectorized (frontier × word-column) view of a scalar kernel.

    Raises :class:`RuntimeError` when numpy is unavailable — callers
    select the scalar fallback via :data:`HAVE_NUMPY` instead of
    catching it on the hot path.
    """

    def __init__(self, kernel: "MarkingKernel") -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "numpy is not installed; install the [fast] extra or use "
                "the scalar kernel"
            )
        self.kernel = kernel
        self.num_places = kernel.num_places
        self.num_transitions = kernel.num_transitions
        self.words = words_of(kernel.num_places)
        self.pre = self._table(kernel.pre_mask)
        self.post = self._table(kernel.post_mask)
        # ``~pre`` per word: complementing the uint64 word equals the
        # scalar ``clear_mask`` restricted to that word.
        self.clear = ~self.pre

    def _table(self, masks: Sequence[int]) -> Any:
        rows = [self._words(mask) for mask in masks]
        return _np.array(rows, dtype=_np.uint64)

    def _words(self, bits: int) -> List[int]:
        return [
            (bits >> (64 * w)) & _MASK64 for w in range(self.words)
        ]

    # -- marking matrix conversions ------------------------------------
    def encode_rows(self, states: Iterable[int]) -> Any:
        """Pack an iterable of scalar markings into an ``(N, W)`` matrix."""
        rows = [self._words(bits) for bits in states]
        if not rows:
            return _np.empty((0, self.words), dtype=_np.uint64)
        return _np.array(rows, dtype=_np.uint64)

    def decode_rows(self, rows: Any) -> List[int]:
        """Scalar markings of an ``(N, W)`` matrix, row order preserved."""
        out: List[int] = []
        shifts = [64 * w for w in range(self.words)]
        for row in rows.tolist():
            bits = 0
            for word, shift in zip(row, shifts):
                bits |= word << shift
            out.append(bits)
        return out

    # -- vectorized level operations -----------------------------------
    def enabled_any(self, rows: Any) -> Any:
        """Boolean vector: row has at least one enabled transition.

        The batched deadlock test — ``~enabled_any`` rows are exactly
        the states the scalar explorer records as deadlocks.
        """
        n = rows.shape[0]
        out = _np.zeros(n, dtype=bool)
        for t in range(self.num_transitions):
            pre = self.pre[t]
            out |= (rows & pre == pre).all(axis=1)
        return out

    def expand(self, rows: Any) -> Tuple[Any, Any, Any, Any]:
        """One batched successor pass over a frontier matrix.

        Returns ``(srcs, fired, succ, enabled_any)``: for every enabled
        (row, transition) pair — grouped by transition in ascending
        index order, rows ascending within each group — the source row
        index, the fired transition index and the successor marking row,
        plus the per-row any-enabled vector.  ``len(srcs)`` is exactly
        the scalar edge count of the frontier.  Raises
        :class:`UnsafeNetError` (same transition/place attribution as
        the scalar kernel) on a 1-safety violation.
        """
        n = rows.shape[0]
        any_enabled = _np.zeros(n, dtype=bool)
        src_parts: List[Any] = []
        fired_parts: List[Any] = []
        succ_parts: List[Any] = []
        for t in range(self.num_transitions):
            pre = self.pre[t]
            enabled = (rows & pre == pre).all(axis=1)
            srcs = enabled.nonzero()[0]
            if not srcs.size:
                continue
            any_enabled |= enabled
            cleared = rows[srcs] & self.clear[t]
            conflict = cleared & self.post[t]
            if conflict.any():
                self._raise_unsafe(t, conflict)
            src_parts.append(srcs)
            fired_parts.append(_np.full(srcs.shape, t, dtype=_np.int64))
            succ_parts.append(cleared | self.post[t])
        if not src_parts:
            empty = _np.empty(0, dtype=_np.int64)
            return (
                empty,
                empty,
                _np.empty((0, self.words), dtype=_np.uint64),
                any_enabled,
            )
        return (
            _np.concatenate(src_parts),
            _np.concatenate(fired_parts),
            _np.concatenate(succ_parts),
            any_enabled,
        )

    def _raise_unsafe(self, t: int, conflict: Any) -> None:
        net = self.kernel.net
        bad_rows, bad_words = conflict.nonzero()
        word = int(conflict[bad_rows[0], bad_words[0]])
        place = 64 * int(bad_words[0]) + ((word & -word).bit_length() - 1)
        raise UnsafeNetError(net.transitions[t], net.places[place])

    # -- canonical shard keys ------------------------------------------
    def state_keys(self, rows: Any) -> Any:
        """Vectorized :func:`state_key` of every row (uint64 vector)."""
        with _np.errstate(over="ignore"):
            h = _np.full(rows.shape[0], _SEED, dtype=_np.uint64)
            for w in range(self.words):
                h = self._mix64(h ^ rows[:, w])
        return h

    @staticmethod
    def _mix64(x: Any) -> Any:
        x = (x ^ (x >> _np.uint64(30))) * _np.uint64(_MULT1)
        x = (x ^ (x >> _np.uint64(27))) * _np.uint64(_MULT2)
        return x ^ (x >> _np.uint64(31))
