"""Minimal PNML (Petri Net Markup Language) import/export.

Supports the place/transition/arc core of the PNML standard — enough to
exchange the benchmark nets with mainstream tools (LoLA, Tina, ePNK).  Only
1-safe semantics are honoured: initial markings greater than one are
rejected, arc inscriptions other than weight 1 are rejected.

Uses :mod:`xml.etree.ElementTree` from the standard library.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import TextIO

from repro.net.exceptions import ParseError
from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["parse_pnml", "to_pnml", "load_pnml", "save_pnml"]

_PNML_NS = "http://www.pnml.org/version-2009/grammar/pnml"


def _localname(tag: str) -> str:
    """Strip an XML namespace from a tag name."""
    return tag.rsplit("}", 1)[-1]


def _find_text(element: ET.Element, path: str) -> str | None:
    """Find nested ``<path><text>…</text></path>`` ignoring namespaces."""
    for child in element.iter():
        if _localname(child.tag) == path:
            for sub in child.iter():
                if _localname(sub.tag) == "text" and sub.text is not None:
                    return sub.text.strip()
    return None


def parse_pnml(text: str) -> PetriNet:
    """Parse a PNML document into a safe :class:`PetriNet`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"invalid XML: {exc}") from exc

    net_elem = None
    for child in root.iter():
        if _localname(child.tag) == "net":
            net_elem = child
            break
    if net_elem is None:
        raise ParseError("no <net> element found")

    name = _find_text(net_elem, "name") or net_elem.get("id", "pnml_net")
    builder = NetBuilder(name)

    arcs: list[tuple[str, str]] = []
    id_to_name: dict[str, str] = {}
    place_ids: set[str] = set()
    transition_ids: set[str] = set()

    for element in net_elem.iter():
        tag = _localname(element.tag)
        if tag == "place":
            node_id = element.get("id")
            if node_id is None:
                raise ParseError("place without id")
            label = _find_text(element, "name") or node_id
            marking_text = _find_text(element, "initialMarking") or "0"
            try:
                tokens = int(marking_text)
            except ValueError as exc:
                raise ParseError(
                    f"non-integer initial marking on {node_id!r}"
                ) from exc
            if tokens not in (0, 1):
                raise ParseError(
                    f"place {node_id!r} has {tokens} tokens; only safe "
                    "nets are supported"
                )
            unique = _uniquify(label, id_to_name.values())
            builder.place(unique, marked=tokens == 1)
            id_to_name[node_id] = unique
            place_ids.add(node_id)
        elif tag == "transition":
            node_id = element.get("id")
            if node_id is None:
                raise ParseError("transition without id")
            label = _find_text(element, "name") or node_id
            unique = _uniquify(label, id_to_name.values())
            builder.transition(unique)
            id_to_name[node_id] = unique
            transition_ids.add(node_id)
        elif tag == "arc":
            source = element.get("source")
            target = element.get("target")
            if source is None or target is None:
                raise ParseError("arc without source/target")
            weight_text = _find_text(element, "inscription")
            if weight_text is not None and weight_text.strip() not in ("1", ""):
                raise ParseError(
                    f"arc {source!r}->{target!r} has weight {weight_text}; "
                    "only weight-1 arcs are supported"
                )
            arcs.append((source, target))

    for source, target in arcs:
        if source not in id_to_name:
            raise ParseError(f"arc references unknown node {source!r}")
        if target not in id_to_name:
            raise ParseError(f"arc references unknown node {target!r}")
        builder.arc(id_to_name[source], id_to_name[target])

    try:
        return builder.build()
    except Exception as exc:
        raise ParseError(str(exc)) from exc


def _uniquify(label: str, taken) -> str:
    """Disambiguate duplicate PNML labels by suffixing a counter."""
    taken = set(taken)
    if label not in taken:
        return label
    counter = 2
    while f"{label}_{counter}" in taken:
        counter += 1
    return f"{label}_{counter}"


def to_pnml(net: PetriNet) -> str:
    """Serialize a net as a PNML document (P/T net type)."""
    root = ET.Element("pnml", {"xmlns": _PNML_NS})
    net_elem = ET.SubElement(
        root,
        "net",
        {
            "id": net.name,
            "type": "http://www.pnml.org/version-2009/grammar/ptnet",
        },
    )
    _append_name(net_elem, net.name)
    page = ET.SubElement(net_elem, "page", {"id": "page0"})

    for p, place in enumerate(net.places):
        elem = ET.SubElement(page, "place", {"id": f"p{p}"})
        _append_name(elem, place)
        if p in net.initial_marking:
            marking = ET.SubElement(elem, "initialMarking")
            ET.SubElement(marking, "text").text = "1"
    for t, transition in enumerate(net.transitions):
        elem = ET.SubElement(page, "transition", {"id": f"t{t}"})
        _append_name(elem, transition)
    arc_id = 0
    for t in range(net.num_transitions):
        for p in sorted(net.pre_places[t]):
            ET.SubElement(
                page,
                "arc",
                {"id": f"a{arc_id}", "source": f"p{p}", "target": f"t{t}"},
            )
            arc_id += 1
        for p in sorted(net.post_places[t]):
            ET.SubElement(
                page,
                "arc",
                {"id": f"a{arc_id}", "source": f"t{t}", "target": f"p{p}"},
            )
            arc_id += 1

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def _append_name(element: ET.Element, text: str) -> None:
    name = ET.SubElement(element, "name")
    ET.SubElement(name, "text").text = text


def load_pnml(stream: TextIO | str) -> PetriNet:
    """Load PNML from an open stream or file path."""
    if isinstance(stream, str):
        with open(stream, "r", encoding="utf-8") as handle:
            return parse_pnml(handle.read())
    return parse_pnml(stream.read())


def save_pnml(net: PetriNet, stream: TextIO | str) -> None:
    """Write PNML to an open stream or file path."""
    if isinstance(stream, str):
        with open(stream, "w", encoding="utf-8") as handle:
            handle.write(to_pnml(net))
        return
    stream.write(to_pnml(net))
