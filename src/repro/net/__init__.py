"""Safe Petri-net kernel: structures, dynamics, I/O and composition.

This package implements the substrate of the paper's Section 2.1: safe
Petri nets with the classical enabling/firing rules, the conflict relation
and maximal conflict sets, plus the practical machinery (text / PNML
parsers, DOT export, composition operators) a user needs to get their
models into the analyzers.
"""

from repro.net.compose import fuse_places, parallel, prefix, rename
from repro.net.dot import net_to_dot, reachability_to_dot
from repro.net.exceptions import (
    DuplicateNodeError,
    NetError,
    NetStructureError,
    NotEnabledError,
    ParseError,
    UnknownNodeError,
    UnsafeNetError,
)
from repro.net.kernel import MarkingKernel
from repro.net.parser import load_net, parse_net, parse_timed_net, save_net, to_text
from repro.net.petrinet import Marking, NetBuilder, PetriNet
from repro.net.pnml import load_pnml, parse_pnml, save_pnml, to_pnml
from repro.net.structure import (
    StructuralInfo,
    conflict,
    conflict_graph,
    conflict_places,
    maximal_conflict_sets,
)
from repro.net.validation import Diagnostics, SafetyCheck, check_safe, diagnose

__all__ = [
    "PetriNet",
    "NetBuilder",
    "Marking",
    "MarkingKernel",
    "StructuralInfo",
    "conflict",
    "conflict_graph",
    "conflict_places",
    "maximal_conflict_sets",
    "parse_net",
    "parse_timed_net",
    "to_text",
    "load_net",
    "save_net",
    "parse_pnml",
    "to_pnml",
    "load_pnml",
    "save_pnml",
    "net_to_dot",
    "reachability_to_dot",
    "rename",
    "prefix",
    "parallel",
    "fuse_places",
    "diagnose",
    "check_safe",
    "Diagnostics",
    "SafetyCheck",
    "NetError",
    "NetStructureError",
    "DuplicateNodeError",
    "UnknownNodeError",
    "NotEnabledError",
    "UnsafeNetError",
    "ParseError",
]
