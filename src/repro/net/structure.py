"""Structural analysis of safe Petri nets.

Implements the static notions the paper builds on:

* the *conflict* relation of Definition 2.2:
  ``conflict(t, u) ≡ •t ∩ •u ≠ ∅``;
* *maximal conflict(ing) sets* (MCSs), also from Definition 2.2: sets of
  transitions closed under the conflict relation such that no transition
  outside the set conflicts with a member.  These are exactly the connected
  components of the conflict graph;
* *conflict places* — places with more than one output transition, i.e. the
  places that encode choice and cause the second source of state explosion
  the paper attacks;
* independence of transitions (used by the stubborn-set baseline).

All functions are pure and operate on integer node indices.  The
:class:`StructuralInfo` class memoizes the full analysis for a net so the
explorers can query it in O(1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.net.petrinet import PetriNet

__all__ = [
    "conflict",
    "conflict_graph",
    "maximal_conflict_sets",
    "conflict_places",
    "are_independent",
    "StructuralInfo",
]


def conflict(net: PetriNet, t: int, u: int) -> bool:
    """Definition 2.2: two transitions conflict iff they share input places.

    Note that under this definition every transition conflicts with itself
    (``•t ∩ •t = •t ≠ ∅``); callers interested in *distinct* conflicting
    pairs must compare indices themselves.
    """
    return bool(net.pre_places[t] & net.pre_places[u])


def conflict_graph(net: PetriNet) -> list[set[int]]:
    """Adjacency sets of the conflict graph over transition indices.

    Vertices are transitions; there is an (undirected) edge between two
    *distinct* transitions iff they share an input place.  Self-loops are
    omitted.  Built in O(|F| + edges) by bucketing transitions per place.
    """
    adjacency: list[set[int]] = [set() for _ in net.transitions]
    for p in range(net.num_places):
        consumers = sorted(net.post_transitions[p])
        for i, t in enumerate(consumers):
            for u in consumers[i + 1 :]:
                adjacency[t].add(u)
                adjacency[u].add(t)
    return adjacency

def maximal_conflict_sets(net: PetriNet) -> list[frozenset[int]]:
    """Maximal conflict sets: connected components of the conflict graph.

    Definition 2.2 characterizes ``mcs(T)`` as the sets ``T'`` such that no
    transition outside ``T'`` conflicts with a member of ``T'``; the
    inclusion-minimal non-empty such sets are precisely the connected
    components of the conflict graph.  A transition with no conflicts forms
    a singleton MCS.  Components are returned sorted by smallest member so
    the output is deterministic.
    """
    adjacency = conflict_graph(net)
    seen: set[int] = set()
    components: list[frozenset[int]] = []
    for start in range(net.num_transitions):
        if start in seen:
            continue
        stack = [start]
        component: set[int] = set()
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(adjacency[node] - component)
        seen |= component
        components.append(frozenset(component))
    components.sort(key=min)
    return components


def conflict_places(net: PetriNet) -> frozenset[int]:
    """Places with two or more output transitions (the choice places)."""
    return frozenset(
        p
        for p in range(net.num_places)
        if len(net.post_transitions[p]) >= 2
    )


def are_independent(net: PetriNet, t: int, u: int) -> bool:
    """Structural independence test used by partial-order reduction.

    Two distinct transitions are independent when they neither conflict
    (share input places) nor touch each other's neighborhood in a way that
    can change enabledness: ``t`` writing into ``•u`` can only *enable*
    ``u``, which is harmless for deadlock detection, but sharing an input
    place means one can disable the other.  For safe nets we additionally
    treat output-output sharing as dependent, because simultaneous firing
    order then matters for safety violations.
    """
    if t == u:
        return False
    if net.pre_places[t] & net.pre_places[u]:
        return False
    if net.post_places[t] & net.post_places[u]:
        return False
    return True


class StructuralInfo:
    """Memoized structural facts about a net.

    The explorers query conflicts, MCS membership and producer sets in
    inner loops; this class computes everything once.

    >>> from repro.models.figures import conflict_pairs_net
    >>> info = StructuralInfo(conflict_pairs_net(2))
    >>> len(info.mcs_list)
    2
    """

    __slots__ = (
        "net",
        "adjacency",
        "mcs_list",
        "mcs_of",
        "conflict_place_set",
        "conflicting_pairs",
    )

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.adjacency = conflict_graph(net)
        self.mcs_list = maximal_conflict_sets(net)
        self.mcs_of: dict[int, int] = {}
        for index, component in enumerate(self.mcs_list):
            for t in component:
                self.mcs_of[t] = index
        self.conflict_place_set = conflict_places(net)
        self.conflicting_pairs: list[tuple[int, int]] = [
            (t, u)
            for t in range(net.num_transitions)
            for u in sorted(self.adjacency[t])
            if t < u
        ]

    def conflicters(self, t: int) -> set[int]:
        """Distinct transitions in conflict with ``t``."""
        return self.adjacency[t]

    def mcs(self, t: int) -> frozenset[int]:
        """The maximal conflict set containing ``t``."""
        return self.mcs_list[self.mcs_of[t]]

    def producers(self, place: int) -> frozenset[int]:
        """Transitions that output into ``place`` (``•p``)."""
        return self.net.pre_transitions[place]

    def nontrivial_mcs(self) -> list[frozenset[int]]:
        """MCSs with at least two transitions (real choice structure)."""
        return [c for c in self.mcs_list if len(c) > 1]

    def transitions_in_conflict(self) -> frozenset[int]:
        """All transitions that participate in at least one conflict."""
        return frozenset(
            t for t in range(self.net.num_transitions) if self.adjacency[t]
        )


def restrict_to_enabled(
    components: Iterable[frozenset[int]], enabled: Sequence[int] | set[int]
) -> list[frozenset[int]]:
    """Intersect MCSs with a set of enabled transitions, dropping empties."""
    enabled_set = set(enabled)
    out = []
    for component in components:
        inter = component & enabled_set
        if inter:
            out.append(frozenset(inter))
    return out
