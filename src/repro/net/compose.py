"""Net composition operators.

The benchmark families (:mod:`repro.models`) assemble large nets from small
per-process fragments; these operators keep that assembly declarative:

* :func:`rename` — systematic node renaming (prefixing process indices);
* :func:`parallel` — disjoint union of component nets;
* :func:`fuse_places` — merge groups of places into shared resources
  (forks, locks, channels), the standard way to model synchronization.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.net.exceptions import NetStructureError, UnknownNodeError
from repro.net.petrinet import PetriNet

__all__ = ["rename", "parallel", "fuse_places", "prefix"]


def rename(
    net: PetriNet,
    place_map: Mapping[str, str] | Callable[[str], str] | None = None,
    transition_map: Mapping[str, str] | Callable[[str], str] | None = None,
    *,
    name: str | None = None,
) -> PetriNet:
    """Return a structurally identical net with renamed nodes.

    Maps may be dicts (missing keys keep their name) or callables applied to
    every name.  Renaming must stay injective.
    """
    def resolve(mapping, value: str) -> str:
        if mapping is None:
            return value
        if callable(mapping):
            return mapping(value)
        return mapping.get(value, value)

    places = [resolve(place_map, p) for p in net.places]
    transitions = [resolve(transition_map, t) for t in net.transitions]
    if len(set(places)) != len(places):
        raise NetStructureError("place renaming is not injective")
    if len(set(transitions)) != len(transitions):
        raise NetStructureError("transition renaming is not injective")
    return PetriNet(
        name if name is not None else net.name,
        places,
        transitions,
        net.pre_places,
        net.post_places,
        net.initial_marking,
    )


def prefix(net: PetriNet, tag: str) -> PetriNet:
    """Prefix every node name with ``tag`` (e.g. ``"phil0."``)."""
    return rename(
        net,
        place_map=lambda p: tag + p,
        transition_map=lambda t: tag + t,
        name=net.name,
    )


def parallel(nets: Sequence[PetriNet], *, name: str = "parallel") -> PetriNet:
    """Disjoint union of several nets.

    Node names must be globally unique across the components (use
    :func:`prefix` to ensure this).
    """
    places: list[str] = []
    transitions: list[str] = []
    pre: list[frozenset[int]] = []
    post: list[frozenset[int]] = []
    marking: set[int] = set()

    for component in nets:
        place_offset = len(places)
        for p in component.places:
            if p in places:
                raise NetStructureError(
                    f"duplicate place {p!r} across parallel components"
                )
        for t in component.transitions:
            if t in transitions:
                raise NetStructureError(
                    f"duplicate transition {t!r} across parallel components"
                )
        places.extend(component.places)
        transitions.extend(component.transitions)
        for t in range(component.num_transitions):
            pre.append(
                frozenset(p + place_offset for p in component.pre_places[t])
            )
            post.append(
                frozenset(p + place_offset for p in component.post_places[t])
            )
        marking |= {p + place_offset for p in component.initial_marking}

    return PetriNet(name, places, transitions, pre, post, marking)


def fuse_places(
    net: PetriNet,
    groups: Iterable[Sequence[str]],
    *,
    names: Sequence[str] | None = None,
) -> PetriNet:
    """Merge each group of places into a single shared place.

    The fused place inherits the union of all arcs of its members and is
    initially marked iff any member was marked.  ``names`` optionally gives
    the fused places' names (default: the first member's name).  Groups must
    be disjoint.
    """
    groups = [list(g) for g in groups]
    if names is not None and len(names) != len(groups):
        raise NetStructureError("names must match the number of groups")

    member_of: dict[int, int] = {}
    for g, group in enumerate(groups):
        if not group:
            raise NetStructureError("empty fuse group")
        for place in group:
            if place not in net.place_index:
                raise UnknownNodeError("place", place)
            index = net.place_index[place]
            if index in member_of:
                raise NetStructureError(
                    f"place {place!r} appears in two fuse groups"
                )
            member_of[index] = g

    # New place list: fused representatives first appearance in net order,
    # untouched places keep relative order.
    new_places: list[str] = []
    old_to_new: dict[int, int] = {}
    group_new_index: dict[int, int] = {}
    for p in range(net.num_places):
        if p in member_of:
            g = member_of[p]
            if g not in group_new_index:
                label = (
                    names[g] if names is not None else net.places[net.place_index[groups[g][0]]]
                )
                group_new_index[g] = len(new_places)
                new_places.append(label)
            old_to_new[p] = group_new_index[g]
        else:
            old_to_new[p] = len(new_places)
            new_places.append(net.places[p])
    if len(set(new_places)) != len(new_places):
        raise NetStructureError("fused net has duplicate place names")

    pre = [
        frozenset(old_to_new[p] for p in net.pre_places[t])
        for t in range(net.num_transitions)
    ]
    post = [
        frozenset(old_to_new[p] for p in net.post_places[t])
        for t in range(net.num_transitions)
    ]
    marking = {old_to_new[p] for p in net.initial_marking}
    return PetriNet(net.name, new_places, net.transitions, pre, post, marking)
