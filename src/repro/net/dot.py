"""Graphviz (DOT) export for nets and reachability graphs.

Pure string generation — no Graphviz dependency; the output can be piped
into ``dot -Tpdf`` by the user.  Used by the CLI (``gpo dot``) and handy when
debugging the benchmark models.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.net.petrinet import Marking, PetriNet

__all__ = ["net_to_dot", "reachability_to_dot"]


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


def net_to_dot(net: PetriNet, *, marking: Marking | None = None) -> str:
    """Render a Petri net in the conventional circle/box style.

    Places are circles (filled with a dot count when marked), transitions
    are boxes.  ``marking`` defaults to the net's initial marking.
    """
    if marking is None:
        marking = net.initial_marking
    lines = [f"digraph {_quote(net.name)} {{", "  rankdir=LR;"]
    for p, place in enumerate(net.places):
        label = place + (" ●" if p in marking else "")
        fill = ', style=filled, fillcolor="#e8f0fe"' if p in marking else ""
        lines.append(
            f"  {_quote('p_' + place)} [shape=circle, label={_quote(label)}{fill}];"
        )
    for t, transition in enumerate(net.transitions):
        lines.append(
            f"  {_quote('t_' + transition)} "
            f"[shape=box, height=0.2, label={_quote(transition)}];"
        )
    for t in range(net.num_transitions):
        for p in sorted(net.pre_places[t]):
            lines.append(
                f"  {_quote('p_' + net.places[p])} -> "
                f"{_quote('t_' + net.transitions[t])};"
            )
        for p in sorted(net.post_places[t]):
            lines.append(
                f"  {_quote('t_' + net.transitions[t])} -> "
                f"{_quote('p_' + net.places[p])};"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def reachability_to_dot(
    net: PetriNet,
    states: Iterable[object],
    edges: Iterable[tuple[object, str, object]],
    *,
    initial: object | None = None,
    state_label: Callable[[object], str] | None = None,
    deadlocks: Iterable[object] = (),
) -> str:
    """Render a (possibly reduced) reachability graph.

    Generic over the state type: explicit markings, GPN states and symbolic
    frontiers all render through the same function by passing a
    ``state_label`` callback.  ``edges`` yields ``(src, label, dst)``.
    """
    if state_label is None:
        def state_label(state: object) -> str:
            if isinstance(state, frozenset):
                names = sorted(net.places[p] for p in state)
                return "{" + ", ".join(names) + "}"
            return str(state)

    index: dict[object, int] = {}
    lines = [f"digraph {_quote(net.name + '_rg')} {{"]
    dead = set(deadlocks)
    for state in states:
        index[state] = len(index)
        shape = "doublecircle" if state in dead else "ellipse"
        extras = ""
        if initial is not None and state == initial:
            extras = ', style=filled, fillcolor="#e8f0fe"'
        lines.append(
            f"  s{index[state]} [shape={shape}, "
            f"label={_quote(state_label(state))}{extras}];"
        )
    for src, label, dst in edges:
        lines.append(
            f"  s{index[src]} -> s{index[dst]} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
