"""Sharded, level-synchronized parallel BFS over packed markings.

The scalar explorers walk one frontier in one process.  This module
hash-partitions the state space across ``N`` shards — the owner of a
packed marking is ``state_key(bits) % shards`` with the canonical
splitmix64 fold of :mod:`repro.net.batch` — and explores it as a
sequence of **level barriers**:

1. every shard expands its current frontier (scalar kernel loop, or the
   numpy :class:`~repro.net.batch.BatchedKernel` when available and
   requested), routing each successor to its owner's outbox;
2. the coordinator gathers all outboxes and delivers, to every shard,
   the concatenation of the candidates addressed to it **in source
   shard-index order**;
3. each shard absorbs its candidates first-seen (dedup against its
   visited set) into the next frontier.

Why the counts stay exact: ownership is a pure function of the marking,
so every reachable state is absorbed — and later expanded — by exactly
one shard; the successor rule is a pure function of the marking (full
semantics, or the deterministic stubborn fired-set choice); and the
barrier makes every message's content a function of the level's frontier
*sets*, never of worker timing.  Aggregate state/edge/deadlock counts
therefore equal the sequential explorer's for any shard count and any
scheduling — the determinism suite holds sharded runs to that.

Two runners share the shard core: an **inline** runner (all shards in
this process — the deterministic baseline, and the only option on one
CPU) and a **forked** runner (one ``fork`` worker per shard exchanging
frontiers over pipes, mirroring :mod:`repro.engine.pool`).  Budgets are
enforced at level granularity: a bounded run stops at the first barrier
where the state budget is reached or the deadline has passed, so it may
store up to one level beyond ``max_states`` (documented, unlike the
scalar driver's exact cap).

``analyze_parallel`` packages the aggregate as an
``AnalysisResult(analyzer="parallel")``.  Like the stubborn reduction it
answers the deadlock question only (its :mod:`repro.props.compat` entry);
it reports no witness — the point is raw throughput on big instances,
and a witness needs the edge structure the shards deliberately do not
retain.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.analysis.stats import AnalysisResult, stopwatch
from repro.net.batch import HAVE_NUMPY, BatchedKernel, state_key, words_of
from repro.net.exceptions import UnsafeNetError
from repro.net.kernel import MarkingKernel
from repro.net.petrinet import PetriNet
from repro.obs import names
from repro.obs.context import (
    TraceContext,
    current_context,
    new_trace_context,
    set_context,
    use_context,
)
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.props.ast import Property, UnsupportedPropertyError
from repro.props.compat import unsupported_reason
from repro.props.eval import engine_property, needs_decomposition, run_property
from repro.search.core import abort_note
from repro.search.limits import Deadline
from repro.stubborn.stubborn import SeedStrategy, _enabled_part

__all__ = [
    "ParallelOutcome",
    "analyze_parallel",
    "explore_parallel",
    "shard_of",
]


def shard_of(bits: int, words: int, shards: int) -> int:
    """Owner shard of a packed marking (pure function of the marking)."""
    return state_key(bits, words) % shards


@dataclass
class _LevelStats:
    """Per-shard, per-level counter deltas (picklable for the fork path)."""

    expanded: int = 0
    edges: int = 0
    deadlocks: int = 0
    absorbed: int = 0
    exchanged: int = 0
    stalled: int = 0
    rows: int = 0
    closure_iterations: int = 0
    enabled_total: int = 0
    fired_total: int = 0

    def as_tuple(self) -> Tuple[int, ...]:
        return (
            self.expanded,
            self.edges,
            self.deadlocks,
            self.absorbed,
            self.exchanged,
            self.stalled,
            self.rows,
            self.closure_iterations,
            self.enabled_total,
            self.fired_total,
        )

    @classmethod
    def from_tuple(cls, values: Sequence[int]) -> "_LevelStats":
        return cls(*values)


class _ShardCore:
    """One shard's visited set, frontier and level-step logic.

    Identical whether driven inline or inside a forked worker — the
    runner only moves messages; all exploration state lives here.
    """

    def __init__(
        self,
        kernel: MarkingKernel,
        shard: int,
        shards: int,
        *,
        inner: str,
        strategy: SeedStrategy,
        batch: bool,
    ) -> None:
        self.kernel = kernel
        self.shard = shard
        self.shards = shards
        self.inner = inner
        self.strategy = strategy
        self.words = words_of(kernel.num_places)
        # Batched expansion implements the full semantics only; stubborn
        # shards always expand with the scalar closure.
        self.batched = (
            BatchedKernel(kernel) if batch and inner == "full" else None
        )
        self.visited: set[int] = set()
        self.frontier: List[int] = []
        self.states = 0
        self.levels = 0

    def run_level(
        self, incoming: Sequence[int]
    ) -> Tuple[List[List[int]], _LevelStats]:
        """Absorb ``incoming`` (first-seen), expand, route successors.

        Returns one candidate list per destination shard (this shard's
        outboxes, deduplicated within the level) and the level's counter
        deltas.  Raises :class:`UnsafeNetError` exactly where the scalar
        kernel would.

        Each call is wrapped in one ``parallel/shard`` span — emitted by
        the core itself, so the span-name counts of an inline run and a
        forked run are identical by construction (the level count of the
        BFS is deterministic).  In a forked worker the shard span has no
        in-process parent and attaches to the coordinator's span via the
        shipped trace context.
        """
        level = self.levels
        self.levels += 1
        with current_tracer().span(
            names.SPAN_PARALLEL_SHARD, shard=self.shard, level=level
        ):
            stats = _LevelStats()
            visited = self.visited
            frontier = self.frontier
            for bits in incoming:
                if bits not in visited:
                    visited.add(bits)
                    frontier.append(bits)
            stats.absorbed = len(frontier)
            self.states = len(visited)
            if not frontier:
                stats.stalled = 1
                return [[] for _ in range(self.shards)], stats
            outboxes: List[List[int]] = [[] for _ in range(self.shards)]
            outbox_seen: List[set[int]] = [set() for _ in range(self.shards)]
            if self.batched is not None:
                self._expand_batched(frontier, outboxes, outbox_seen, stats)
            else:
                self._expand_scalar(frontier, outboxes, outbox_seen, stats)
            stats.expanded = len(frontier)
            stats.exchanged = sum(
                len(box) for d, box in enumerate(outboxes) if d != self.shard
            )
            self.frontier = []
            return outboxes, stats

    def _expand_scalar(
        self,
        frontier: Sequence[int],
        outboxes: List[List[int]],
        outbox_seen: List[set[int]],
        stats: _LevelStats,
    ) -> None:
        kernel = self.kernel
        words = self.words
        shards = self.shards
        stubborn = self.inner == "stubborn"
        strategy = self.strategy
        closure_base = kernel.stat_closure_iterations
        for bits in frontier:
            mask = kernel.enabled_mask(bits)
            if not mask:
                stats.deadlocks += 1
                continue
            if stubborn:
                stats.enabled_total += mask.bit_count()
                to_fire = _enabled_part(kernel, bits, strategy, mask)
                stats.fired_total += len(to_fire)
            else:
                to_fire = []
                rest = mask
                while rest:
                    low = rest & -rest
                    to_fire.append(low.bit_length() - 1)
                    rest ^= low
            for t in to_fire:
                successor = kernel.fire_enabled(t, bits)
                stats.edges += 1
                dest = state_key(successor, words) % shards
                seen = outbox_seen[dest]
                if successor not in seen:
                    seen.add(successor)
                    outboxes[dest].append(successor)
        stats.closure_iterations = (
            kernel.stat_closure_iterations - closure_base
        )

    def _expand_batched(
        self,
        frontier: Sequence[int],
        outboxes: List[List[int]],
        outbox_seen: List[set[int]],
        stats: _LevelStats,
    ) -> None:
        batched = self.batched
        assert batched is not None
        rows = batched.encode_rows(frontier)
        stats.rows = rows.shape[0]
        srcs, fired, succ, any_enabled = batched.expand(rows)
        stats.deadlocks += int(rows.shape[0]) - int(any_enabled.sum())
        stats.edges += int(srcs.shape[0])
        if not srcs.shape[0]:
            return
        # NEP-50 weak-scalar rules keep ``uint64 % int`` in uint64.
        dests = (batched.state_keys(succ) % self.shards).tolist()
        for successor, dest in zip(batched.decode_rows(succ), dests):
            dest = int(dest)
            seen = outbox_seen[dest]
            if successor not in seen:
                seen.add(successor)
                outboxes[dest].append(successor)


@dataclass
class ParallelOutcome:
    """Aggregate of a sharded exploration — counts, not a graph."""

    states: int = 0
    edges: int = 0
    deadlocks: int = 0
    expanded: int = 0
    levels: int = 0
    peak_frontier: int = 0
    exchange_volume: int = 0
    exchange_stalls: int = 0
    shard_states: Tuple[int, ...] = ()
    elapsed_seconds: float = 0.0
    exhaustive: bool = True
    stop_reason: str | None = None
    batch: bool = False
    batch_rows_total: int = 0
    batch_levels: int = 0
    closure_iterations: int = 0
    enabled_total: int = 0
    fired_total: int = 0
    workers: str = "inline"

    @property
    def mean_enabled(self) -> float:
        if not self.expanded:
            return 0.0
        return self.edges / self.expanded


def _resolve_batch(batch: Any, inner: str) -> bool:
    if inner != "full":
        return False
    if batch == "auto":
        return HAVE_NUMPY
    if batch and not HAVE_NUMPY:
        raise RuntimeError(
            "batch=True requires numpy (install the [fast] extra)"
        )
    return bool(batch)


def _resolve_workers(workers: Any, shards: int) -> str:
    if workers in (None, "auto"):
        cpus = os.cpu_count() or 1
        if (
            shards > 1
            and cpus > 1
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            return "fork"
        return "inline"
    if workers in ("inline", "fork"):
        if workers == "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            raise RuntimeError("fork start method unavailable on this platform")
        return str(workers)
    raise ValueError(f"unknown workers mode {workers!r}")


def explore_parallel(
    net: PetriNet,
    *,
    shards: int = 2,
    inner: str = "full",
    strategy: SeedStrategy = "best",
    batch: Any = "auto",
    workers: Any = "auto",
    max_states: int | None = None,
    max_seconds: float | None = None,
) -> ParallelOutcome:
    """Run the sharded level-synchronized BFS and return aggregate counts.

    ``inner`` selects the successor rule: ``"full"`` (every enabled
    transition) or ``"stubborn"`` (the deterministic stubborn fired
    set — same reduced graph as the sequential stubborn explorer).
    ``batch`` is ``"auto"`` (numpy when available), ``True`` or
    ``False``; ``workers`` is ``"auto"``, ``"inline"`` or ``"fork"``.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if inner not in ("full", "stubborn"):
        raise ValueError(f"unknown inner semantics {inner!r}")
    use_batch = _resolve_batch(batch, inner)
    mode = _resolve_workers(workers, shards)
    kernel = net.kernel()
    words = words_of(kernel.num_places)
    outcome = ParallelOutcome(batch=use_batch, workers=mode)
    start = time.perf_counter()
    deadline = Deadline.of(max_seconds)
    tracer = current_tracer()
    width_hist = tracer.metrics.histogram(names.BATCH_LEVEL_WIDTH)

    initial_dest = shard_of(kernel.initial, words, shards)
    pending: List[List[int]] = [[] for _ in range(shards)]
    pending[initial_dest].append(kernel.initial)

    if mode == "fork":
        runner: _InlineRunner | _ForkRunner = _ForkRunner(
            net, shards, inner=inner, strategy=strategy, batch=use_batch
        )
    else:
        runner = _InlineRunner(
            kernel, shards, inner=inner, strategy=strategy, batch=use_batch
        )
    try:
        while any(pending):
            if deadline is not None and deadline.expired():
                outcome.exhaustive = False
                outcome.stop_reason = "time-budget"
                break
            if max_states is not None and outcome.states >= max_states:
                outcome.exhaustive = False
                outcome.stop_reason = "state-budget"
                break
            with tracer.span(
                names.SPAN_PARALLEL_LEVEL, level=outcome.levels
            ):
                results = runner.run_level(pending)
            pending = [[] for _ in range(shards)]
            level_frontier = 0
            for src in range(shards):
                outboxes, stats = results[src]
                for dest in range(shards):
                    pending[dest].extend(outboxes[dest])
                outcome.expanded += stats.expanded
                outcome.edges += stats.edges
                outcome.deadlocks += stats.deadlocks
                outcome.exchange_volume += stats.exchanged
                outcome.exchange_stalls += stats.stalled
                outcome.closure_iterations += stats.closure_iterations
                outcome.enabled_total += stats.enabled_total
                outcome.fired_total += stats.fired_total
                level_frontier += stats.absorbed
                if stats.rows:
                    outcome.batch_rows_total += stats.rows
                    outcome.batch_levels += 1
                    width_hist.observe(stats.rows)
            if level_frontier > outcome.peak_frontier:
                outcome.peak_frontier = level_frontier
            outcome.levels += 1
            outcome.states = runner.total_states()
        outcome.shard_states = tuple(runner.per_shard_states())
        outcome.states = sum(outcome.shard_states)
    finally:
        runner.close()
    outcome.elapsed_seconds = time.perf_counter() - start
    return outcome


class _InlineRunner:
    """All shards in this process — the deterministic baseline."""

    def __init__(
        self,
        kernel: MarkingKernel,
        shards: int,
        *,
        inner: str,
        strategy: SeedStrategy,
        batch: bool,
    ) -> None:
        self.cores = [
            _ShardCore(
                kernel, s, shards, inner=inner, strategy=strategy, batch=batch
            )
            for s in range(shards)
        ]

    def run_level(
        self, pending: Sequence[Sequence[int]]
    ) -> List[Tuple[List[List[int]], _LevelStats]]:
        return [
            core.run_level(incoming)
            for core, incoming in zip(self.cores, pending)
        ]

    def total_states(self) -> int:
        return sum(core.states for core in self.cores)

    def per_shard_states(self) -> List[int]:
        return [core.states for core in self.cores]

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


def _shard_worker(
    conn: Any,
    net: PetriNet,
    shard: int,
    shards: int,
    inner: str,
    strategy: SeedStrategy,
    batch: bool,
    trace_ctx: TraceContext | None = None,
) -> None:
    """Forked worker loop: one shard core driven over a pipe.

    ``trace_ctx`` is the coordinator's context re-parented to its
    current span: the worker installs it so its ``parallel/shard``
    spans join the request's trace, and ships its drained records back
    in the ``bye`` reply (span ids embed the pid, so the merge is
    collision-free).
    """
    tracer = current_tracer()
    tracer.child_reset()
    if trace_ctx is not None:
        set_context(trace_ctx)
    core = _ShardCore(
        net.kernel(), shard, shards, inner=inner, strategy=strategy,
        batch=batch,
    )
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "run":
                try:
                    outboxes, stats = core.run_level(msg[1])
                except UnsafeNetError as exc:
                    conn.send(("unsafe", exc.transition, exc.place))
                    continue
                conn.send(("out", outboxes, stats.as_tuple(), core.states))
            elif msg[0] == "stop":
                conn.send(("bye", core.states, tracer.drain()))
                return
    except (EOFError, KeyboardInterrupt):  # pragma: no cover
        return


class _ForkRunner:
    """One forked worker per shard, level-synchronized over pipes."""

    def __init__(
        self,
        net: PetriNet,
        shards: int,
        *,
        inner: str,
        strategy: SeedStrategy,
        batch: bool,
    ) -> None:
        ctx = multiprocessing.get_context("fork")
        self.conns = []
        self.procs = []
        self._states = [0] * shards
        # Ship the trace context across the fork, re-parented to the
        # span currently open on this side (the analyze span), so every
        # worker's shard spans attach to it in the merged trace.
        tracer = current_tracer()
        active = current_context()
        trace_ctx: TraceContext | None = None
        if tracer.enabled and active is not None:
            trace_ctx = active.child(
                tracer.current_span_id() or active.parent_span_id
            )
        for shard in range(shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    child, net, shard, shards, inner, strategy, batch,
                    trace_ctx,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def run_level(
        self, pending: Sequence[Sequence[int]]
    ) -> List[Tuple[List[List[int]], _LevelStats]]:
        for conn, incoming in zip(self.conns, pending):
            conn.send(("run", list(incoming)))
        results: List[Tuple[List[List[int]], _LevelStats]] = []
        unsafe: Tuple[str, str] | None = None
        for shard, conn in enumerate(self.conns):
            reply = conn.recv()
            if reply[0] == "unsafe":
                unsafe = (reply[1], reply[2])
                results.append(
                    ([[] for _ in range(len(self.conns))], _LevelStats())
                )
                continue
            _, outboxes, stats_tuple, states = reply
            self._states[shard] = states
            results.append((outboxes, _LevelStats.from_tuple(stats_tuple)))
        if unsafe is not None:
            raise UnsafeNetError(*unsafe)
        return results

    def total_states(self) -> int:
        return sum(self._states)

    def per_shard_states(self) -> List[int]:
        return list(self._states)

    def close(self) -> None:
        tracer = current_tracer()
        for conn in self.conns:
            try:
                conn.send(("stop",))
                reply = conn.recv()
                if reply[0] == "bye" and len(reply) > 2:
                    # Merge the worker's drained shard spans into the
                    # coordinator's trace.
                    tracer.adopt(reply[2])
            except (BrokenPipeError, EOFError, OSError):
                pass
            finally:
                conn.close()
        for proc in self.procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)


def analyze_parallel(
    net: PetriNet,
    *,
    shards: int = 2,
    inner: str = "full",
    strategy: SeedStrategy = "best",
    batch: Any = "auto",
    workers: Any = "auto",
    max_states: int | None = None,
    max_seconds: float | None = None,
    want_witness: bool = False,
    prop: "Property | str | None" = None,
) -> AnalysisResult:
    """Sharded analysis packaged as an :class:`AnalysisResult`.

    Answers the deadlock question only (like the stubborn reduction —
    see its :mod:`repro.props.compat` entry) and reports no witness:
    the shards keep visited *sets*, not the edge structure a witness
    path needs (``want_witness`` is accepted for signature uniformity).
    """
    goal_prop = engine_property(prop)
    if goal_prop is not None and needs_decomposition(goal_prop):
        return run_property(
            goal_prop,
            lambda leaf: analyze_parallel(
                net,
                shards=shards,
                inner=inner,
                strategy=strategy,
                batch=batch,
                workers=workers,
                max_states=max_states,
                max_seconds=max_seconds,
                want_witness=want_witness,
                prop=leaf,
            ),
            analyzer="parallel",
            net_name=net.name,
        )
    if goal_prop is not None:
        raise UnsupportedPropertyError(
            "parallel",
            goal_prop,
            unsupported_reason("parallel", goal_prop)
            or "the sharded explorer answers the deadlock question only",
        )
    tracer = current_tracer()
    # One sharded analysis is one logical request: mint a trace context
    # when the caller did not install one, so inline and forked shard
    # spans share one trace_id.
    ctx = current_context()
    if ctx is None and tracer.enabled:
        ctx = new_trace_context()
    with use_context(ctx), tracer.span(
        names.SPAN_ANALYZE, analyzer="parallel", net=net.name
    ) as root:
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        with stopwatch() as elapsed:
            outcome = explore_parallel(
                net,
                shards=shards,
                inner=inner,
                strategy=strategy,
                batch=batch,
                workers=workers,
                max_states=max_states,
                max_seconds=max_seconds,
            )
        extras: dict[str, Any] = {
            names.EXPANDED: outcome.expanded,
            names.PEAK_FRONTIER: outcome.peak_frontier,
            names.MEAN_ENABLED: round(outcome.mean_enabled, 3),
            names.STATES_PER_SECOND: round(
                outcome.states / outcome.elapsed_seconds, 1
            )
            if outcome.elapsed_seconds > 0
            else float(outcome.states),
            names.KERNEL: True,
            names.SHARDS: shards,
            names.SHARD_EXCHANGE_VOLUME: outcome.exchange_volume,
            names.SHARD_EXCHANGE_STALLS: outcome.exchange_stalls,
            "inner": inner,
            "workers": outcome.workers,
            "levels": outcome.levels,
            "shard_states": list(outcome.shard_states),
            names.SAFETY_CERTIFIED: certified,
        }
        if outcome.batch and outcome.batch_levels:
            extras[names.BATCH_LEVEL_WIDTH] = round(
                outcome.batch_rows_total / outcome.batch_levels, 3
            )
        if inner == "stubborn":
            extras[names.STUBBORN_CLOSURE_ITERATIONS] = (
                outcome.closure_iterations
            )
            if outcome.enabled_total:
                extras[names.STUBBORN_RATIO] = round(
                    outcome.fired_total / outcome.enabled_total, 3
                )
        note = abort_note(
            outcome.stop_reason,
            max_states=max_states,
            max_seconds=max_seconds,
        )
        if note is not None:
            extras[names.ABORTED] = note
        result = AnalysisResult(
            analyzer="parallel",
            net_name=net.name,
            states=outcome.states,
            edges=outcome.edges,
            deadlock=outcome.deadlocks > 0,
            time_seconds=elapsed[0],
            witness=None,
            exhaustive=outcome.exhaustive,
            extras=extras,
        )
        root.set(states=result.states, edges=result.edges)
    record_result(result)
    return result
