"""Labelled reachability graphs.

A :class:`ReachabilityGraph` stores the states discovered by any explorer
driven through :mod:`repro.search.core` (full, stubborn-set reduced,
generalized partial-order, timed state classes — each with its own state
type) together with labelled edges, the initial state, and the set of
deadlock states.

States may be any hashable objects; for the classical analyzers they are
``frozenset`` markings.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Hashable, Iterator, TypeVar

__all__ = ["ReachabilityGraph"]

S = TypeVar("S", bound=Hashable)
R = TypeVar("R", bound=Hashable)


class ReachabilityGraph(Generic[S]):
    """A rooted, edge-labelled directed graph over hashable states."""

    def __init__(self, initial: S) -> None:
        self.initial: S = initial
        self._index: dict[S, int] = {initial: 0}
        self._states: list[S] = [initial]
        self._edges: list[list[tuple[str, int]]] = [[]]
        self.deadlocks: set[S] = set()

    # ------------------------------------------------------------------
    def __contains__(self, state: S) -> bool:
        return state in self._index

    def __len__(self) -> int:
        return len(self._states)

    @property
    def num_states(self) -> int:
        """Number of distinct states."""
        return len(self._states)

    @property
    def num_edges(self) -> int:
        """Number of edges (parallel edges with distinct labels count)."""
        return sum(len(out) for out in self._edges)

    def states(self) -> Iterator[S]:
        """Iterate states in discovery order (initial state first)."""
        return iter(self._states)

    def add_state(self, state: S) -> bool:
        """Insert a state; returns True when it was new."""
        if state in self._index:
            return False
        self._index[state] = len(self._states)
        self._states.append(state)
        self._edges.append([])
        return True

    def add_edge(self, source: S, label: str, target: S) -> None:
        """Insert an edge; both endpoints are added when missing."""
        self.add_state(source)
        self.add_state(target)
        self._edges[self._index[source]].append(
            (label, self._index[target])
        )

    # -- index-based fast path (used by the search driver) -------------
    def index_of(self, state: S) -> int:
        """Index of an already-stored state (KeyError when missing)."""
        return self._index[state]

    def raw_index(self) -> dict[S, int]:
        """The state→index mapping itself.

        The search driver binds its ``.get`` once and probes it per
        successor — one dict operation instead of the three
        :meth:`add_edge` performs.  Treat the mapping as read-only.
        """
        return self._index

    def raw_edges(self) -> list[list[tuple[str, int]]]:
        """The per-state outgoing-edge lists, indexed like the states.

        The driver appends ``(label, target_index)`` pairs directly —
        the list object is stable (``insert_new`` mutates it in place),
        so binding it once per search is safe.
        """
        return self._edges

    def insert_new(self, state: S) -> int:
        """Append a state known to be absent; returns its new index."""
        index = len(self._states)
        self._index[state] = index
        self._states.append(state)
        self._edges.append([])
        return index

    def append_edge(
        self, source_index: int, label: str, target_index: int
    ) -> None:
        """Append an edge between already-stored states, by index."""
        self._edges[source_index].append((label, target_index))

    def mark_deadlock(self, state: S) -> None:
        """Record ``state`` as a deadlock."""
        self.add_state(state)
        self.deadlocks.add(state)

    def successors(self, state: S) -> list[tuple[str, S]]:
        """Outgoing ``(label, target)`` pairs of a state."""
        return [
            (label, self._states[target])
            for label, target in self._edges[self._index[state]]
        ]

    def edges(self) -> Iterator[tuple[S, str, S]]:
        """Iterate all edges as ``(source, label, target)``."""
        for source_index, out in enumerate(self._edges):
            source = self._states[source_index]
            for label, target in out:
                yield (source, label, self._states[target])

    # ------------------------------------------------------------------
    def map_states(self, fn: Callable[[S], R]) -> "ReachabilityGraph[R]":
        """Structure-preserving state translation (e.g. int → frozenset).

        Returns a new graph with every state replaced by ``fn(state)``,
        keeping discovery order, edges (by index — structure is preserved
        even if ``fn`` were non-injective) and deadlock markings.  This is
        the decode boundary for explorers that carry packed integer
        markings internally (:mod:`repro.net.kernel`) but report
        classical-marking graphs.
        """
        mapped: ReachabilityGraph[R] = ReachabilityGraph(fn(self.initial))
        for state in self._states[1:]:
            translated = fn(state)
            mapped._index[translated] = len(mapped._states)
            mapped._states.append(translated)
        mapped._edges = [list(out) for out in self._edges]
        mapped.deadlocks = {fn(state) for state in self.deadlocks}
        return mapped

    def path_to(self, goal: S) -> list[tuple[str, S]] | None:
        """Shortest edge path from the initial state to ``goal``.

        Returns ``[(label, state), ...]`` ending at ``goal``, the empty list
        when ``goal`` is the initial state, or ``None`` when unreachable
        inside this graph.  Used for counterexample traces.
        """
        if goal not in self._index:
            return None
        goal_index = self._index[goal]
        if goal_index == 0:
            return []
        parent: dict[int, tuple[int, str]] = {0: (-1, "")}
        queue = deque([0])
        while queue:
            current = queue.popleft()
            for label, target in self._edges[current]:
                if target in parent:
                    continue
                parent[target] = (current, label)
                if target == goal_index:
                    return self._unwind(parent, goal_index)
                queue.append(target)
        return None

    def _unwind(
        self, parent: dict[int, tuple[int, str]], goal_index: int
    ) -> list[tuple[str, S]]:
        path: list[tuple[str, S]] = []
        node = goal_index
        while node != 0:
            previous, label = parent[node]
            path.append((label, self._states[node]))
            node = previous
        path.reverse()
        return path

    def __repr__(self) -> str:
        return (
            f"ReachabilityGraph(states={self.num_states}, "
            f"edges={self.num_edges}, deadlocks={len(self.deadlocks)})"
        )
