"""The generic instrumented exploration core.

Full, stubborn-set, generalized partial-order and timed state-class
exploration are *the same search* with different successor rules — the
paper's Table 1 only compares them meaningfully because of that.  This
module is the single budgeted driver they all run on:

* a :class:`SearchSpace` adapter supplies ``initial`` /
  ``successors(state, ctx)`` / ``is_deadlock(state)``;
* :func:`explore` runs it breadth- or depth-first under state and
  wall-clock budgets and **returns a partial graph with an ``exhaustive``
  flag instead of raising and re-exploring**;
* :class:`~repro.search.observers.SearchObserver` hooks see every state,
  edge and deadlock as they are discovered (on-the-fly queries, event
  streaming), and a :class:`SearchStats` record collects uniform
  instrumentation — states/sec, peak frontier size, mean enabled-set
  size — for ``AnalysisResult.extras`` and the engine's JSONL events.

Depth-first order additionally maintains the current DFS path and exposes
it through :meth:`SearchContext.on_current_path`, which is how the GPO
explorer detects back-edges for its anti-ignoring proviso.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Generic,
    Hashable,
    Iterable,
    Protocol,
    Sequence,
    TypeVar,
    runtime_checkable,
)

from repro.obs import names
from repro.obs.names import INSTRUMENTATION_FIELDS
from repro.search.graph import ReachabilityGraph
from repro.search.limits import (
    Deadline,
    ExplorationLimitReached,
    TimeLimitReached,
)

__all__ = [
    "INSTRUMENTATION_FIELDS",
    "SearchContext",
    "SearchOutcome",
    "SearchSpace",
    "SearchStats",
    "abort_note",
    "explore",
    "raise_if_bounded",
]

S = TypeVar("S", bound=Hashable)


@runtime_checkable
class SearchSpace(Protocol[S]):
    """What an explorer must provide to run on the generic driver.

    ``successors`` must yield ``(edge label, successor state)`` pairs in a
    deterministic order — the driver adds edges and schedules new states
    exactly in that order, which is what makes the explored graph
    reproducible.  ``is_deadlock`` is consulted once per expanded state,
    *before* ``successors``; a deadlocked state may still yield successors
    (the GPO ``on_deadlock="continue"`` regime).  Adapters that need the
    same per-state computation in both methods should memoize it keyed on
    state identity — the driver passes the identical object to both.
    """

    def initial(self) -> S:
        """The root state of the search."""
        ...

    def successors(
        self, state: S, ctx: "SearchContext[S]"
    ) -> Iterable[tuple[str, S]]:
        """Ordered ``(label, successor)`` pairs of ``state``."""
        ...

    def is_deadlock(self, state: S) -> bool:
        """Should ``state`` be recorded as a deadlock?"""
        ...


class SearchContext(Generic[S]):
    """Driver state exposed to spaces and observers during a search."""

    __slots__ = ("order", "graph", "_on_path")

    def __init__(
        self,
        order: str,
        graph: ReachabilityGraph[S],
        on_path: set[S],
    ) -> None:
        self.order = order
        self.graph = graph
        self._on_path = on_path

    def on_current_path(self, state: S) -> bool:
        """Would an edge to ``state`` close a cycle of the current DFS path?

        Only meaningful in depth-first order (always False under BFS,
        where no path is maintained); used by the GPO explorer's
        anti-ignoring proviso.
        """
        return state in self._on_path


@dataclass
class SearchStats:
    """Uniform instrumentation collected by the driver.

    ``expanded`` counts states whose successors were generated (equal to
    the number of stored states on exhaustive runs, smaller on bounded
    ones); ``successor_total`` sums the enabled-set sizes, so
    ``mean_enabled`` is the mean branching factor the successor rule
    produced.
    """

    states: int = 1
    expanded: int = 0
    deadlocks: int = 0
    peak_frontier: int = 1
    successor_total: int = 0
    elapsed_seconds: float = 0.0
    #: True when the space ran on the bitmask marking kernel
    #: (``space.uses_kernel``) rather than the frozenset reference path.
    kernel: bool = False

    @property
    def mean_enabled(self) -> float:
        """Mean successor-set size per expanded state."""
        if not self.expanded:
            return 0.0
        return self.successor_total / self.expanded

    @property
    def states_per_second(self) -> float:
        """Stored states per second of wall time."""
        if self.elapsed_seconds <= 0.0:
            return float(self.states)
        return self.states / self.elapsed_seconds

    def as_extras(self) -> dict[str, Any]:
        """The driver-level instrumentation counters, JSON-ready."""
        return {
            names.EXPANDED: self.expanded,
            names.PEAK_FRONTIER: self.peak_frontier,
            names.MEAN_ENABLED: round(self.mean_enabled, 3),
            names.STATES_PER_SECOND: round(self.states_per_second, 1),
            names.KERNEL: self.kernel,
        }


@dataclass
class SearchOutcome(Generic[S]):
    """What a driven exploration produced — possibly partial.

    ``exhaustive`` is True when the frontier drained (or the search
    stopped because the deadlock question it was asked is answered);
    ``stop_reason`` says why a non-drained search stopped:
    ``"state-budget"``, ``"time-budget"``, ``"deadlock"``
    (``stop_at_first_deadlock``) or ``"observer"`` (an observer hook
    requested termination, e.g. a reachability query hit its target).
    """

    graph: ReachabilityGraph[S]
    exhaustive: bool
    stop_reason: str | None
    stats: SearchStats = field(default_factory=SearchStats)


def abort_note(
    stop_reason: str | None,
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
) -> str | None:
    """The ``extras["aborted"]`` marker for a bounded outcome."""
    if stop_reason == "state-budget":
        return f"> {max_states} states"
    if stop_reason == "time-budget":
        return f"> {max_seconds:.0f}s"
    if stop_reason == "observer":
        return "stopped by observer"
    return None


def raise_if_bounded(
    outcome: SearchOutcome[S],
    *,
    max_states: int | None = None,
    max_seconds: float | None = None,
) -> SearchOutcome[S]:
    """Convert a budget-bounded outcome into the historical exceptions.

    The compatibility wrappers (``explore`` / ``explore_reduced`` /
    ``explore_gpo`` / ``explore_classes``) contractually raise
    :class:`ExplorationLimitReached` / :class:`TimeLimitReached`; the
    ``analyze`` entry points use the partial outcome directly instead.
    """
    if outcome.stop_reason == "state-budget":
        assert max_states is not None
        raise ExplorationLimitReached(max_states, outcome.graph.num_states)
    if outcome.stop_reason == "time-budget":
        assert max_seconds is not None
        raise TimeLimitReached(max_seconds, outcome.graph.num_states)
    return outcome


#: DFS exit marker: popping it closes the scope of one path state.
_EXIT: Any = object()


def explore(
    space: SearchSpace[S],
    *,
    order: str = "bfs",
    max_states: int | None = None,
    max_seconds: float | None = None,
    stop_at_first_deadlock: bool = False,
    observers: Sequence[Any] = (),
) -> SearchOutcome[S]:
    """Run ``space`` to exhaustion or to a budget, never raising on either.

    The state budget is exact: the driver stops as soon as a successor
    would require storing state ``max_states + 1``, so a bounded outcome
    reports exactly the progress made (``graph.num_states <= max_states``).
    The wall-clock budget is checked cooperatively once per expanded
    state.  Observer hooks (``on_state`` / ``on_edge`` / ``on_deadlock``)
    may return a truthy value to request early termination
    (``stop_reason="observer"``).
    """
    if order not in ("bfs", "dfs"):
        raise ValueError(f"unknown search order {order!r}")
    deadline = Deadline.of(max_seconds)
    start = time.perf_counter()
    initial = space.initial()
    graph: ReachabilityGraph[S] = ReachabilityGraph(initial)
    stats = SearchStats(kernel=bool(getattr(space, "uses_kernel", False)))
    path: list[S] = []
    on_path: set[S] = set()
    ctx: SearchContext[S] = SearchContext(order, graph, on_path)
    frontier: deque[S] = deque([initial])
    depth_first = order == "dfs"

    # Hot-loop bindings: the loop below runs once per edge of graphs with
    # hundreds of thousands of edges, so counters live in locals and the
    # graph is updated through its index-based fast path (one dict probe
    # per successor instead of ``add_edge``'s three).
    index_get = graph.raw_index().get
    edge_lists = graph.raw_edges()
    insert_new = graph.insert_new
    frontier_append = frontier.append
    # Passive observers (``observer.passive`` truthy, e.g. the tracing
    # observer) only need the begin/end and deadlock hooks — skipping the
    # per-successor dispatch for them keeps traced runs on the same hot
    # loop as bare ones.
    has_observers = any(
        not getattr(observer, "passive", False) for observer in observers
    )
    cap: float = max_states if max_states is not None else float("inf")
    num_states = 1
    expanded = 0
    deadlocks = 0
    peak_frontier = 1
    successor_total = 0

    stop: str | None = None
    for observer in observers:
        if observer.on_state(initial, ctx):
            stop = "observer"

    while frontier and stop is None:
        pending = len(frontier) - len(path)
        if pending > peak_frontier:
            peak_frontier = pending
        if depth_first:
            popped = frontier.pop()
            if popped is _EXIT:
                on_path.discard(path.pop())
                continue
            state = popped
        else:
            state = frontier.popleft()
        if deadline is not None and deadline.expired():
            stop = "time-budget"
            break
        expanded += 1
        if depth_first:
            frontier_append(_EXIT)
            path.append(state)
            on_path.add(state)
        if space.is_deadlock(state):
            graph.mark_deadlock(state)
            deadlocks += 1
            for observer in observers:
                if observer.on_deadlock(state):
                    stop = "observer"
            if stop_at_first_deadlock:
                stop = "deadlock"
                break
            if stop is not None:
                break
        source_index = index_get(state)
        assert source_index is not None
        out_edges = edge_lists[source_index]
        for label, successor in space.successors(state, ctx):
            successor_total += 1
            target_index = index_get(successor)
            if target_index is None:
                if num_states >= cap:
                    stop = "state-budget"
                    break
                target_index = insert_new(successor)
                num_states += 1
                frontier_append(successor)
                out_edges.append((label, target_index))
                if has_observers:
                    for observer in observers:
                        if observer.on_edge(state, label, successor, True):
                            stop = "observer"
                    for observer in observers:
                        if observer.on_state(successor, ctx):
                            stop = "observer"
                    if stop is not None:
                        break
            else:
                out_edges.append((label, target_index))
                if has_observers:
                    for observer in observers:
                        if observer.on_edge(state, label, successor, False):
                            stop = "observer"
                    if stop is not None:
                        break

    stats.states = num_states
    stats.expanded = expanded
    stats.deadlocks = deadlocks
    stats.peak_frontier = peak_frontier
    stats.successor_total = successor_total
    stats.elapsed_seconds = time.perf_counter() - start
    exhaustive = stop is None or stop == "deadlock"
    outcome = SearchOutcome(
        graph=graph, exhaustive=exhaustive, stop_reason=stop, stats=stats
    )
    for observer in observers:
        observer.on_done(outcome)
    return outcome
