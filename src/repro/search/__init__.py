"""Generic instrumented search core shared by every explicit explorer.

The full, stubborn-set, generalized partial-order and timed state-class
analyzers are all thin :class:`SearchSpace` adapters driven by the single
budgeted loop in :mod:`repro.search.core`.  See DESIGN.md ("The search
core") for the architecture.
"""

from repro.search.core import (
    INSTRUMENTATION_FIELDS,
    SearchContext,
    SearchOutcome,
    SearchSpace,
    SearchStats,
    abort_note,
    explore,
    raise_if_bounded,
)
from repro.search.graph import ReachabilityGraph
from repro.search.limits import (
    Deadline,
    ExplorationLimitReached,
    TimeLimitReached,
    stopwatch,
)
from repro.search.observers import MarkingQueryObserver, SearchObserver
from repro.search.query import QueryResult, find_state
from repro.search.witness import DeadlockWitness, extract_witness

__all__ = [
    "INSTRUMENTATION_FIELDS",
    "Deadline",
    "DeadlockWitness",
    "ExplorationLimitReached",
    "MarkingQueryObserver",
    "QueryResult",
    "ReachabilityGraph",
    "SearchContext",
    "SearchObserver",
    "SearchOutcome",
    "SearchSpace",
    "SearchStats",
    "TimeLimitReached",
    "abort_note",
    "explore",
    "extract_witness",
    "find_state",
    "raise_if_bounded",
    "stopwatch",
]
