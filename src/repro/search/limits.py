"""Resource budgets shared by every exploration loop.

The single exploration driver (:mod:`repro.search.core`) enforces state
and wall-clock budgets cooperatively and returns *partial* results; the
exception types below exist for the thin compatibility wrappers
(``explore`` / ``explore_reduced`` / ``explore_gpo`` / ``explore_classes``)
whose historical contract is to raise on overruns, and for analyzers with
no explicit state graph (the symbolic engine's fixpoint loop).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Deadline",
    "ExplorationLimitReached",
    "TimeLimitReached",
    "stopwatch",
]


class ExplorationLimitReached(RuntimeError):
    """Raised when an explorer exceeds its configured state budget.

    ``states_explored`` carries the number of states the explorer had
    actually stored when it gave up (the driver stops exactly at the
    budget), so overrun reports can show real progress.
    """

    def __init__(self, limit: int, states_explored: int | None = None) -> None:
        super().__init__(f"state limit of {limit} states exceeded")
        self.limit = limit
        self.states_explored = states_explored


class TimeLimitReached(RuntimeError):
    """Raised when an analyzer exceeds its configured wall-time budget.

    ``states_explored`` carries the progress made before the deadline hit
    (states, events or fixpoint iterations, depending on the analyzer).
    """

    def __init__(
        self, seconds: float, states_explored: int | None = None
    ) -> None:
        super().__init__(f"time limit of {seconds:.1f}s exceeded")
        self.seconds = seconds
        self.states_explored = states_explored


class Deadline:
    """A cooperative wall-clock budget checked inside exploration loops.

    The generic driver calls :meth:`expired` once per expanded state and
    stops with a partial result; analyzers without a driver call
    :meth:`check`, which raises :class:`TimeLimitReached` carrying the
    progress made so far.  ``Deadline.of(None)`` returns ``None`` so
    callers can guard with ``if deadline is not None``.
    """

    __slots__ = ("seconds", "expires_at")

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.expires_at = time.perf_counter() + seconds

    @classmethod
    def of(cls, seconds: float | None) -> "Deadline | None":
        """Build a deadline, or ``None`` when no time budget applies."""
        return None if seconds is None else cls(seconds)

    def expired(self) -> bool:
        """True once the wall clock has passed the deadline."""
        return time.perf_counter() > self.expires_at

    def check(self, states_explored: int | None = None) -> None:
        """Raise :class:`TimeLimitReached` when the deadline has passed."""
        if time.perf_counter() > self.expires_at:
            raise TimeLimitReached(self.seconds, states_explored)


@contextmanager
def stopwatch() -> Iterator[list[float]]:
    """Context manager measuring wall time into a single-element list.

    >>> with stopwatch() as elapsed:
    ...     pass
    >>> elapsed[0] >= 0.0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
