"""Property goals for the generic search driver.

This is where a :class:`~repro.props.ast.Property` meets the budgeted
search core: :func:`compile_goal` turns an atomic ``reachable(p)`` /
``invariant(p)`` question into a :class:`~repro.search.observers.
MarkingQueryObserver` that terminates the search at the first deciding
state — the target for a reachability question, a violation for an
invariant — plus the bookkeeping to turn the search outcome into a
three-valued verdict and a witness trace.  Every explicit explorer
(full, timed; the stubborn explorer refuses non-deadlock properties)
shares this one implementation, so early termination and witness
extraction behave identically across analyzers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generic, Hashable, TypeVar

from repro.props.ast import (
    Invariant,
    Not,
    Property,
    PropertyError,
    Reachable,
)
from repro.props.compile import check_places, predicate_fn
from repro.search.observers import MarkingQueryObserver
from repro.search.witness import DeadlockWitness, state_witness

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.net.petrinet import Marking, PetriNet
    from repro.search.graph import ReachabilityGraph

__all__ = ["PropertyGoal", "compile_goal"]

S = TypeVar("S", bound=Hashable)


class PropertyGoal(Generic[S]):
    """One compiled search goal: observer + verdict + witness rules.

    ``kind`` is ``"reachable"`` (stop on a state satisfying the
    predicate; a hit proves the property) or ``"invariant"`` (stop on a
    state *violating* the predicate; a hit refutes it).  A miss decides
    only when the search was exhaustive — and even then only for
    analyzers whose reduction preserves the fragment (declared in
    :mod:`repro.props.compat`).
    """

    def __init__(
        self,
        kind: str,
        observer: MarkingQueryObserver[S],
        marking_of: "Callable[[S], Marking]",
    ) -> None:
        self.kind = kind
        self.observer = observer
        self._marking_of = marking_of

    @property
    def hit(self) -> bool:
        """Did the search reach a deciding state?"""
        return self.observer.matched is not None

    @property
    def witness_label(self) -> str:
        return "goal" if self.kind == "reachable" else "violation"

    def holds(self, exhaustive: bool) -> bool | None:
        """Three-valued verdict given the search's exhaustiveness."""
        if self.kind == "reachable":
            return True if self.hit else (False if exhaustive else None)
        return False if self.hit else (True if exhaustive else None)

    def witness(
        self, net: "PetriNet", graph: "ReachabilityGraph[S]"
    ) -> DeadlockWitness | None:
        """Shortest-trace witness of the deciding state, if any."""
        if self.observer.matched is None:
            return None
        return state_witness(
            net,
            graph,
            self.observer.matched,
            decode=self._marking_of,
            label=self.witness_label,
        )


def compile_goal(
    net: "PetriNet",
    prop: Property,
    *,
    marking_of: "Callable[[S], Marking] | None" = None,
) -> PropertyGoal[S]:
    """Compile an atomic property into a search goal.

    ``marking_of`` maps a search state onto a classical marking (packed
    kernel integers pass their ``decode``; timed state classes project
    ``cls.marking``; plain marking spaces omit it).  Raises
    :class:`~repro.props.ast.PropertyError` for non-atomic properties or
    unknown places — compound properties are decomposed by
    :func:`repro.props.eval.run_property` before reaching the driver.
    """
    check_places(net, prop)
    if isinstance(prop, Reachable):
        kind, target = "reachable", prop.pred
    elif isinstance(prop, Invariant):
        kind, target = "invariant", Not(prop.pred)
    else:
        raise PropertyError(
            f"{prop.text()!r} does not compile to a search goal"
        )
    fn = predicate_fn(net, target)
    decode: "Callable[[S], Marking]" = (
        marking_of if marking_of is not None else (lambda state: state)
    )
    names = net.marking_names

    def predicate(state: S) -> bool:
        return fn(names(decode(state)))

    observer: MarkingQueryObserver[S] = MarkingQueryObserver(predicate)
    return PropertyGoal(kind, observer, decode)
