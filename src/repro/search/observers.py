"""Observer hooks for the generic exploration driver.

Observers watch a search as it runs: the driver calls ``on_state`` for
every newly stored state (including the initial one), ``on_edge`` for
every edge added, ``on_deadlock`` for every recorded deadlock, and
``on_done`` once with the final :class:`~repro.search.core.SearchOutcome`.
Any hook except ``on_done`` may return a truthy value to request early
termination — the driver then stops with ``stop_reason="observer"``.

:class:`MarkingQueryObserver` is the on-the-fly reachability query from
the paper's verification setting: it terminates the search the moment a
state satisfying the target predicate is stored, without building the
rest of the graph.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Hashable, TypeVar

__all__ = ["MarkingQueryObserver", "SearchObserver"]

S = TypeVar("S", bound=Hashable)


class SearchObserver(Generic[S]):
    """No-op base class; subclasses override the hooks they care about."""

    def on_state(self, state: S, ctx: Any) -> bool | None:
        """A new state was stored.  Return truthy to stop the search."""
        return None

    def on_edge(
        self, source: S, label: str, target: S, is_new: bool
    ) -> bool | None:
        """An edge was added.  Return truthy to stop the search."""
        return None

    def on_deadlock(self, state: S) -> bool | None:
        """A deadlock was recorded.  Return truthy to stop the search."""
        return None

    def on_done(self, outcome: Any) -> None:
        """The search finished; ``outcome`` is the final SearchOutcome."""
        return None


class MarkingQueryObserver(SearchObserver[S]):
    """Stop the search as soon as a state satisfies ``predicate``.

    After the run, ``matched`` holds the first satisfying state (or
    ``None``); the driver reports ``stop_reason="observer"`` when the
    query terminated the search early.
    """

    def __init__(self, predicate: Callable[[S], bool]) -> None:
        self.predicate = predicate
        self.matched: S | None = None

    def on_state(self, state: S, ctx: Any) -> bool:
        if self.matched is None and self.predicate(state):
            self.matched = state
            return True
        return False
