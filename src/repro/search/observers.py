"""Observer hooks for the generic exploration driver.

Observers watch a search as it runs: the driver calls ``on_state`` for
every newly stored state (including the initial one), ``on_edge`` for
every edge added, ``on_deadlock`` for every recorded deadlock, and
``on_done`` once with the final :class:`~repro.search.core.SearchOutcome`.
Any hook except ``on_done`` may return a truthy value to request early
termination — the driver then stops with ``stop_reason="observer"``.

:class:`MarkingQueryObserver` is the on-the-fly reachability query from
the paper's verification setting: it terminates the search the moment a
state satisfying the target predicate is stored, without building the
rest of the graph.

:class:`TracingObserver` wires a search into the observability layer
(:mod:`repro.obs`).  It is *passive* — the driver skips the
per-successor ``on_state``/``on_edge`` dispatch when only passive
observers are attached, so tracing a run never changes the hot loop.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Hashable, TypeVar

from repro.obs import names
from repro.obs.tracer import Span, TracerLike, current_tracer

__all__ = ["MarkingQueryObserver", "SearchObserver", "TracingObserver"]

S = TypeVar("S", bound=Hashable)


class SearchObserver(Generic[S]):
    """No-op base class; subclasses override the hooks they care about."""

    def on_state(self, state: S, ctx: Any) -> bool | None:
        """A new state was stored.  Return truthy to stop the search."""
        return None

    def on_edge(
        self, source: S, label: str, target: S, is_new: bool
    ) -> bool | None:
        """An edge was added.  Return truthy to stop the search."""
        return None

    def on_deadlock(self, state: S) -> bool | None:
        """A deadlock was recorded.  Return truthy to stop the search."""
        return None

    def on_done(self, outcome: Any) -> None:
        """The search finished; ``outcome`` is the final SearchOutcome."""
        return None


class MarkingQueryObserver(SearchObserver[S]):
    """Stop the search as soon as a state satisfies ``predicate``.

    After the run, ``matched`` holds the first satisfying state (or
    ``None``); the driver reports ``stop_reason="observer"`` when the
    query terminated the search early.
    """

    def __init__(self, predicate: Callable[[S], bool]) -> None:
        self.predicate = predicate
        self.matched: S | None = None

    def on_state(self, state: S, ctx: Any) -> bool:
        if self.matched is None and self.predicate(state):
            self.matched = state
            return True
        return False


class TracingObserver(SearchObserver[S]):
    """Emit one :data:`~repro.obs.names.SPAN_SEARCH` span per search.

    The span opens on the driver's initial ``on_state`` call and closes
    in ``on_done`` carrying the outcome's headline stats as attributes
    (expanded states, peak frontier, deadlocks, stop reason).  Being
    ``passive``, the observer sees no per-successor callbacks; all
    counts come from the driver's own :class:`SearchStats`, so the trace
    can never disagree with the result.
    """

    #: Driver contract: passive observers skip per-successor dispatch.
    passive = True

    def __init__(self, tracer: TracerLike | None = None, **attrs: Any) -> None:
        self._tracer = tracer if tracer is not None else current_tracer()
        self._attrs = attrs
        self._span: Span | None = None

    def on_state(self, state: S, ctx: Any) -> None:
        if self._span is None and self._tracer.enabled:
            opened = self._tracer.span(names.SPAN_SEARCH, **self._attrs)
            self._span = opened if isinstance(opened, Span) else None
        return None

    def on_done(self, outcome: Any) -> None:
        if self._span is None:
            return
        stats = outcome.stats
        self._span.close(
            states=stats.states,
            expanded=stats.expanded,
            deadlocks=stats.deadlocks,
            peak_frontier=stats.peak_frontier,
            exhaustive=outcome.exhaustive,
            stop_reason=outcome.stop_reason,
        )
        self._span = None
