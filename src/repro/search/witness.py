"""Witness records and trace extraction over explored graphs.

Every analyzer reports counterexamples as :class:`DeadlockWitness` values;
:func:`extract_witness` recovers the shortest trace to a recorded deadlock
from any explored :class:`~repro.search.graph.ReachabilityGraph` whose
states are classical markings.  Both the full and the stubborn-set
explorers share this single implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, TypeVar

from repro.search.graph import ReachabilityGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.net.petrinet import Marking, PetriNet

__all__ = ["DeadlockWitness", "extract_witness", "state_witness"]


@dataclass(frozen=True)
class DeadlockWitness:
    """A concrete witness marking plus a firing trace reaching it.

    ``marking`` holds place *names*; ``trace`` holds transition names from
    the initial marking.  For GPN analysis the trace steps may be sets of
    simultaneously fired transitions rendered as ``{a,b}``.  ``label``
    names what the marking witnesses (a deadlock by default; the safety
    checker reuses the type for bad-marking witnesses).
    """

    marking: frozenset[str]
    trace: tuple[str, ...]
    label: str = "deadlock"

    def __str__(self) -> str:
        marking = "{" + ", ".join(sorted(self.marking)) + "}"
        if not self.trace:
            # An empty trace does not imply the initial marking: symbolic
            # analysis and reduction back-mapping report trace-less
            # witnesses for arbitrary reachable markings.
            return f"{self.label} at marking {marking}"
        return f"{self.label} at {marking} via " + " ; ".join(self.trace)


S = TypeVar("S", bound=Hashable)


def extract_witness(
    net: "PetriNet",
    graph: "ReachabilityGraph[S]",
    *,
    decode: "Callable[[S], Marking] | None" = None,
) -> DeadlockWitness | None:
    """Shortest trace to some deadlock state in an explored graph.

    Graph states are classical markings by default; explorers carrying
    packed integer markings pass their kernel's ``decode`` so the witness
    crosses back to the frozenset representation here, at the report
    boundary.  Ties between equally short deadlocks break on discovery
    order (not ``deadlocks``-set iteration order), so the kernel and
    reference paths extract the *same* witness from their byte-identical
    graphs.
    """
    deadlocks = graph.deadlocks
    best: tuple[int, S, list[tuple[str, S]]] | None = None
    for state in graph.states():
        if state not in deadlocks:
            continue
        path = graph.path_to(state)
        if path is None:
            continue
        if best is None or len(path) < best[0]:
            best = (len(path), state, path)
    if best is None:
        return None
    _, state, path = best
    marking = decode(state) if decode is not None else state
    return DeadlockWitness(
        marking=net.marking_names(marking),
        trace=tuple(label for label, _ in path),
    )


def state_witness(
    net: "PetriNet",
    graph: "ReachabilityGraph[S]",
    state: S,
    *,
    decode: "Callable[[S], Marking] | None" = None,
    label: str = "goal",
) -> DeadlockWitness | None:
    """Shortest trace to one specific explored state.

    The property layer's goal observers use this to turn the state that
    decided a ``reachable``/``invariant`` question into a replayable
    trace, with the same decode-at-the-boundary convention as
    :func:`extract_witness`.
    """
    path = graph.path_to(state)
    if path is None:
        return None
    marking = decode(state) if decode is not None else state
    return DeadlockWitness(
        marking=net.marking_names(marking),
        trace=tuple(step for step, _ in path),
        label=label,
    )
