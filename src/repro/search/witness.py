"""Witness records and trace extraction over explored graphs.

Every analyzer reports counterexamples as :class:`DeadlockWitness` values;
:func:`extract_witness` recovers the shortest trace to a recorded deadlock
from any explored :class:`~repro.search.graph.ReachabilityGraph` whose
states are classical markings.  Both the full and the stubborn-set
explorers share this single implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.search.graph import ReachabilityGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.net.petrinet import Marking, PetriNet

__all__ = ["DeadlockWitness", "extract_witness"]


@dataclass(frozen=True)
class DeadlockWitness:
    """A concrete witness marking plus a firing trace reaching it.

    ``marking`` holds place *names*; ``trace`` holds transition names from
    the initial marking.  For GPN analysis the trace steps may be sets of
    simultaneously fired transitions rendered as ``{a,b}``.  ``label``
    names what the marking witnesses (a deadlock by default; the safety
    checker reuses the type for bad-marking witnesses).
    """

    marking: frozenset[str]
    trace: tuple[str, ...]
    label: str = "deadlock"

    def __str__(self) -> str:
        marking = "{" + ", ".join(sorted(self.marking)) + "}"
        if not self.trace:
            return f"{self.label} at initial marking {marking}"
        return f"{self.label} at {marking} via " + " ; ".join(self.trace)


def extract_witness(
    net: "PetriNet", graph: "ReachabilityGraph[Marking]"
) -> DeadlockWitness | None:
    """Shortest trace to some deadlock state in an explored graph."""
    best: tuple[int, "Marking", list[tuple[str, "Marking"]]] | None = None
    for marking in graph.deadlocks:
        path = graph.path_to(marking)
        if path is None:
            continue
        if best is None or len(path) < best[0]:
            best = (len(path), marking, path)
    if best is None:
        return None
    _, marking, path = best
    return DeadlockWitness(
        marking=net.marking_names(marking),
        trace=tuple(label for label, _ in path),
    )
