"""On-the-fly state queries over any :class:`SearchSpace`.

:func:`find_state` drives a space just far enough to answer "is a state
satisfying this predicate reachable?" — it attaches a
:class:`~repro.search.observers.MarkingQueryObserver` so the search stops
at the first hit instead of building the full graph.  A negative answer
is conclusive only when the underlying search was exhaustive, which the
result records; for reduced searches (stubborn sets preserve deadlocks,
not general reachability) callers must treat negatives as inconclusive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

from repro.search.core import SearchOutcome, SearchSpace, explore
from repro.search.observers import MarkingQueryObserver

__all__ = ["QueryResult", "find_state"]

S = TypeVar("S", bound=Hashable)


@dataclass
class QueryResult(Generic[S]):
    """Outcome of an on-the-fly reachability query.

    ``reached`` is True when a satisfying state was found, in which case
    ``state`` holds it and ``trace`` the shortest label path to it inside
    the explored graph.  ``exhaustive`` is True when the search drained
    the space without finding one — only then is a negative conclusive.
    """

    reached: bool
    state: S | None
    trace: tuple[str, ...] | None
    exhaustive: bool
    outcome: SearchOutcome[S]

    @property
    def conclusive(self) -> bool:
        """True when the answer (either way) is definitive."""
        return self.reached or self.exhaustive


def find_state(
    space: SearchSpace[S],
    predicate,
    *,
    order: str = "bfs",
    max_states: int | None = None,
    max_seconds: float | None = None,
) -> QueryResult[S]:
    """Search ``space`` for a state satisfying ``predicate``."""
    query: MarkingQueryObserver[S] = MarkingQueryObserver(predicate)
    outcome = explore(
        space,
        order=order,
        max_states=max_states,
        max_seconds=max_seconds,
        observers=(query,),
    )
    if query.matched is None:
        return QueryResult(
            reached=False,
            state=None,
            trace=None,
            exhaustive=outcome.exhaustive,
            outcome=outcome,
        )
    path = outcome.graph.path_to(query.matched)
    trace = tuple(label for label, _ in path) if path is not None else None
    return QueryResult(
        reached=True,
        state=query.matched,
        trace=trace,
        exhaustive=outcome.exhaustive,
        outcome=outcome,
    )
