"""Berthomieu-Diaz state classes for time Petri nets.

A *state class* abstracts the uncountably many timed states sharing a
marking into ``(marking, firing domain)``, where the domain constrains the
remaining firing delays ``θ_t`` of the enabled transitions by a system of
difference inequalities.  We store the domain as a canonical **difference
bound matrix** (DBM) over the enabled transitions plus a reference
variable, so classes compare and hash structurally — the key to a finite
state-class graph on bounded nets.

The firing rule (Berthomieu-Diaz 1991, in DBM form):

1. ``f`` is *firable* from ``(m, D)`` iff ``D ∧ {θ_f ≤ θ_j ∀ j enabled}``
   is consistent;
2. the successor domain is obtained from that conjunction by the change of
   variables ``θ'_j = θ_j − θ_f`` for *persisting* transitions — in DBM
   terms, their new bounds against the reference are their old bounds
   against ``θ_f`` — dropping ``f`` and the disabled transitions, and
   adding fresh ``[eft, lft]`` variables for newly enabled ones;
3. canonicalization (all-pairs shortest paths) makes the representation
   unique.

Persistence uses the standard rule: ``t`` persists over the firing of
``f`` iff ``t ≠ f`` and ``t`` stays enabled in the intermediate marking
``m − •f``; every other transition enabled in the successor marking is
*newly* enabled and has its clock reset.
"""

from __future__ import annotations

from typing import Iterator

from repro.net.kernel import MarkingKernel
from repro.net.petrinet import Marking
from repro.timed.tpn import TimedPetriNet

__all__ = ["INF", "StateClass", "initial_class", "firable", "fire_class"]

#: Infinity for DBM entries (latest firing times may be unbounded).
INF = None


def _add(a: int | None, b: int | None) -> int | None:
    """Addition over ints extended with ``None`` = +∞."""
    if a is None or b is None:
        return None
    return a + b


def _le(a: int | None, b: int | None) -> bool:
    """``a <= b`` over ints extended with ``None`` = +∞."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


def _min(a: int | None, b: int | None) -> int | None:
    return a if _le(a, b) else b


class StateClass:
    """An immutable state class ``(marking, canonical DBM)``.

    ``variables`` lists the enabled transition indices in sorted order;
    the DBM row/column 0 is the reference (θ = 0), row/column ``i + 1``
    corresponds to ``variables[i]``.  ``dbm[x][y]`` bounds ``θ_x − θ_y``.
    """

    __slots__ = ("marking", "variables", "dbm", "_hash")

    def __init__(
        self,
        marking: Marking,
        variables: tuple[int, ...],
        dbm: tuple[tuple[int | None, ...], ...],
    ) -> None:
        self.marking = marking
        self.variables = variables
        self.dbm = dbm
        self._hash: int | None = None

    # ------------------------------------------------------------------
    def enabled(self) -> tuple[int, ...]:
        """Transition indices enabled in this class's marking."""
        return self.variables

    def delay_bounds(self, t: int) -> tuple[int, int | None]:
        """Remaining-delay interval ``[lo, hi]`` of enabled ``t``."""
        index = self.variables.index(t) + 1
        upper = self.dbm[index][0]
        lower_neg = self.dbm[0][index]  # θ0 - θ_t <= ... => θ_t >= -...
        lower = 0 if lower_neg is None else max(0, -lower_neg)
        return (lower, upper)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateClass):
            return NotImplemented
        return (
            self.marking == other.marking
            and self.variables == other.variables
            and self.dbm == other.dbm
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.marking, self.variables, self.dbm))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"StateClass(|m|={len(self.marking)}, "
            f"enabled={list(self.variables)})"
        )


def _canonicalize(
    matrix: list[list[int | None]],
) -> list[list[int | None]] | None:
    """Floyd-Warshall closure; ``None`` result means inconsistent."""
    n = len(matrix)
    for k in range(n):
        row_k = matrix[k]
        for i in range(n):
            d_ik = matrix[i][k]
            if d_ik is None:
                continue
            row_i = matrix[i]
            for j in range(n):
                candidate = _add(d_ik, row_k[j])
                if candidate is not None and not _le(row_i[j], candidate):
                    row_i[j] = candidate
    for i in range(n):
        diagonal = matrix[i][i]
        if diagonal is not None and diagonal < 0:
            return None
        matrix[i][i] = 0
    return matrix


def initial_class(tpn: TimedPetriNet) -> StateClass:
    """The initial state class: static intervals of the enabled set."""
    marking = tpn.net.initial_marking
    variables = tuple(sorted(tpn.net.enabled_transitions(marking)))
    n = len(variables) + 1
    matrix: list[list[int | None]] = [[INF] * n for _ in range(n)]
    for i in range(n):
        matrix[i][i] = 0
    for index, t in enumerate(variables, start=1):
        matrix[index][0] = tpn.lft(t)
        matrix[0][index] = -tpn.eft(t)
    closed = _canonicalize(matrix)
    assert closed is not None, "static intervals cannot be inconsistent"
    return StateClass(marking, variables, tuple(tuple(row) for row in closed))


def _constrained_matrix(
    cls: StateClass, f_index: int
) -> list[list[int | None]] | None:
    """``D ∧ {θ_f − θ_j ≤ 0 ∀ j}``, canonicalized (None = not firable)."""
    n = len(cls.variables) + 1
    matrix = [list(row) for row in cls.dbm]
    for j in range(1, n):
        if j != f_index and not _le(matrix[f_index][j], 0):
            matrix[f_index][j] = 0
    return _canonicalize(matrix)


def firable(tpn: TimedPetriNet, cls: StateClass, t: int) -> bool:
    """Can ``t`` fire first from this class?"""
    if t not in cls.variables:
        return False
    f_index = cls.variables.index(t) + 1
    return _constrained_matrix(cls, f_index) is not None


def fire_class(
    tpn: TimedPetriNet,
    cls: StateClass,
    t: int,
    *,
    kernel: MarkingKernel | None = None,
    bits: int | None = None,
) -> StateClass | None:
    """Successor state class after firing ``t``, or ``None`` if unfirable.

    With a :class:`~repro.net.kernel.MarkingKernel` the marking steps —
    firing, the intermediate marking ``m − •f``, the persistence subset
    tests and the new enabled set — run on packed integers (``bits`` may
    pass the caller's already-encoded marking); without one they run on
    the reference frozenset rules.  Both produce the same class.
    """
    if t not in cls.variables:
        return None
    f_index = cls.variables.index(t) + 1
    constrained = _constrained_matrix(cls, f_index)
    if constrained is None:
        return None

    net = tpn.net
    if kernel is not None:
        if bits is None:
            bits = kernel.encode(cls.marking)
        new_bits = kernel.fire(t, bits)
        intermediate_bits = bits & kernel.clear_mask[t]
        pre_mask = kernel.pre_mask
        persisting = [
            u
            for u in cls.variables
            if u != t and intermediate_bits & pre_mask[u] == pre_mask[u]
        ]
        # kernel.enabled_transitions is ascending == sorted.
        new_variables = tuple(kernel.enabled_transitions(new_bits))
        new_marking = kernel.decode(new_bits)
    else:
        new_marking = net.fire(t, cls.marking)
        intermediate = cls.marking - net.pre_places[t]
        persisting = [
            u
            for u in cls.variables
            if u != t and net.pre_places[u] <= intermediate
        ]
        new_variables = tuple(sorted(net.enabled_transitions(new_marking)))
    persisting_set = set(persisting)

    # Old DBM indices of the persisting transitions.
    old_index = {u: cls.variables.index(u) + 1 for u in persisting}
    n = len(new_variables) + 1
    matrix: list[list[int | None]] = [[INF] * n for _ in range(n)]
    for i in range(n):
        matrix[i][i] = 0
    for i, u in enumerate(new_variables, start=1):
        if u in persisting_set:
            oi = old_index[u]
            # θ'_u = θ_u − θ_f: bounds against the new reference are the
            # old bounds against θ_f.
            matrix[i][0] = constrained[oi][f_index]
            matrix[0][i] = constrained[f_index][oi]
            # Clocks keep running: remaining delays are non-negative.
            if not _le(matrix[0][i], 0):
                matrix[0][i] = 0
        else:
            matrix[i][0] = tpn.lft(u)
            matrix[0][i] = -tpn.eft(u)
    for i, u in enumerate(new_variables, start=1):
        if u not in persisting_set:
            continue
        for j, v in enumerate(new_variables, start=1):
            if v not in persisting_set or i == j:
                continue
            # Differences between persisting delays are unchanged.
            matrix[i][j] = constrained[old_index[u]][old_index[v]]
    closed = _canonicalize(matrix)
    if closed is None:  # cannot happen for a consistent firing
        return None
    return StateClass(
        new_marking, new_variables, tuple(tuple(row) for row in closed)
    )


def successors(
    tpn: TimedPetriNet, cls: StateClass
) -> Iterator[tuple[int, StateClass]]:
    """All ``(transition, successor class)`` pairs firable from ``cls``."""
    for t in cls.variables:
        successor = fire_class(tpn, cls, t)
        if successor is not None:
            yield (t, successor)
