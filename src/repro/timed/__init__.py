"""Time Petri nets and state-class analysis (the paper's §5 outlook).

Merlin-style time Petri nets with Berthomieu-Diaz state-class reachability:
the direction the paper names as ongoing work ("efficient timing
verification of concurrent systems, modeled as Timed Petri nets").
"""

from repro.timed.reach import analyze, explore_classes, timed_reachable_markings
from repro.timed.stateclass import (
    StateClass,
    firable,
    fire_class,
    initial_class,
)
from repro.timed.tpn import Interval, TimedNetBuilder, TimedPetriNet

__all__ = [
    "TimedPetriNet",
    "TimedNetBuilder",
    "Interval",
    "StateClass",
    "initial_class",
    "firable",
    "fire_class",
    "explore_classes",
    "timed_reachable_markings",
    "analyze",
]
