"""Time Petri nets (Merlin): safe nets with static firing intervals.

The paper's closing section points at "the efficient timing verification
of concurrent systems, modeled as Timed Petri nets" as the direction the
authors were extending the work towards (citing [7, 13]).  This package
implements that substrate: Merlin-style *time Petri nets*, where every
transition carries a static interval ``[eft, lft]`` — once continuously
enabled for ``eft`` time units it may fire, and it must fire before
``lft`` elapses (strong semantics) unless disabled first.

A :class:`TimedPetriNet` wraps a structural :class:`~repro.net.PetriNet`
with the interval map; the analysis lives in
:mod:`repro.timed.stateclass` (Berthomieu-Diaz state classes).

Intervals use non-negative integers with ``None`` as ∞ for the latest
firing time.  ``(0, None)`` — "any time" — makes the net behave exactly
like its untimed skeleton, a property the test-suite exploits.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.net.exceptions import NetStructureError, UnknownNodeError
from repro.net.petrinet import NetBuilder, PetriNet

__all__ = ["Interval", "TimedPetriNet", "TimedNetBuilder"]

#: A static firing interval: (earliest, latest); latest ``None`` means ∞.
Interval = tuple[int, int | None]


class TimedPetriNet:
    """An immutable time Petri net: structure + static intervals."""

    __slots__ = ("net", "intervals")

    def __init__(
        self, net: PetriNet, intervals: Mapping[str, Interval] | Iterable[Interval]
    ) -> None:
        if isinstance(intervals, Mapping):
            resolved: list[Interval] = []
            for t in net.transitions:
                if t not in intervals:
                    raise UnknownNodeError("transition interval", t)
                resolved.append(intervals[t])
            extra = set(intervals) - set(net.transitions)
            if extra:
                raise UnknownNodeError("transition", sorted(extra)[0])
        else:
            resolved = list(intervals)
            if len(resolved) != net.num_transitions:
                raise NetStructureError(
                    "interval list length must match the transition count"
                )
        for t, (eft, lft) in enumerate(resolved):
            if eft < 0:
                raise NetStructureError(
                    f"negative earliest firing time on "
                    f"{net.transitions[t]!r}"
                )
            if lft is not None and lft < eft:
                raise NetStructureError(
                    f"empty interval [{eft}, {lft}] on {net.transitions[t]!r}"
                )
        self.net = net
        self.intervals: tuple[Interval, ...] = tuple(resolved)

    def eft(self, t: int) -> int:
        """Earliest firing time of transition index ``t``."""
        return self.intervals[t][0]

    def lft(self, t: int) -> int | None:
        """Latest firing time of transition index ``t`` (``None`` = ∞)."""
        return self.intervals[t][1]

    def interval_of(self, name: str) -> Interval:
        """Interval of a transition given by name."""
        return self.intervals[self.net.transition_id(name)]

    @classmethod
    def untimed(cls, net: PetriNet) -> "TimedPetriNet":
        """Wrap a net with ``[0, ∞)`` everywhere (timed ≡ untimed)."""
        return cls(net, [(0, None)] * net.num_transitions)

    def __repr__(self) -> str:
        return f"TimedPetriNet({self.net.name!r}, |T|={self.net.num_transitions})"


class TimedNetBuilder:
    """Builder declaring places, timed transitions and arcs together.

    >>> b = TimedNetBuilder("t")
    >>> b.place("p", marked=True)
    'p'
    >>> b.transition("fast", interval=(0, 1), inputs=["p"])
    'fast'
    >>> b.build().interval_of("fast")
    (0, 1)
    """

    def __init__(self, name: str = "timed_net") -> None:
        self._builder = NetBuilder(name)
        self._intervals: list[Interval] = []

    def place(self, name: str, *, marked: bool = False) -> str:
        """Declare a place."""
        return self._builder.place(name, marked=marked)

    def transition(
        self,
        name: str,
        *,
        interval: Interval = (0, None),
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
    ) -> str:
        """Declare a transition with its static firing interval."""
        result = self._builder.transition(name, inputs=inputs, outputs=outputs)
        self._intervals.append(interval)
        return result

    def arc(self, source: str, target: str) -> None:
        """Add a flow arc (see :meth:`NetBuilder.arc`)."""
        self._builder.arc(source, target)

    def build(self) -> TimedPetriNet:
        """Validate and freeze the timed net."""
        return TimedPetriNet(self._builder.build(), self._intervals)
