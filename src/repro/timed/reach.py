"""State-class graph exploration for time Petri nets.

Builds the Berthomieu-Diaz state-class graph and answers the questions the
untimed analyzers answer for plain nets: reachable markings *under timing*,
timed deadlocks, and which behaviours timing prunes relative to the
untimed skeleton (timed reachability is always a subset — asserted by the
property tests).

The breadth-first walk runs on the generic driver in
:mod:`repro.search.core`; :class:`StateClassSpace` only supplies the
state-class successor rule.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.stats import AnalysisResult, DeadlockWitness, stopwatch
from repro.net.petrinet import Marking
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.props.ast import Property
from repro.props.eval import (
    engine_property,
    needs_decomposition,
    property_extras,
    reject_safe,
    run_property,
)
from repro.search.core import SearchContext, abort_note, raise_if_bounded
from repro.search.core import explore as _drive
from repro.search.goals import compile_goal
from repro.search.graph import ReachabilityGraph
from repro.search.observers import TracingObserver
from repro.timed.stateclass import StateClass, fire_class, initial_class
from repro.timed.tpn import TimedPetriNet

__all__ = [
    "StateClassSpace",
    "analyze",
    "explore_classes",
    "timed_reachable_markings",
]


class StateClassSpace:
    """The Berthomieu-Diaz firing rule as a :class:`SearchSpace`.

    A class with enabled but *unfirable* transitions cannot occur (some
    enabled transition is always firable under strong semantics), so
    deadlocked classes are exactly those with no firable transition — the
    successor list is memoized per driver-visited class so the deadlock
    check and the successor hook share one computation.

    With ``use_kernel`` (the default) the marking half of the firing rule
    runs on the net's :class:`~repro.net.kernel.MarkingKernel` — the
    class's marking is packed once per expansion and the per-transition
    persistence/enabling tests are bitmask algebra; the state classes
    themselves keep their frozenset markings (the DBM dominates their
    identity anyway).
    """

    def __init__(self, tpn: TimedPetriNet, *, use_kernel: bool = True) -> None:
        self.tpn = tpn
        self.kernel = tpn.net.kernel() if use_kernel else None
        self.uses_kernel = use_kernel
        self._memo_class: StateClass | None = None
        self._memo_succs: list[tuple[str, StateClass]] = []

    def _succs(self, cls: StateClass) -> list[tuple[str, StateClass]]:
        if cls is not self._memo_class:
            kernel = self.kernel
            bits = None if kernel is None else kernel.encode(cls.marking)
            out: list[tuple[str, StateClass]] = []
            for t in cls.variables:
                successor = fire_class(
                    self.tpn, cls, t, kernel=kernel, bits=bits
                )
                if successor is not None:
                    out.append((self.tpn.net.transitions[t], successor))
            self._memo_succs = out
            self._memo_class = cls
        return self._memo_succs

    def initial(self) -> StateClass:
        return initial_class(self.tpn)

    def is_deadlock(self, cls: StateClass) -> bool:
        return not self._succs(cls)

    def successors(
        self, cls: StateClass, ctx: SearchContext[StateClass]
    ) -> Iterable[tuple[str, StateClass]]:
        return self._succs(cls)

    def instrumentation(self) -> dict[str, object]:
        """No adapter-specific counters beyond the driver's."""
        return {}


def explore_classes(
    tpn: TimedPetriNet,
    *,
    max_classes: int | None = None,
    max_seconds: float | None = None,
    use_kernel: bool = True,
) -> ReachabilityGraph[StateClass]:
    """Breadth-first construction of the state-class graph.

    Classes compare by (marking, canonical DBM); on bounded nets with
    integer intervals the graph is finite.  Raises on budget overruns like
    the untimed ``explore``; ``analyze`` uses the driver's partial results
    instead.
    """
    outcome = _drive(
        StateClassSpace(tpn, use_kernel=use_kernel),
        order="bfs",
        max_states=max_classes,
        max_seconds=max_seconds,
    )
    raise_if_bounded(outcome, max_states=max_classes, max_seconds=max_seconds)
    return outcome.graph


def timed_reachable_markings(
    tpn: TimedPetriNet,
    *,
    max_classes: int | None = None,
    max_seconds: float | None = None,
) -> set[Marking]:
    """Markings reachable when the timing constraints are respected."""
    graph = explore_classes(
        tpn, max_classes=max_classes, max_seconds=max_seconds
    )
    return {cls.marking for cls in graph.states()}


def analyze(
    tpn: TimedPetriNet,
    *,
    max_classes: int | None = None,
    max_seconds: float | None = None,
    want_witness: bool = True,
    use_kernel: bool = True,
    prop: "Property | str | None" = None,
) -> AnalysisResult:
    """Timed deadlock analysis packaged like the untimed analyzers.

    ``states`` counts state classes; ``extras["markings"]`` counts the
    distinct markings they cover.  A witness trace is a firing sequence
    of the state-class graph (feasible under some timing of the delays).
    Budget overruns are absorbed into a bounded, non-exhaustive result.
    ``use_kernel`` selects the bitmask marking steps (default) or the
    frozenset reference rule; both build the same class graph.

    ``prop`` asks a property question over *timed-reachable* markings: a
    goal observer projects each state class onto its marking, so
    ``reachable(p)`` means "some class whose marking satisfies ``p`` is
    reachable under the timing constraints".
    """
    goal_prop = engine_property(prop)
    if goal_prop is not None and needs_decomposition(goal_prop):
        return run_property(
            goal_prop,
            lambda leaf: analyze(
                tpn,
                max_classes=max_classes,
                max_seconds=max_seconds,
                want_witness=want_witness,
                use_kernel=use_kernel,
                prop=leaf,
            ),
            analyzer="timed",
            net_name=tpn.net.name,
        )
    space = StateClassSpace(tpn, use_kernel=use_kernel)
    goal = None
    if goal_prop is not None:
        reject_safe("timed", goal_prop)
        goal = compile_goal(
            tpn.net, goal_prop, marking_of=lambda cls: cls.marking
        )
    tracer = current_tracer()
    with tracer.span(
        names.SPAN_ANALYZE, analyzer="timed", net=tpn.net.name
    ) as root:
        # Consult the structural certificate of the underlying untimed net
        # before exploring (timing restricts, never extends, reachability).
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = tpn.net.static_analysis().safety_certificate.certified
        observers: tuple[object, ...] = (
            (TracingObserver(tracer),) if tracer.enabled else ()
        )
        if goal is not None:
            observers = (goal.observer, *observers)
        with stopwatch() as elapsed:
            outcome = _drive(
                space,
                order="bfs",
                max_states=max_classes,
                max_seconds=max_seconds,
                observers=observers,
            )
        graph = outcome.graph
        witness = None
        if goal is not None:
            if goal.hit and want_witness:
                with tracer.span(names.SPAN_WITNESS):
                    witness = goal.witness(tpn.net, graph)
        elif graph.deadlocks and want_witness:
            target = next(iter(graph.deadlocks))
            with tracer.span(names.SPAN_WITNESS):
                path = graph.path_to(target) or []
                witness = DeadlockWitness(
                    marking=tpn.net.marking_names(target.marking),
                    trace=tuple(label for label, _ in path),
                )
        markings = {cls.marking for cls in graph.states()}
        extras: dict[str, object] = {"markings": len(markings)}
        extras.update(outcome.stats.as_extras())
        extras[names.SAFETY_CERTIFIED] = certified
        note = abort_note(
            outcome.stop_reason, max_states=max_classes, max_seconds=max_seconds
        )
        if note is not None and not (goal is not None and goal.hit):
            extras[names.ABORTED] = note
        if goal is not None:
            extras.update(
                property_extras(goal_prop, goal.holds(outcome.exhaustive))
            )
        result = AnalysisResult(
            analyzer="timed",
            net_name=tpn.net.name,
            states=graph.num_states,
            edges=graph.num_edges,
            deadlock=bool(graph.deadlocks) if goal is None else False,
            time_seconds=elapsed[0],
            witness=witness,
            exhaustive=outcome.exhaustive or (goal is not None and goal.hit),
            extras=extras,
        )
        root.set(states=result.states, edges=result.edges)
    record_result(result)
    return result
