"""State-class graph exploration for time Petri nets.

Builds the Berthomieu-Diaz state-class graph and answers the questions the
untimed analyzers answer for plain nets: reachable markings *under timing*,
timed deadlocks, and which behaviours timing prunes relative to the
untimed skeleton (timed reachability is always a subset — asserted by the
property tests).
"""

from __future__ import annotations

from collections import deque

from repro.analysis.graph import ReachabilityGraph
from repro.analysis.stats import (
    AnalysisResult,
    DeadlockWitness,
    ExplorationLimitReached,
    stopwatch,
)
from repro.net.petrinet import Marking
from repro.timed.stateclass import StateClass, fire_class, initial_class
from repro.timed.tpn import TimedPetriNet

__all__ = ["explore_classes", "timed_reachable_markings", "analyze"]


def explore_classes(
    tpn: TimedPetriNet, *, max_classes: int | None = None
) -> ReachabilityGraph[StateClass]:
    """Breadth-first construction of the state-class graph.

    Classes compare by (marking, canonical DBM); on bounded nets with
    integer intervals the graph is finite.  A class with enabled but
    *unfirable* transitions cannot occur (some enabled transition is
    always firable under strong semantics), so deadlocked classes are
    exactly those with no enabled transition.
    """
    initial = initial_class(tpn)
    graph: ReachabilityGraph[StateClass] = ReachabilityGraph(initial)
    queue: deque[StateClass] = deque([initial])
    while queue:
        cls = queue.popleft()
        fired_any = False
        for t in cls.variables:
            successor = fire_class(tpn, cls, t)
            if successor is None:
                continue
            fired_any = True
            is_new = successor not in graph
            graph.add_edge(cls, tpn.net.transitions[t], successor)
            if is_new:
                if max_classes is not None and graph.num_states > max_classes:
                    raise ExplorationLimitReached(max_classes)
                queue.append(successor)
        if not fired_any:
            graph.mark_deadlock(cls)
    return graph


def timed_reachable_markings(
    tpn: TimedPetriNet, *, max_classes: int | None = None
) -> set[Marking]:
    """Markings reachable when the timing constraints are respected."""
    graph = explore_classes(tpn, max_classes=max_classes)
    return {cls.marking for cls in graph.states()}


def analyze(
    tpn: TimedPetriNet,
    *,
    max_classes: int | None = None,
    want_witness: bool = True,
) -> AnalysisResult:
    """Timed deadlock analysis packaged like the untimed analyzers.

    ``states`` counts state classes; ``extras["markings"]`` counts the
    distinct markings they cover.  A witness trace is a firing sequence
    of the state-class graph (feasible under some timing of the delays).
    """
    with stopwatch() as elapsed:
        graph = explore_classes(tpn, max_classes=max_classes)
    witness = None
    if graph.deadlocks and want_witness:
        target = next(iter(graph.deadlocks))
        path = graph.path_to(target) or []
        witness = DeadlockWitness(
            marking=tpn.net.marking_names(target.marking),
            trace=tuple(label for label, _ in path),
        )
    markings = {cls.marking for cls in graph.states()}
    return AnalysisResult(
        analyzer="timed",
        net_name=tpn.net.name,
        states=graph.num_states,
        edges=graph.num_edges,
        deadlock=bool(graph.deadlocks),
        time_seconds=elapsed[0],
        witness=witness,
        extras={"markings": len(markings)},
    )
