"""Trace-context propagation: one trace id per logical request.

A :class:`TraceContext` carries the correlation key of one end-to-end
request — a ``trace_id`` minted at the entry point (``POST /v1/jobs``,
``gpo race``, ``gpo profile``) plus the span id the *next* process
boundary should parent to.  The context is **process-global ambient**
state, deliberately not thread-local: the serve daemon runs a single
event loop, the CLI is single-threaded, and ``fork``-based workers (the
engine pool, the sharded parallel explorer) inherit it for free — which
is exactly the propagation path the merged trace needs.

Propagation rules (see DESIGN.md §13):

- the entry point mints ``TraceContext(new_trace_id())`` and installs it
  with :func:`use_context` around the request's whole lifetime;
- spans opened while a context is active are stamped with its
  ``trace_id`` (at *creation*, so a span that outlives the context keeps
  the id of the request that opened it);
- a span opened with an **empty** nesting stack parents itself to
  ``parent_span_id`` — this is how a forked worker's root span attaches
  to the span the coordinator opened for it on the other side of the
  process boundary;
- crossing an explicit boundary (a pipe to a shard worker), the sender
  ships ``ctx.child(current_span_id)`` and the receiver installs it.

The module is a leaf (imports nothing from ``repro``), so the tracer,
the engine and the serve layer can all depend on it without cycles.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "TraceContext",
    "current_context",
    "new_trace_context",
    "new_trace_id",
    "set_context",
    "use_context",
]


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The correlation key of one logical request.

    ``trace_id`` joins spans, JSONL lifecycle events and the serve
    job record; ``parent_span_id`` is the span id a child process's
    root spans should parent to (``None`` at the entry point).
    """

    trace_id: str
    parent_span_id: str | None = None

    def child(self, parent_span_id: str | None) -> "TraceContext":
        """The context to ship across a process boundary: same trace,
        re-parented to the span covering the boundary on this side."""
        return TraceContext(self.trace_id, parent_span_id)


def new_trace_context() -> TraceContext:
    """A fresh root context (minted trace id, no parent span)."""
    return TraceContext(new_trace_id())


_current: TraceContext | None = None


def current_context() -> TraceContext | None:
    """The ambient trace context, or ``None`` outside any request."""
    return _current


def set_context(ctx: TraceContext | None) -> TraceContext | None:
    """Install ``ctx`` as the ambient context; returns the previous one.

    Forked workers call this once at startup with the context the
    coordinator shipped; request-scoped installation should prefer
    :func:`use_context`.
    """
    global _current
    previous = _current
    _current = ctx
    return previous


@contextmanager
def use_context(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Scoped installation: ambient within the block, restored after."""
    previous = set_context(ctx)
    try:
        yield ctx
    finally:
        set_context(previous)
