"""Human-readable terminal summary of a trace.

Folds the flat span records into a tree (sibling spans with the same
name aggregate into one row — ten thousand ``stubborn/set`` spans
become a single line with a count), computes per-row *self time*
(duration minus the duration of direct children) and prints wall-time
percentages relative to the root.  Because self time is defined as the
exact remainder, a row's total always equals the sum of its children
plus its self time — the property ``gpo profile`` is accepted against.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["SummaryNode", "build_summary", "format_summary", "hot_spans"]


class SummaryNode:
    """Aggregate of all sibling spans sharing one name under one parent."""

    __slots__ = ("name", "count", "total_ns", "child_ns", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.child_ns = 0
        self.children: dict[str, SummaryNode] = {}

    @property
    def self_ns(self) -> int:
        """Time inside these spans not covered by their direct children."""
        return max(self.total_ns - self.child_ns, 0)

    def walk(self, depth: int = 0) -> Iterable[tuple[int, "SummaryNode"]]:
        """Depth-first traversal, children sorted by total time."""
        yield depth, self
        ordered = sorted(
            self.children.values(), key=lambda n: n.total_ns, reverse=True
        )
        for child in ordered:
            yield from child.walk(depth + 1)


def build_summary(records: Iterable[Mapping[str, Any]]) -> list[SummaryNode]:
    """Span records → aggregated root nodes (usually exactly one)."""
    materialized = [r for r in records if "span_id" in r]
    by_id = {r["span_id"]: r for r in materialized}

    # Resolve each record to its aggregate node, memoized by span id so
    # siblings of one name share a node while distinct parents don't.
    nodes: dict[str, SummaryNode] = {}
    roots: dict[str, SummaryNode] = {}

    def node_of(record: Mapping[str, Any]) -> SummaryNode:
        span_id = record["span_id"]
        found = nodes.get(span_id)
        if found is not None:
            return found
        name = record.get("name", "?")
        parent = by_id.get(record.get("parent_id"))
        if parent is None:
            made = roots.setdefault(name, SummaryNode(name))
        else:
            parent_node = node_of(parent)
            made = parent_node.children.setdefault(name, SummaryNode(name))
        nodes[span_id] = made
        return made

    for record in materialized:
        node = node_of(record)
        node.count += 1
        node.total_ns += int(record.get("dur_ns", 0))
        parent = by_id.get(record.get("parent_id"))
        if parent is not None:
            node_of(parent).child_ns += int(record.get("dur_ns", 0))

    return sorted(roots.values(), key=lambda n: n.total_ns, reverse=True)


def hot_spans(
    roots: list[SummaryNode], top: int = 5
) -> list[tuple[str, int, int]]:
    """Top rows by self time: ``(name, self_ns, count)`` descending."""
    flat: list[tuple[str, int, int]] = []
    for root in roots:
        for _, node in root.walk():
            flat.append((node.name, node.self_ns, node.count))
    flat.sort(key=lambda item: item[1], reverse=True)
    return flat[:top]


def _ms(ns: int) -> str:
    return f"{ns / 1e6:10.2f}ms"


def format_summary(
    records: Iterable[Mapping[str, Any]],
    metrics: MetricsRegistry | None = None,
    top: int = 5,
) -> str:
    """Render the span tree (+ optional metrics digest) for the terminal."""
    roots = build_summary(records)
    lines: list[str] = []
    if not roots:
        lines.append("(no spans recorded)")
    for root in roots:
        scale = root.total_ns or 1
        for depth, node in root.walk():
            pct = 100.0 * node.total_ns / scale
            indent = "  " * depth
            count = f" x{node.count}" if node.count > 1 else ""
            lines.append(
                f"{_ms(node.total_ns)} {pct:5.1f}%  "
                f"{indent}{node.name}{count}"
                f"  (self {_ms(node.self_ns).strip()})"
            )
    hottest = hot_spans(roots, top=top)
    if hottest:
        lines.append("")
        lines.append(f"hot spans (top {len(hottest)} by self time):")
        for name, self_ns, count in hottest:
            lines.append(f"  {_ms(self_ns)}  {name} x{count}")
    if metrics is not None and len(metrics):
        lines.append("")
        lines.append("metrics:")
        for instrument in metrics.collect():
            labels = ",".join(f"{k}={v}" for k, v in instrument.labels)
            label_part = f"{{{labels}}}" if labels else ""
            if isinstance(instrument, Histogram):
                lines.append(
                    f"  {instrument.name}{label_part}  "
                    f"count={instrument.count} mean={instrument.mean:.2f}"
                )
            else:
                value = instrument.value
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {instrument.name}{label_part}  {shown}")
    return "\n".join(lines)
