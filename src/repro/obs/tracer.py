"""Span-based tracing with an ambient (process-global) tracer.

A :class:`Span` is one timed region — monotonic ``perf_counter_ns``
start/end, a name from :mod:`repro.obs.names`, free-form attributes and
a parent link.  Nesting is tracked per thread: ``tracer.span(...)`` used
as a context manager parents itself to the innermost open span of the
current thread, which is how an analyzer's ``analyze`` root span ends up
owning the search span, which owns the per-marking stubborn-set spans.

Span IDs embed the producing process id, so spans recorded inside
forked engine workers merge into the parent's trace without collisions
(:meth:`Tracer.adopt`); ``perf_counter_ns`` is CLOCK_MONOTONIC on Linux
and therefore comparable across those processes.

**Pay for what you use**: the default ambient tracer is
:data:`NULL_TRACER`, whose ``span``/``event`` are allocation-free no-ops
returning a shared null context manager, and whose ``metrics`` registry
hands out null instruments.  Instrumented code either calls
:func:`span` unconditionally (per-phase granularity) or guards per-state
work behind ``current_tracer().enabled``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Union

from repro.obs.context import current_context
from repro.obs.flight import FLIGHT
from repro.obs.memory import peak_rss_kb, traced_memory_kb
from repro.obs.metrics import MetricsRegistry, NullMetrics, NULL_METRICS

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "event",
    "set_tracer",
    "span",
]

#: JSONL trace-record schema version (bumped on breaking changes).
TRACE_SCHEMA_VERSION = 1

#: Attribute value types serialized as-is; anything else is ``str()``-ed.
_PLAIN = (str, int, float, bool, type(None))

_id_counter = itertools.count(1)


class Span:
    """One timed region of a trace.  Use via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "pid",
        "tid",
        "start_ns",
        "end_ns",
        "attrs",
        "_tracer",
        "_stacked",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: str | None,
        attrs: dict[str, Any],
        stacked: bool,
    ) -> None:
        self.name = name
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.span_id = f"{self.pid:x}-{next(_id_counter):x}"
        # Trace context is captured at *creation*: a span that outlives
        # the request scope that opened it (the serve job span ends when
        # the worker is reaped) keeps the id of the request it belongs
        # to.  A span with no in-process parent attaches to the context's
        # parent span — this is how a forked worker's root span joins the
        # span the coordinator opened for it.
        ctx = current_context()
        self.trace_id = ctx.trace_id if ctx is not None else None
        if parent_id is None and ctx is not None:
            parent_id = ctx.parent_span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.end_ns: int | None = None
        self._tracer = tracer
        self._stacked = stacked
        self.start_ns = time.perf_counter_ns()

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        """Span duration (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def end(self, **attrs: Any) -> None:
        """Close the span and hand it to the tracer.  Idempotent."""
        if self.end_ns is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        self.end_ns = time.perf_counter_ns()
        self._tracer._finish(self)

    def close(self, **attrs: Any) -> None:
        """Pop the span off the nesting stack (if stacked) and end it.

        For stacked spans whose open and close live in different scopes
        (e.g. the search observer's span); ``with`` blocks do this
        automatically.
        """
        if self._stacked:
            self._tracer._pop(self)
        self.end(**attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def to_record(self) -> dict[str, Any]:
        """JSON-ready dict form (the unit of every exporter)."""
        record: dict[str, Any] = {
            "kind": "span",
            "v": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "span_id": self.span_id,
            "pid": self.pid,
            "tid": self.tid,
            "start_ns": self.start_ns,
            "dur_ns": self.duration_ns,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.attrs:
            record["attrs"] = {
                k: (v if isinstance(v, _PLAIN) else str(v))
                for k, v in self.attrs.items()
            }
        return record

    def __repr__(self) -> str:
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"Span({self.name!r}, {self.span_id}, {state})"


class _NullSpan:
    """Shared no-op span: context manager, ``end`` and ``set`` all free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, **attrs: Any) -> None:
        pass

    def close(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans and owns the run's metrics registry.

    ``memory=True`` turns on tracemalloc-based profiling: every finished
    span carries ``mem_kb`` / ``mem_peak_kb`` attributes (KiB of traced
    Python allocations at span end and the process-wide traced peak),
    and root spans additionally record ``rss_kb``.  ``max_spans`` bounds
    retained spans; overflow is counted in :attr:`dropped`, never
    raised.
    """

    enabled = True

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        memory: bool = False,
        max_spans: int = 250_000,
    ) -> None:
        self.metrics: MetricsRegistry | NullMetrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.memory = memory
        self.max_spans = max_spans
        self.dropped = 0
        self._records: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a nested span; use as a context manager.

        The span parents itself to the innermost open ``span()`` of the
        calling thread and is pushed as the new innermost.
        """
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        opened = Span(self, name, parent_id, attrs, stacked=True)
        stack.append(opened)
        return opened

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a *free* span (not on the nesting stack).

        For regions whose start and end live in different scopes — e.g.
        an engine job's lifetime, opened at spawn and closed when the
        worker is reaped.  Close with :meth:`Span.end`.
        """
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return Span(self, name, parent_id, attrs, stacked=False)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant (zero-duration) span."""
        instant = Span(self, name, None, attrs, stacked=False)
        stack = self._stack()
        if stack:
            instant.parent_id = stack[-1].span_id
        instant.end_ns = instant.start_ns
        self._finish(instant)

    @contextmanager
    def attach(self, free_span: Span) -> Iterator[Span]:
        """Temporarily make a free span the innermost open span.

        Spans opened inside the block parent to ``free_span`` without it
        being closed on exit — the engine wraps its ``fork`` in this so a
        worker's spans nest under the job span the parent opened for it.
        """
        stack = self._stack()
        stack.append(free_span)
        try:
            yield free_span
        finally:
            if stack and stack[-1] is free_span:
                stack.pop()

    def current_span_id(self) -> str | None:
        """Span id of the calling thread's innermost open span, if any.

        This is the parent to stamp into a :class:`TraceContext` shipped
        across an explicit process boundary (a shard-worker pipe).
        """
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _pop(self, closing: Span) -> None:
        stack = self._stack()
        # Tolerate out-of-order exits (a generator finalized late): drop
        # everything above the closing span rather than corrupting the
        # nesting of future spans.
        while stack:
            top = stack.pop()
            if top is closing:
                return

    def _finish(self, finished: Span) -> None:
        if self.memory:
            current, peak = traced_memory_kb()
            finished.attrs.setdefault("mem_kb", current)
            finished.attrs.setdefault("mem_peak_kb", peak)
            if finished.parent_id is None:
                rss = peak_rss_kb()
                if rss is not None:
                    finished.attrs.setdefault("rss_kb", rss)
        record = finished.to_record()
        # Feed process-local roots (no parent, or a parent from another
        # process) to the always-on flight recorder: one append per
        # analysis-grade span, never per state.
        parent = finished.parent_id
        if parent is None or not parent.startswith(f"{finished.pid:x}-"):
            FLIGHT.record(record)
        with self._lock:
            if len(self._records) >= self.max_spans:
                self.dropped += 1
                return
            self._records.append(record)

    # ------------------------------------------------------------------
    # Record access / cross-process merging
    # ------------------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        """Snapshot of the finished span records (emission order)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> list[dict[str, Any]]:
        """Remove and return all finished records (worker → parent ship)."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def adopt(self, records: list[dict[str, Any]]) -> None:
        """Merge records drained from another process's tracer."""
        with self._lock:
            room = self.max_spans - len(self._records)
            if room < len(records):
                self.dropped += len(records) - max(room, 0)
                records = records[: max(room, 0)]
            self._records.extend(records)

    def take(self, trace_id: str) -> list[dict[str, Any]]:
        """Remove and return the finished records of one trace.

        The serve daemon calls this when a request reaches a terminal
        state, moving the request's records onto its job record (evicted
        with normal store retention) so the long-lived daemon tracer
        never accumulates unbounded history.
        """
        with self._lock:
            taken = [r for r in self._records if r.get("trace_id") == trace_id]
            if taken:
                self._records = [
                    r for r in self._records if r.get("trace_id") != trace_id
                ]
            return taken

    def child_reset(self) -> None:
        """Called in a forked worker: drop records inherited from the
        parent so :meth:`drain` ships only spans this process produced
        (the parent still owns the originals)."""
        with self._lock:
            self._records = []
            self.dropped = 0


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    This is the default ambient tracer; its cost per ``span()`` call is
    one attribute lookup and returning a shared object, which is what
    keeps observability-off runs within the <3 % states/sec budget.
    """

    enabled = False
    metrics: NullMetrics = NULL_METRICS
    memory = False
    dropped = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def start(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    @contextmanager
    def attach(self, free_span: Any) -> Iterator[Any]:
        yield free_span

    def records(self) -> list[dict[str, Any]]:
        return []

    def drain(self) -> list[dict[str, Any]]:
        return []

    def adopt(self, records: list[dict[str, Any]]) -> None:
        pass

    def current_span_id(self) -> str | None:
        return None

    def take(self, trace_id: str) -> list[dict[str, Any]]:
        return []

    def child_reset(self) -> None:
        pass


NULL_TRACER = NullTracer()

TracerLike = Union[Tracer, NullTracer]

_active: TracerLike = NULL_TRACER


def current_tracer() -> TracerLike:
    """The ambient tracer (:data:`NULL_TRACER` unless one is installed)."""
    return _active


def set_tracer(tracer: TracerLike) -> TracerLike:
    """Install ``tracer`` as the ambient tracer; returns the previous one."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def activate(tracer: TracerLike) -> Iterator[TracerLike]:
    """Scoped installation: ambient within the block, restored after."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    return _active.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an instant event on the ambient tracer."""
    _active.event(name, **attrs)
