"""Canonical names for everything the observability layer reports.

Every stat key in ``AnalysisResult.extras``, every metric instrument and
every span name used across the six analyzers is defined here **once**.
Before this module existed, ``states_per_second`` / ``stubborn_ratio``
etc. were bare string literals scattered over the search core, the
explorer adapters and the Table 1 harness, and the spellings had started
to drift.  Import the constants; never re-type the strings.

The module is a leaf: it imports nothing from ``repro``, so every layer
(including :mod:`repro.search.core`) can depend on it without cycles.
"""

from __future__ import annotations

__all__ = [
    "ABORTED",
    "ANALYSIS_EDGES",
    "ANALYSIS_SECONDS",
    "ANALYSIS_STATES",
    "BATCH_LEVEL_WIDTH",
    "BDD_CACHE_HIT_RATIO",
    "BDD_PEAK_NODES",
    "DEADLOCKS",
    "EXPANDED",
    "INSTRUMENTATION_FIELDS",
    "KERNEL",
    "KERNEL_FIRES",
    "KERNEL_FULL_SCANS",
    "KERNEL_INCREMENTAL_UPDATES",
    "MAX_SCENARIOS",
    "MEAN_ENABLED",
    "MEAN_SCENARIOS",
    "PEAK_FRONTIER",
    "REDUCE_PLACES_REMOVED",
    "REDUCE_RULES_APPLIED",
    "REDUCE_TRANSITIONS_REMOVED",
    "SAFETY_CERTIFIED",
    "SCENARIO_SET_SIZE",
    "SHARDS",
    "SHARD_EXCHANGE_STALLS",
    "SHARD_EXCHANGE_VOLUME",
    "SPAN_ANALYZE",
    "SPAN_BOUNDED_CHECK",
    "SPAN_CERTIFICATE",
    "SPAN_DIAGNOSE",
    "SPAN_ENABLED_FAMILIES",
    "SPAN_JOB",
    "SPAN_MULTIPLE_FIRE",
    "SPAN_PARALLEL_LEVEL",
    "SPAN_PARALLEL_SHARD",
    "SPAN_RACE",
    "SPAN_REDUCE",
    "SPAN_SEARCH",
    "SPAN_SERVE_QUEUE",
    "SPAN_SERVE_REQUEST",
    "SPAN_STUBBORN_SET",
    "SPAN_SYMBOLIC_ENCODE",
    "SPAN_SYMBOLIC_ITERATION",
    "SPAN_UNFOLD",
    "SPAN_WITNESS",
    "SERVE_QUEUE_WAIT_SECONDS",
    "SERVE_REDUCE_SECONDS",
    "SERVE_SEARCH_SECONDS",
    "SERVE_SERIALIZE_SECONDS",
    "STATES_EXPANDED",
    "STATES_PER_SECOND",
    "STUBBORN_CLOSURE_ITERATIONS",
    "STUBBORN_RATIO",
    "STUBBORN_SET_SECONDS",
    "STUBBORN_SET_SIZE",
]

# ----------------------------------------------------------------------
# ``AnalysisResult.extras`` / JSONL-event stat keys.
# ----------------------------------------------------------------------
EXPANDED = "expanded"
PEAK_FRONTIER = "peak_frontier"
MEAN_ENABLED = "mean_enabled"
STATES_PER_SECOND = "states_per_second"
KERNEL = "kernel"
STUBBORN_RATIO = "stubborn_ratio"
MEAN_SCENARIOS = "mean_scenarios"
MAX_SCENARIOS = "max_scenarios"
SAFETY_CERTIFIED = "safety_certified"
ABORTED = "aborted"
#: Transitions processed by the stubborn-closure fixpoint (extras key and
#: metric counter; the bench-kernel stubborn-phase breakdown keys on it).
STUBBORN_CLOSURE_ITERATIONS = "stubborn_closure_iterations"
#: Wall seconds spent choosing stubborn sets (vs expanding successors).
STUBBORN_SET_SECONDS = "stubborn_set_seconds"
#: Mean frontier rows per batched BFS level (extras key; the histogram
#: instrument of the same name records the per-level widths).
BATCH_LEVEL_WIDTH = "batch_level_width"
#: Shard count of a parallel exploration (extras key).
SHARDS = "shards"
#: Cross-shard candidate states exchanged at level barriers.
SHARD_EXCHANGE_VOLUME = "shard_exchange_volume"
#: Level barriers a shard sat out with an empty frontier.
SHARD_EXCHANGE_STALLS = "shard_exchange_stalls"

#: The instrumentation counters the search layer produces (driver stats
#: plus the adapter-specific counters of the stubborn and GPO spaces).
#: Historically exported as ``repro.search.core.INSTRUMENTATION_FIELDS``.
INSTRUMENTATION_FIELDS: tuple[str, ...] = (
    EXPANDED,
    PEAK_FRONTIER,
    MEAN_ENABLED,
    STATES_PER_SECOND,
    KERNEL,
    STUBBORN_RATIO,
    MEAN_SCENARIOS,
    MAX_SCENARIOS,
    SAFETY_CERTIFIED,
    STUBBORN_CLOSURE_ITERATIONS,
    STUBBORN_SET_SECONDS,
    BATCH_LEVEL_WIDTH,
    SHARDS,
    SHARD_EXCHANGE_VOLUME,
    SHARD_EXCHANGE_STALLS,
)

# ----------------------------------------------------------------------
# Metric instrument names (counters / gauges / histograms).
# ----------------------------------------------------------------------
#: Counter — states whose successors were generated (equals
#: ``extras["expanded"]`` where the driver ran, the analyzer's ``states``
#: field otherwise; the cross-analyzer tests hold this equality).
STATES_EXPANDED = "states_expanded"
#: Counter — stored states of the analysis (``AnalysisResult.states``).
ANALYSIS_STATES = "analysis_states"
#: Counter — edges of the analysis (``AnalysisResult.edges``).
ANALYSIS_EDGES = "analysis_edges"
#: Gauge — wall seconds of the analysis.
ANALYSIS_SECONDS = "analysis_seconds"
#: Counter — deadlock states recorded during the search.
DEADLOCKS = "deadlocks"
#: Histogram — enabled part of the chosen stubborn set, per marking.
STUBBORN_SET_SIZE = "stubborn_set_size"
#: Histogram — valid-scenario family size, per expanded GPN state.
SCENARIO_SET_SIZE = "scenario_set_size"
#: Gauge — hit ratio of the BDD manager's memoized ``ite`` cache.
BDD_CACHE_HIT_RATIO = "bdd_cache_hit_ratio"
#: Gauge — peak live BDD nodes of the symbolic fixpoint.
BDD_PEAK_NODES = "bdd_peak_nodes"
#: Counter — checked bitmask firings performed by the marking kernel.
KERNEL_FIRES = "kernel_fires"
#: Counter — full enabling scans (O(|T|)) performed by the kernel.
KERNEL_FULL_SCANS = "kernel_full_scans"
#: Counter — incremental enabled-mask updates (O(affected)).
KERNEL_INCREMENTAL_UPDATES = "kernel_incremental_updates"
#: Counter — structural reduction rule applications, labeled per rule.
REDUCE_RULES_APPLIED = "reduce_rules_applied"
#: Counter — places removed by the structural reduction pre-pass.
REDUCE_PLACES_REMOVED = "reduce_places_removed"
#: Counter — transitions removed by the structural reduction pre-pass.
REDUCE_TRANSITIONS_REMOVED = "reduce_transitions_removed"
# SLO decomposition histograms of the serve layer, labeled by analysis
# ``method`` and net ``family`` (see DESIGN.md §13).
#: Histogram — seconds a job sat in the tenant queue before dispatch.
SERVE_QUEUE_WAIT_SECONDS = "serve_queue_wait_seconds"
#: Histogram — seconds of the structural-reduction pre-pass per job.
SERVE_REDUCE_SECONDS = "serve_reduce_seconds"
#: Histogram — seconds of the search/analysis itself per job.
SERVE_SEARCH_SECONDS = "serve_search_seconds"
#: Histogram — seconds serializing the job's response payload.
SERVE_SERIALIZE_SECONDS = "serve_serialize_seconds"

# ----------------------------------------------------------------------
# Span names (the span taxonomy; see DESIGN.md §8).
# ----------------------------------------------------------------------
#: Canonical root span every analyzer emits around one whole run.
SPAN_ANALYZE = "analyze"
#: Structural safety-certificate consultation before exploring.
SPAN_CERTIFICATE = "certificate"
#: One driven exploration (the generic search core).
SPAN_SEARCH = "search"
#: Witness extraction after a deadlock was found.
SPAN_WITNESS = "witness"
#: One stubborn-set computation (per expanded marking).
SPAN_STUBBORN_SET = "stubborn/set"
#: One ``enabled_families`` scenario-maintenance pass (per GPN state).
SPAN_ENABLED_FAMILIES = "gpo/enabled_families"
#: One Def. 3.6 multiple firing.
SPAN_MULTIPLE_FIRE = "gpo/multiple_fire"
#: Variable ordering + transition-relation construction.
SPAN_SYMBOLIC_ENCODE = "symbolic/encode"
#: One breadth-first image iteration of the symbolic fixpoint.
SPAN_SYMBOLIC_ITERATION = "symbolic/iteration"
#: Complete-finite-prefix construction.
SPAN_UNFOLD = "unfolding/unfold"
#: One engine job's lifetime (spawn to terminal event).
SPAN_JOB = "engine/job"
#: One portfolio race.
SPAN_RACE = "engine/race"
#: Structural diagnostics pass of ``gpo check``.
SPAN_DIAGNOSE = "check/diagnose"
#: Bounded exhaustive safety check of ``gpo check`` (certificate miss).
SPAN_BOUNDED_CHECK = "check/bounded"
#: One structural-reduction fixpoint (the ``--reduce`` pre-pass).
SPAN_REDUCE = "reduce"
#: One level barrier of the sharded parallel BFS.
SPAN_PARALLEL_LEVEL = "parallel/level"
#: One shard's slice of one BFS level (emitted inline and in workers).
SPAN_PARALLEL_SHARD = "parallel/shard"
#: One served request, admission to terminal state (serve daemon root).
SPAN_SERVE_REQUEST = "serve/request"
#: The queued phase of a served request (push to dispatch).
SPAN_SERVE_QUEUE = "serve/queue"
