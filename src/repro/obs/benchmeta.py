"""Shared provenance stamp for every BENCH_*.json writer.

Benchmark trajectories are only comparable when each file says *where*
it came from: the same kernel benchmark differs 3x between a laptop and
a CI runner, and a regression is only a regression against the same
commit lineage.  Historically the three writers disagreed —
``BENCH_kernel.json`` recorded python+machine, ``BENCH_parallel.json``
added cpu_count, and ``BENCH_serve.json`` recorded nothing — so
``gpo bench-diff`` could not warn about cross-host comparisons.

:func:`stamp_bench` is the one helper all writers now route through: it
adds a ``"meta"`` mapping (host, platform, cpu_count, git commit,
timestamp) while leaving each writer's legacy top-level keys untouched,
so existing consumers keep working.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Any

__all__ = ["BENCH_META_SCHEMA_VERSION", "bench_metadata", "stamp_bench"]

#: Version of the ``meta`` mapping layout stamped into BENCH files.
BENCH_META_SCHEMA_VERSION = 1


def _git_commit() -> str | None:
    """The current short commit hash, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else None


def bench_metadata() -> dict[str, Any]:
    """The provenance mapping stamped into every benchmark file."""
    return {
        "schema": BENCH_META_SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "host": platform.node(),
        "cpu_count": os.cpu_count(),
        "commit": _git_commit(),
        "generated_at": round(time.time(), 3),
    }


def stamp_bench(payload: dict[str, Any]) -> dict[str, Any]:
    """Return ``payload`` with the shared ``meta`` mapping added.

    The input is not mutated; legacy top-level keys (``python``,
    ``machine``, ...) are preserved for existing consumers.
    """
    stamped = dict(payload)
    stamped["meta"] = bench_metadata()
    return stamped
