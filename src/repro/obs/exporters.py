"""Trace/metric exporters: JSONL, Chrome ``trace_event``, Prometheus.

All exporters consume the same inputs — the tracer's span *records*
(plain dicts, see :meth:`repro.obs.tracer.Span.to_record`) and the
:class:`~repro.obs.metrics.MetricsRegistry` — so adding a format never
touches the instrumentation.

:class:`JsonlWriter` is the single serialization code path for
line-oriented JSON in the repo; the engine's event sink
(:mod:`repro.engine.events`) writes through it too.
"""

from __future__ import annotations

import json
import math
from typing import Any, IO, Iterable, Mapping

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "JsonlWriter",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
    "write_jsonl_trace",
    "write_prometheus",
]


class JsonlWriter:
    """Append JSON objects to a text stream, one compact line each.

    Keys are sorted (stable diffs, golden-file friendly) and every line
    is flushed so a crashed run still leaves a readable prefix.
    """

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream

    def write(self, payload: Mapping[str, Any]) -> None:
        json.dump(payload, self._stream, sort_keys=True, separators=(",", ":"))
        self._stream.write("\n")
        self._stream.flush()


def write_jsonl_trace(path: str, records: Iterable[Mapping[str, Any]]) -> int:
    """Write span records to ``path`` as JSONL; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        writer = JsonlWriter(handle)
        for record in records:
            writer.write(record)
            count += 1
    return count


# ----------------------------------------------------------------------
# Chrome trace_event JSON (about:tracing / Perfetto)
# ----------------------------------------------------------------------
def chrome_trace(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Span records → Chrome ``trace_event`` JSON object.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; zero-duration records become instants (``"ph": "i"``).
    Timestamps are rebased to the earliest span so traces start at ~0.
    """
    materialized = list(records)
    base_ns = min(
        (int(r["start_ns"]) for r in materialized if "start_ns" in r),
        default=0,
    )
    events: list[dict[str, Any]] = []
    for record in materialized:
        if "start_ns" not in record:
            continue
        dur_ns = int(record.get("dur_ns", 0))
        event: dict[str, Any] = {
            "name": record.get("name", "?"),
            "ts": (int(record["start_ns"]) - base_ns) / 1000.0,
            "pid": record.get("pid", 0),
            "tid": record.get("tid", 0),
        }
        if dur_ns > 0:
            event["ph"] = "X"
            event["dur"] = dur_ns / 1000.0
        else:
            event["ph"] = "i"
            event["s"] = "t"
        args = dict(record.get("attrs", {}))
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        if record.get("span_id") is not None:
            args["span_id"] = record["span_id"]
        if record.get("trace_id") is not None:
            args["trace_id"] = record["trace_id"]
        if args:
            event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, records: Iterable[Mapping[str, Any]]) -> int:
    """Write a Chrome-trace JSON file; returns the event count."""
    payload = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return len(payload["traceEvents"])


# ----------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value != value:  # pragma: no cover - NaN guard
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for instrument in metrics.collect():
        if instrument.name not in typed:
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            typed.add(instrument.name)
        if isinstance(instrument, Histogram):
            for bound, running in instrument.cumulative():
                le = _format_value(bound)
                labels = _format_labels(instrument.labels, f'le="{le}"')
                lines.append(f"{instrument.name}_bucket{labels} {running}")
            labels = _format_labels(instrument.labels)
            lines.append(
                f"{instrument.name}_sum{labels} "
                f"{_format_value(instrument.total)}"
            )
            lines.append(f"{instrument.name}_count{labels} {instrument.count}")
        elif isinstance(instrument, (Counter, Gauge)):
            labels = _format_labels(instrument.labels)
            lines.append(
                f"{instrument.name}{labels} {_format_value(instrument.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, metrics: MetricsRegistry) -> int:
    """Write the exposition text to ``path``; returns the line count."""
    text = prometheus_text(metrics)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")
