"""Unified observability layer: spans, metrics, memory, exporters.

Zero third-party dependencies.  The moving parts:

- :mod:`repro.obs.names` — canonical stat/metric/span names (a leaf
  module every other layer imports; never re-type the strings).
- :mod:`repro.obs.tracer` — span-based tracer with an ambient-tracer
  pattern; :data:`NULL_TRACER` (the default) makes everything a no-op.
- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
- :mod:`repro.obs.memory` — peak-RSS and tracemalloc helpers.
- :mod:`repro.obs.exporters` — JSONL trace, Chrome ``trace_event``
  JSON, Prometheus text exposition.
- :mod:`repro.obs.summary` — terminal span-tree + hot-span digest.
- :mod:`repro.obs.record` — the one choke point mapping an
  ``AnalysisResult`` onto metric instruments.

Typical use (this is what ``gpo profile`` does)::

    from repro import obs

    tracer = obs.Tracer(memory=True)
    with obs.activate(tracer):
        result = analyze(net, options)
    print(obs.format_summary(tracer.records(), tracer.metrics))
"""

from repro.obs import names
from repro.obs.exporters import (
    JsonlWriter,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_jsonl_trace,
    write_prometheus,
)
from repro.obs.memory import peak_rss_kb, traced_memory_kb
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.record import record_result
from repro.obs.summary import build_summary, format_summary, hot_spans
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
    event,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "activate",
    "build_summary",
    "chrome_trace",
    "current_tracer",
    "event",
    "format_summary",
    "hot_spans",
    "names",
    "peak_rss_kb",
    "prometheus_text",
    "record_result",
    "set_tracer",
    "span",
    "traced_memory_kb",
    "write_chrome_trace",
    "write_jsonl_trace",
    "write_prometheus",
]
