"""Unified observability layer: spans, metrics, memory, exporters.

Zero third-party dependencies.  The moving parts:

- :mod:`repro.obs.names` — canonical stat/metric/span names (a leaf
  module every other layer imports; never re-type the strings).
- :mod:`repro.obs.tracer` — span-based tracer with an ambient-tracer
  pattern; :data:`NULL_TRACER` (the default) makes everything a no-op.
- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
- :mod:`repro.obs.memory` — peak-RSS and tracemalloc helpers.
- :mod:`repro.obs.exporters` — JSONL trace, Chrome ``trace_event``
  JSON, Prometheus text exposition.
- :mod:`repro.obs.summary` — terminal span-tree + hot-span digest.
- :mod:`repro.obs.record` — the one choke point mapping an
  ``AnalysisResult`` onto metric instruments.
- :mod:`repro.obs.context` — per-request :class:`TraceContext`
  (trace_id + cross-process parent span) propagation.
- :mod:`repro.obs.flight` — always-on bounded ring of recent
  diagnostics, dumped on crash/timeout/cancel.
- :mod:`repro.obs.benchmeta` — shared provenance stamp for every
  ``BENCH_*.json`` writer.
- :mod:`repro.obs.slo` — Prometheus exposition parser + the
  ``gpo slo`` per-phase latency report.

Typical use (this is what ``gpo profile`` does)::

    from repro import obs

    tracer = obs.Tracer(memory=True)
    with obs.activate(tracer):
        result = analyze(net, options)
    print(obs.format_summary(tracer.records(), tracer.metrics))
"""

from repro.obs import names
from repro.obs.benchmeta import bench_metadata, stamp_bench
from repro.obs.context import (
    TraceContext,
    current_context,
    new_trace_context,
    new_trace_id,
    set_context,
    use_context,
)
from repro.obs.exporters import (
    JsonlWriter,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_jsonl_trace,
    write_prometheus,
)
from repro.obs.flight import (
    FLIGHT,
    FlightRecorder,
    flight_note,
    flight_snapshot,
)
from repro.obs.memory import peak_rss_kb, traced_memory_kb
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.record import record_result
from repro.obs.slo import format_slo, parse_histograms
from repro.obs.summary import build_summary, format_summary, hot_spans
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
    event,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FLIGHT",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "bench_metadata",
    "build_summary",
    "chrome_trace",
    "current_context",
    "current_tracer",
    "event",
    "flight_note",
    "flight_snapshot",
    "format_slo",
    "format_summary",
    "hot_spans",
    "names",
    "new_trace_context",
    "new_trace_id",
    "parse_histograms",
    "peak_rss_kb",
    "prometheus_text",
    "record_result",
    "set_context",
    "set_tracer",
    "span",
    "stamp_bench",
    "traced_memory_kb",
    "use_context",
    "write_chrome_trace",
    "write_jsonl_trace",
    "write_prometheus",
]
