"""SLO decomposition report over the serve ``/metrics`` exposition.

The serve layer exports per-phase latency histograms — queue-wait,
reduce, search, serialization — labelled by analysis method and net
family.  This module turns that Prometheus 0.0.4 text back into numbers:
a small exposition parser, cumulative-bucket quantile estimation (linear
interpolation inside the containing bucket, the same estimate
``histogram_quantile`` gives), and :func:`format_slo`, the renderer
behind ``gpo slo``.

The report answers the admission-control question from ROADMAP item 1
directly: for each (family, method) pair, where does a request's wall
time actually go — waiting in the tenant queue, in the structural
reduce pre-pass, in the search itself, or serializing the answer?
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "HistogramSummary",
    "format_slo",
    "parse_histograms",
    "parse_samples",
]

#: The serve phase histograms ``gpo slo`` reports on, in report order.
_SLO_PHASES = (
    ("serve_queue_wait_seconds", "queue"),
    ("serve_reduce_seconds", "reduce"),
    ("serve_search_seconds", "search"),
    ("serve_serialize_seconds", "serialize"),
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_samples(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Parse a Prometheus 0.0.4 exposition into (name, labels, value)."""
    samples: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for key, escaped in _LABEL_RE.findall(raw):
                labels[key] = (
                    escaped.replace("\\\\", "\\").replace('\\"', '"').replace("\\n", "\n")
                )
        samples.append((match.group("name"), labels, value))
    return samples


@dataclass
class HistogramSummary:
    """One histogram series reassembled from its exposition samples."""

    name: str
    labels: dict[str, str]
    count: float = 0.0
    total: float = 0.0
    buckets: dict[float, float] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile from cumulative bucket counts."""
        if not self.count or not self.buckets:
            return 0.0
        rank = q * self.count
        bounds = sorted(self.buckets)
        previous_bound = 0.0
        previous_count = 0.0
        for bound in bounds:
            cumulative = self.buckets[bound]
            if cumulative >= rank:
                if math.isinf(bound):
                    return previous_bound
                span = cumulative - previous_count
                if span <= 0:
                    return bound
                fraction = (rank - previous_count) / span
                return previous_bound + (bound - previous_bound) * fraction
            previous_bound = 0.0 if math.isinf(bound) else bound
            previous_count = cumulative
        return previous_bound


def _series_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def parse_histograms(
    text: str, names: Iterable[str] | None = None
) -> dict[tuple[str, tuple[tuple[str, str], ...]], HistogramSummary]:
    """Reassemble histogram series from an exposition text.

    Keys are ``(metric_name, sorted_label_items)``; ``names`` filters to
    the given base metric names when provided.
    """
    wanted = set(names) if names is not None else None
    out: dict[tuple[str, tuple[tuple[str, str], ...]], HistogramSummary] = {}

    def summary(base: str, labels: dict[str, str]) -> HistogramSummary:
        key = (base, _series_key(labels))
        if key not in out:
            out[key] = HistogramSummary(name=base, labels=labels)
        return out[key]

    for name, labels, value in parse_samples(text):
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            if wanted is not None and base not in wanted:
                continue
            le = labels.pop("le", None)
            if le is None:
                continue
            bound = math.inf if le in ("+Inf", "inf") else float(le)
            summary(base, labels).buckets[bound] = value
        elif name.endswith("_sum"):
            base = name[: -len("_sum")]
            if wanted is not None and base not in wanted:
                continue
            summary(base, labels).total = value
        elif name.endswith("_count"):
            base = name[: -len("_count")]
            if wanted is not None and base not in wanted:
                continue
            summary(base, labels).count = value
    return out


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s"
    return f"{value * 1000.0:7.2f}ms"


def format_slo(text: str) -> str:
    """Render the ``gpo slo`` report from a ``/metrics`` exposition."""
    phase_names = [name for name, _ in _SLO_PHASES]
    histograms = parse_histograms(text, phase_names)
    if not any(summary.count for summary in histograms.values()):
        return "no serve SLO samples yet (serve some requests first)"

    # Group phase series by the (family, method) pair they describe.
    groups: dict[tuple[str, str], dict[str, HistogramSummary]] = {}
    for (name, _), summary in histograms.items():
        family = summary.labels.get("family", "-")
        method = summary.labels.get("method", "-")
        phase = dict(_SLO_PHASES)[name]
        groups.setdefault((family, method), {})[phase] = summary

    lines = ["SLO decomposition (per family x method, from /metrics)", ""]
    header = f"{'family':<10} {'method':<10} {'phase':<10} {'count':>7} {'mean':>10} {'p50':>10} {'p99':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for (family, method), phases in sorted(groups.items()):
        for _, phase in _SLO_PHASES:
            summary = phases.get(phase)
            if summary is None or not summary.count:
                continue
            lines.append(
                f"{family:<10} {method:<10} {phase:<10} {int(summary.count):>7} "
                f"{_fmt_seconds(summary.mean):>10} {_fmt_seconds(summary.quantile(0.5)):>10} "
                f"{_fmt_seconds(summary.quantile(0.99)):>10}"
            )
    return "\n".join(lines)
