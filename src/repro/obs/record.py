"""Bridge from analyzer results to the metrics registry.

Every analyzer calls :func:`record_result` exactly once per ``analyze``
— that single choke point is what guarantees the acceptance property
that the ``states_expanded`` / ``peak_frontier`` metrics match the
:class:`~repro.analysis.stats.AnalysisResult` fields exactly, for all
six analyzers, including the ones that never run the generic search
driver (symbolic, unfolding).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs import names
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracer import current_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.stats import AnalysisResult

__all__ = ["record_result"]


def record_result(
    result: "AnalysisResult",
    metrics: "MetricsRegistry | NullMetrics | None" = None,
) -> None:
    """Publish one run's headline numbers to the metrics registry.

    ``states_expanded`` is ``extras["expanded"]`` where the generic
    driver ran and the analyzer's ``states`` field otherwise;
    ``peak_frontier`` defaults to 0 for frontier-free analyzers.  With
    tracing off this hits the null registry and costs a few dict
    lookups.
    """
    registry = metrics if metrics is not None else current_tracer().metrics
    labels = {"analyzer": result.analyzer, "net": result.net_name}
    registry.counter(names.STATES_EXPANDED, **labels).inc(
        float(result.expanded)
    )
    registry.counter(names.ANALYSIS_STATES, **labels).inc(result.states)
    registry.counter(names.ANALYSIS_EDGES, **labels).inc(result.edges)
    registry.gauge(names.ANALYSIS_SECONDS, **labels).set(result.time_seconds)
    registry.gauge(names.PEAK_FRONTIER, **labels).set_max(
        float(result.peak_frontier)
    )
    if result.deadlock:
        registry.counter(names.DEADLOCKS, **labels).inc()
