"""Always-on flight recorder: a bounded ring of recent diagnostics.

Crash reports are only useful if the moments *before* the crash were
recorded — but full tracing is opt-in.  The flight recorder squares
that: a per-process ring buffer (``collections.deque(maxlen=...)``)
that is always on and holds the most recent span/metric/event records,
at a cost of one dict and one deque append per *lifecycle-grade* event
(job queued/started/finished, root spans, admission decisions) — never
per state, so the <3 % disabled-observability budget is untouched.

Feeds (all unconditional):

- every engine lifecycle event (:meth:`repro.engine.events.EventSink.record`);
- every *root* span a live tracer finishes (one per analysis);
- explicit :func:`flight_note` calls at serve admission/dispatch and
  pool kill/crash sites.

Drains:

- on worker kill/crash/cancel the engine dumps a snapshot into
  ``AnalysisResult.extras["flight"]`` (the worker's own ring is shipped
  over the result pipe when it died politely enough to send);
- ``gpo debug flight`` prints the local ring, ``GET /v1/debug/flight``
  the daemon's.

The ring is process-local; forked children inherit the parent's recent
history (useful context in a crash dump) and append their own records
from there.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Mapping

__all__ = [
    "DEFAULT_FLIGHT_CAPACITY",
    "FLIGHT",
    "FlightRecorder",
    "flight_note",
    "flight_snapshot",
]

#: Default ring capacity: big enough for the tail of a busy daemon's
#: last few seconds, small enough to be memory-irrelevant (~100 KiB).
DEFAULT_FLIGHT_CAPACITY = 256


class FlightRecorder:
    """Bounded, thread-safe ring buffer of recent diagnostic records."""

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=max(1, capacity))
        self.recorded = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def configure(self, capacity: int) -> None:
        """Resize the ring in place, keeping the newest records."""
        with self._lock:
            self._ring = deque(self._ring, maxlen=max(1, capacity))

    def record(self, payload: Mapping[str, Any]) -> None:
        """Append one record (copied, so later mutation cannot race)."""
        entry = dict(payload)
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1

    def note(self, kind: str, **fields: Any) -> None:
        """Append a free-form note stamped with time and pid."""
        self.record(
            {"kind": kind, "ts": round(time.time(), 6), "pid": os.getpid(), **fields}
        )

    def snapshot(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The newest records, oldest first (all, or the last ``limit``)."""
        with self._lock:
            records = list(self._ring)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return [dict(record) for record in records]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


#: The process-wide recorder every feed writes to.
FLIGHT = FlightRecorder()


def flight_note(kind: str, **fields: Any) -> None:
    """Append a note to the process-wide recorder."""
    FLIGHT.note(kind, **fields)


def flight_snapshot(limit: int | None = None) -> list[dict[str, Any]]:
    """Snapshot the process-wide recorder (newest ``limit`` records)."""
    return FLIGHT.snapshot(limit)
