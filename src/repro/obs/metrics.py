"""Metric instruments: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the write side of the metrics pipeline:
instruments are created on first use, keyed by ``(name, labels)``, and
exported afterwards (Prometheus text exposition, the ``gpo profile``
summary).  There is no background aggregation thread — instruments are
plain objects mutated in-line, which is all a batch verification run
needs.

The ``Null*`` twins make metrics pay-for-what-you-use: a disabled tracer
hands out null instruments whose mutators do nothing, so instrumented
code never needs an ``if enabled`` around every observation (though hot
paths may still use one to skip argument construction).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Mapping, Union, cast

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
]

#: Default histogram bucket upper bounds (a +Inf bucket is implicit).
#: Tuned for the set-size distributions the analyzers observe.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can be set to anything at any time."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the maximum of the current and the observed value."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram (cumulative buckets on export).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow (+Inf) bucket is always appended.  An observation equal to
    a bucket edge lands in that bucket — the edge tests in the test
    suite pin this down.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if tuple(sorted(bounds)) != tuple(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by name + labels.

    A name is bound to one instrument kind on first use; asking for the
    same name as a different kind is an error (that is how Prometheus
    exposition stays well-formed).
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, Labels], Instrument] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    def _get(
        self,
        cls: type,
        name: str,
        labels: Mapping[str, object],
        **kwargs: object,
    ) -> Instrument:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                bound = self._kinds.setdefault(name, cls.kind)
                if bound != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {bound}"
                    )
                instrument = cast(Instrument, cls(name, key[1], **kwargs))
                self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + ``labels`` (created on first use)."""
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on first use)."""
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on first use)."""
        return self._get(  # type: ignore[return-value]
            Histogram,
            name,
            labels,
            bounds=buckets if buckets is not None else DEFAULT_BUCKETS,
        )

    def collect(self) -> Iterator[Instrument]:
        """All instruments, sorted by (name, labels) for stable output."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def __len__(self) -> int:
        return len(self._instruments)

    def value_of(self, name: str, **labels: object) -> float | None:
        """Counter/gauge value lookup without creating the instrument."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None or isinstance(instrument, Histogram):
            return None
        return instrument.value


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullMetrics:
    """Registry twin whose instruments discard every observation."""

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def collect(self) -> Iterator[Instrument]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def value_of(self, name: str, **labels: object) -> float | None:
        return None


NULL_METRICS = NullMetrics()
