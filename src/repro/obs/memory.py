"""Memory-profiling hooks: peak RSS and tracemalloc helpers.

Kept stdlib-only.  ``resource`` is POSIX; on platforms without it the
RSS helpers degrade to ``None`` rather than failing, so callers must
treat RSS as best-effort (the engine already did — this module absorbs
its private ``_peak_rss_kb``).
"""

from __future__ import annotations

import sys
import tracemalloc

__all__ = [
    "peak_rss_kb",
    "start_tracemalloc",
    "stop_tracemalloc",
    "traced_memory_kb",
]

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KiB, if knowable.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalise to KiB.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def start_tracemalloc() -> bool:
    """Start tracemalloc if not already tracing; returns True if started."""
    if tracemalloc.is_tracing():
        return False
    tracemalloc.start()
    return True


def stop_tracemalloc() -> None:
    """Stop tracemalloc if tracing."""
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def traced_memory_kb() -> tuple[int, int]:
    """(current, peak) traced Python allocations in KiB.

    Returns ``(0, 0)`` when tracemalloc is off, so span-boundary hooks
    can call it unconditionally.
    """
    if not tracemalloc.is_tracing():
        return (0, 0)
    current, peak = tracemalloc.get_traced_memory()
    return (current // 1024, peak // 1024)
