"""Generalized Partial Order Analysis for safe Petri nets.

A complete reproduction of *"Efficient Verification using Generalized
Partial Order Analysis"* (Vercauteren, Verkest, de Jong, Lin — DATE 1998):

* :mod:`repro.net` — safe Petri-net kernel (structures, firing rules, I/O);
* :mod:`repro.analysis` — conventional (full) reachability analysis;
* :mod:`repro.stubborn` — partial-order (stubborn/persistent set) reduction,
  the paper's "SPIN+PO" regime;
* :mod:`repro.bdd` / :mod:`repro.symbolic` — from-scratch ROBDD engine and
  symbolic reachability, the paper's "SMV" regime;
* :mod:`repro.families` — compact set-of-transition-set representations;
* :mod:`repro.gpo` — the paper's contribution: Generalized Petri Nets and
  the generalized partial-order analysis procedure;
* :mod:`repro.models` — the benchmark families of Table 1 (NSDP, ASAT,
  OVER, RW) and the figure nets;
* :mod:`repro.harness` — the experiment harness regenerating Table 1 and
  the figure-level claims.

Quickstart
----------
>>> from repro import NetBuilder, verify
>>> b = NetBuilder("hello")
>>> b.place("p", marked=True)
'p'
>>> b.place("q")
'q'
>>> b.transition("t", inputs=["p"], outputs=["q"])
't'
>>> result = verify(b.build())
>>> result.deadlock  # the token ends in q with nothing enabled
True
"""

from repro.analysis import (
    AnalysisResult,
    DeadlockWitness,
    ReachabilityGraph,
    analyze,
    explore,
)
from repro.net import Marking, NetBuilder, PetriNet, parse_net, to_text

__version__ = "1.0.0"

__all__ = [
    "PetriNet",
    "NetBuilder",
    "Marking",
    "parse_net",
    "to_text",
    "ReachabilityGraph",
    "explore",
    "analyze",
    "AnalysisResult",
    "DeadlockWitness",
    "query",
    "verify",
    "__version__",
]


def verify(net: PetriNet, *, method: str = "gpo", **kwargs) -> AnalysisResult:
    """One-call deadlock verification with a selectable analyzer.

    ``method`` is one of ``"gpo"`` (generalized partial order, the paper's
    contribution and the default), ``"full"`` (conventional exhaustive
    reachability), ``"stubborn"`` (partial-order reduction), ``"symbolic"``
    (BDD-based) or ``"unfolding"`` (McMillan complete-prefix).  Extra
    keyword arguments are forwarded to the chosen analyzer's ``analyze``
    function.
    """
    if method == "full":
        return analyze(net, **kwargs)
    if method == "stubborn":
        from repro.stubborn import analyze as stubborn_analyze

        return stubborn_analyze(net, **kwargs)
    if method == "symbolic":
        from repro.symbolic import analyze as symbolic_analyze

        return symbolic_analyze(net, **kwargs)
    if method == "gpo":
        from repro.gpo import analyze as gpo_analyze

        return gpo_analyze(net, **kwargs)
    if method == "unfolding":
        from repro.unfolding import analyze as unfolding_analyze

        return unfolding_analyze(net, **kwargs)
    raise ValueError(
        f"unknown method {method!r}; expected one of "
        "'gpo', 'full', 'stubborn', 'symbolic', 'unfolding'"
    )


def query(net: PetriNet, prop, **kwargs):
    """One-call property decision — the planner behind ``gpo query``.

    ``prop`` is a :mod:`repro.props` property (text or AST), e.g.
    ``"deadlock"``, ``"reachable(cs0 & cs1)"`` or
    ``"invariant(!(cs0 & cs1))"``.  Returns a
    :class:`repro.props.decide.Decision` whose ``holds`` attribute is the
    three-valued verdict (``True`` / ``False`` / ``None``).

    >>> from repro.models.philosophers import nsdp
    >>> query(nsdp(2), "deadlock").holds
    True
    """
    from repro.props.decide import decide

    return decide(net, prop, **kwargs)
