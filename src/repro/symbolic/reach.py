"""Symbolic (BDD-based) reachability analysis — paper Section 2.4.

Standard breadth-first image computation over the partitioned transition
relation, with the peak-live-node statistic the paper's Table 1 reports for
SMV ("Peak BDD-size").  A deadlock exists iff some reachable marking
satisfies no transition's enabling predicate; a witness marking is decoded
from the BDD.
"""

from __future__ import annotations

import time

from repro.analysis.stats import (
    AnalysisResult,
    DeadlockWitness,
    TimeLimitReached,
    stopwatch,
)
from repro.bdd.manager import ONE, ZERO
from repro.bdd.ops import any_model, relprod, rename, satcount
from repro.net.petrinet import Marking, PetriNet
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.props.ast import (
    And,
    Bottom,
    Invariant,
    Marked,
    Not,
    Or,
    Predicate,
    Property,
    PropertyError,
    Reachable,
    Top,
)
from repro.props.eval import (
    engine_property,
    needs_decomposition,
    property_extras,
    reject_safe,
    run_property,
)
from repro.symbolic.encoding import SymbolicNet

__all__ = ["SymbolicResult", "predicate_bdd", "reach", "analyze"]


def predicate_bdd(symnet: SymbolicNet, pred: Predicate) -> int:
    """Characteristic BDD of a (normalized) predicate over current vars.

    This is the symbolic engine's compile target for the property layer:
    ``reachable(p)`` is an emptiness test of ``reached ∧ bdd(p)`` and
    ``invariant(p)`` of ``reached ∧ ¬bdd(p)`` — both exact, like the
    deadlock check.
    """
    mgr = symnet.mgr
    net = symnet.net
    if isinstance(pred, Top):
        return ONE
    if isinstance(pred, Bottom):
        return ZERO
    if isinstance(pred, Marked):
        return mgr.var(symnet.current[net.place_id(pred.place)])
    if isinstance(pred, Not):
        return mgr.not_(predicate_bdd(symnet, pred.operand))
    if isinstance(pred, And):
        return mgr.and_all(
            predicate_bdd(symnet, op) for op in pred.operands
        )
    if isinstance(pred, Or):
        return mgr.or_all(
            predicate_bdd(symnet, op) for op in pred.operands
        )
    raise PropertyError(
        f"predicate atom {pred.text()!r} has no symbolic encoding"
    )


class SymbolicResult:
    """Raw outcome of a symbolic fixpoint run."""

    def __init__(
        self,
        symnet: SymbolicNet,
        reached: int,
        iterations: int,
        peak_nodes: int,
    ) -> None:
        self.symnet = symnet
        self.reached = reached
        self.iterations = iterations
        self.peak_nodes = peak_nodes

    @property
    def num_states(self) -> int:
        """Exact number of reachable markings (BDD model count)."""
        mgr = self.symnet.mgr
        num_places = self.symnet.net.num_places
        total = satcount(mgr, self.reached, 2 * num_places)
        # `reached` only constrains current variables; divide out the
        # unconstrained next copies.
        return total >> num_places

    def deadlock_bdd(self) -> int:
        """Characteristic function of reachable deadlocked markings."""
        mgr = self.symnet.mgr
        return mgr.diff(self.reached, self.symnet.enabled_any)

    def some_marking(self, node: int) -> Marking | None:
        """Decode one marking from a characteristic function, if any."""
        if node == ZERO:
            return None
        model = any_model(
            self.symnet.mgr, node, sorted(self.symnet.current_levels())
        )
        assert model is not None
        return self.symnet.decode_model(model)

    def deadlock_marking(self) -> Marking | None:
        """Decode one deadlocked marking, if any."""
        return self.some_marking(self.deadlock_bdd())

    def contains(self, marking: Marking) -> bool:
        """Membership test for a concrete marking."""
        mgr = self.symnet.mgr
        assignment = {
            self.symnet.current[p]: (p in marking)
            for p in range(self.symnet.net.num_places)
        }
        return mgr.evaluate(self.reached, assignment)


def reach(
    net: PetriNet,
    *,
    use_force_order: bool = True,
    partitioned: bool = True,
    max_seconds: float | None = None,
) -> SymbolicResult:
    """Least fixpoint of the image operator from the initial marking.

    ``partitioned`` selects per-transition relational products (modern
    practice, default) versus one monolithic relation (the regime 1998-era
    SMV operated in for asynchronous models; see the ablation benchmarks).
    ``max_seconds`` bounds wall time (checked between fixpoint
    iterations); exceeding it raises :class:`TimeLimitReached`.
    """
    tracer = current_tracer()
    with tracer.span(names.SPAN_SYMBOLIC_ENCODE):
        symnet = SymbolicNet(net, use_force_order=use_force_order)
        mgr = symnet.mgr
        current_levels = symnet.current_levels()
        renaming = symnet.next_to_current()

        relations = (
            list(symnet.relations)
            if partitioned
            else [symnet.monolithic_relation()]
        )
    relation_nodes = mgr.count_nodes(*relations)
    reached = symnet.encode_marking(net.initial_marking)
    frontier = reached
    peak = relation_nodes + mgr.count_nodes(reached)
    iterations = 0
    deadline = None if max_seconds is None else time.perf_counter() + max_seconds

    while frontier != ZERO:
        if deadline is not None and time.perf_counter() > deadline:
            # Progress is fixpoint iterations; there is no explicit state
            # count to report at abort.
            raise TimeLimitReached(max_seconds, iterations)  # type: ignore[arg-type]
        iterations += 1
        with tracer.span(names.SPAN_SYMBOLIC_ITERATION, iteration=iterations):
            image = ZERO
            for rel in relations:
                product = relprod(mgr, frontier, rel, current_levels)
                image = mgr.or_(image, rename(mgr, product, renaming))
            frontier = mgr.diff(image, reached)
            reached = mgr.or_(reached, frontier)
            live = relation_nodes + mgr.count_nodes(reached, frontier)
            if live > peak:
                peak = live
    return SymbolicResult(symnet, reached, iterations, peak)


def analyze(
    net: PetriNet,
    *,
    use_force_order: bool = True,
    partitioned: bool = True,
    want_witness: bool = True,
    max_seconds: float | None = None,
    prop: "Property | str | None" = None,
) -> AnalysisResult:
    """Symbolic deadlock analysis packaged uniformly.

    ``states`` reports the exact reachable-marking count (the same number
    the full explicit analysis finds); ``extras["peak_bdd_nodes"]`` is the
    Table 1 "Peak BDD-size" analogue and ``extras["iterations"]`` the
    fixpoint depth.  The witness marking (when a deadlock exists) comes
    without a trace — recovering traces needs backward images, which the
    paper's comparison does not exercise.

    ``prop`` asks a property question: ``reachable(p)`` /
    ``invariant(p)`` become BDD emptiness tests against the reached set,
    so the verdict is always exact (never screen-only).  Property
    witnesses are markings without traces, like deadlock witnesses.
    """
    goal_prop = engine_property(prop)
    if goal_prop is not None and needs_decomposition(goal_prop):
        return run_property(
            goal_prop,
            lambda leaf: analyze(
                net,
                use_force_order=use_force_order,
                partitioned=partitioned,
                want_witness=want_witness,
                max_seconds=max_seconds,
                prop=leaf,
            ),
            analyzer="symbolic",
            net_name=net.name,
        )
    if goal_prop is not None:
        reject_safe("symbolic", goal_prop)
    tracer = current_tracer()
    with tracer.span(
        names.SPAN_ANALYZE, analyzer="symbolic", net=net.name
    ) as root:
        # Consult the structural certificate before the fixpoint: when it
        # holds, the one-token-per-place BDD encoding is provably exact.
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        with stopwatch() as elapsed:
            result = reach(
                net,
                use_force_order=use_force_order,
                partitioned=partitioned,
                max_seconds=max_seconds,
            )
            mgr = result.symnet.mgr
            dead = None
            holds: bool | None = None
            goal_marking: Marking | None = None
            goal_label = "goal"
            if goal_prop is None:
                dead = result.deadlock_marking()
            elif isinstance(goal_prop, Reachable):
                hit = mgr.and_(
                    result.reached, predicate_bdd(result.symnet, goal_prop.pred)
                )
                holds = hit != ZERO
                goal_marking = result.some_marking(hit)
            else:
                assert isinstance(goal_prop, Invariant)
                bad = mgr.diff(
                    result.reached, predicate_bdd(result.symnet, goal_prop.pred)
                )
                holds = bad == ZERO
                goal_marking = result.some_marking(bad)
                goal_label = "violation"
        witness = None
        if want_witness:
            marking = dead if goal_prop is None else goal_marking
            if marking is not None:
                with tracer.span(names.SPAN_WITNESS):
                    witness = DeadlockWitness(
                        marking=net.marking_names(marking),
                        trace=(),
                        label="deadlock" if goal_prop is None else goal_label,
                    )
        metrics = tracer.metrics
        labels = {"analyzer": "symbolic", "net": net.name}
        metrics.gauge(names.BDD_PEAK_NODES, **labels).set_max(
            result.peak_nodes
        )
        metrics.gauge(names.BDD_CACHE_HIT_RATIO, **labels).set(
            round(mgr.cache_hit_ratio, 4)
        )
        extras: dict[str, object] = {
            "peak_bdd_nodes": result.peak_nodes,
            "iterations": result.iterations,
            names.SAFETY_CERTIFIED: certified,
        }
        if goal_prop is not None:
            extras.update(property_extras(goal_prop, holds))
        packaged = AnalysisResult(
            analyzer="symbolic",
            net_name=net.name,
            states=result.num_states,
            edges=0,
            deadlock=dead is not None,
            time_seconds=elapsed[0],
            witness=witness,
            extras=extras,
        )
        root.set(
            states=packaged.states,
            iterations=result.iterations,
            peak_bdd_nodes=result.peak_nodes,
        )
    record_result(packaged)
    return packaged
