"""Symbolic (BDD-based) reachability analysis — paper Section 2.4.

Standard breadth-first image computation over the partitioned transition
relation, with the peak-live-node statistic the paper's Table 1 reports for
SMV ("Peak BDD-size").  A deadlock exists iff some reachable marking
satisfies no transition's enabling predicate; a witness marking is decoded
from the BDD.
"""

from __future__ import annotations

import time

from repro.analysis.stats import (
    AnalysisResult,
    DeadlockWitness,
    TimeLimitReached,
    stopwatch,
)
from repro.bdd.manager import ZERO
from repro.bdd.ops import any_model, relprod, rename, satcount
from repro.net.petrinet import Marking, PetriNet
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.symbolic.encoding import SymbolicNet

__all__ = ["SymbolicResult", "reach", "analyze"]


class SymbolicResult:
    """Raw outcome of a symbolic fixpoint run."""

    def __init__(
        self,
        symnet: SymbolicNet,
        reached: int,
        iterations: int,
        peak_nodes: int,
    ) -> None:
        self.symnet = symnet
        self.reached = reached
        self.iterations = iterations
        self.peak_nodes = peak_nodes

    @property
    def num_states(self) -> int:
        """Exact number of reachable markings (BDD model count)."""
        mgr = self.symnet.mgr
        num_places = self.symnet.net.num_places
        total = satcount(mgr, self.reached, 2 * num_places)
        # `reached` only constrains current variables; divide out the
        # unconstrained next copies.
        return total >> num_places

    def deadlock_bdd(self) -> int:
        """Characteristic function of reachable deadlocked markings."""
        mgr = self.symnet.mgr
        return mgr.diff(self.reached, self.symnet.enabled_any)

    def deadlock_marking(self) -> Marking | None:
        """Decode one deadlocked marking, if any."""
        dead = self.deadlock_bdd()
        if dead == ZERO:
            return None
        model = any_model(
            self.symnet.mgr, dead, sorted(self.symnet.current_levels())
        )
        assert model is not None
        return self.symnet.decode_model(model)

    def contains(self, marking: Marking) -> bool:
        """Membership test for a concrete marking."""
        mgr = self.symnet.mgr
        assignment = {
            self.symnet.current[p]: (p in marking)
            for p in range(self.symnet.net.num_places)
        }
        return mgr.evaluate(self.reached, assignment)


def reach(
    net: PetriNet,
    *,
    use_force_order: bool = True,
    partitioned: bool = True,
    max_seconds: float | None = None,
) -> SymbolicResult:
    """Least fixpoint of the image operator from the initial marking.

    ``partitioned`` selects per-transition relational products (modern
    practice, default) versus one monolithic relation (the regime 1998-era
    SMV operated in for asynchronous models; see the ablation benchmarks).
    ``max_seconds`` bounds wall time (checked between fixpoint
    iterations); exceeding it raises :class:`TimeLimitReached`.
    """
    tracer = current_tracer()
    with tracer.span(names.SPAN_SYMBOLIC_ENCODE):
        symnet = SymbolicNet(net, use_force_order=use_force_order)
        mgr = symnet.mgr
        current_levels = symnet.current_levels()
        renaming = symnet.next_to_current()

        relations = (
            list(symnet.relations)
            if partitioned
            else [symnet.monolithic_relation()]
        )
    relation_nodes = mgr.count_nodes(*relations)
    reached = symnet.encode_marking(net.initial_marking)
    frontier = reached
    peak = relation_nodes + mgr.count_nodes(reached)
    iterations = 0
    deadline = None if max_seconds is None else time.perf_counter() + max_seconds

    while frontier != ZERO:
        if deadline is not None and time.perf_counter() > deadline:
            # Progress is fixpoint iterations; there is no explicit state
            # count to report at abort.
            raise TimeLimitReached(max_seconds, iterations)  # type: ignore[arg-type]
        iterations += 1
        with tracer.span(names.SPAN_SYMBOLIC_ITERATION, iteration=iterations):
            image = ZERO
            for rel in relations:
                product = relprod(mgr, frontier, rel, current_levels)
                image = mgr.or_(image, rename(mgr, product, renaming))
            frontier = mgr.diff(image, reached)
            reached = mgr.or_(reached, frontier)
            live = relation_nodes + mgr.count_nodes(reached, frontier)
            if live > peak:
                peak = live
    return SymbolicResult(symnet, reached, iterations, peak)


def analyze(
    net: PetriNet,
    *,
    use_force_order: bool = True,
    partitioned: bool = True,
    want_witness: bool = True,
    max_seconds: float | None = None,
) -> AnalysisResult:
    """Symbolic deadlock analysis packaged uniformly.

    ``states`` reports the exact reachable-marking count (the same number
    the full explicit analysis finds); ``extras["peak_bdd_nodes"]`` is the
    Table 1 "Peak BDD-size" analogue and ``extras["iterations"]`` the
    fixpoint depth.  The witness marking (when a deadlock exists) comes
    without a trace — recovering traces needs backward images, which the
    paper's comparison does not exercise.
    """
    tracer = current_tracer()
    with tracer.span(
        names.SPAN_ANALYZE, analyzer="symbolic", net=net.name
    ) as root:
        # Consult the structural certificate before the fixpoint: when it
        # holds, the one-token-per-place BDD encoding is provably exact.
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        with stopwatch() as elapsed:
            result = reach(
                net,
                use_force_order=use_force_order,
                partitioned=partitioned,
                max_seconds=max_seconds,
            )
            dead = result.deadlock_marking()
        witness = None
        if dead is not None and want_witness:
            with tracer.span(names.SPAN_WITNESS):
                witness = DeadlockWitness(
                    marking=net.marking_names(dead), trace=()
                )
        mgr = result.symnet.mgr
        metrics = tracer.metrics
        labels = {"analyzer": "symbolic", "net": net.name}
        metrics.gauge(names.BDD_PEAK_NODES, **labels).set_max(
            result.peak_nodes
        )
        metrics.gauge(names.BDD_CACHE_HIT_RATIO, **labels).set(
            round(mgr.cache_hit_ratio, 4)
        )
        packaged = AnalysisResult(
            analyzer="symbolic",
            net_name=net.name,
            states=result.num_states,
            edges=0,
            deadlock=dead is not None,
            time_seconds=elapsed[0],
            witness=witness,
            extras={
                "peak_bdd_nodes": result.peak_nodes,
                "iterations": result.iterations,
                names.SAFETY_CERTIFIED: certified,
            },
        )
        root.set(
            states=packaged.states,
            iterations=result.iterations,
            peak_bdd_nodes=result.peak_nodes,
        )
    record_result(packaged)
    return packaged
