"""Symbolic reachability baseline (paper §2.4, the "SMV" column)."""

from repro.symbolic.encoding import SymbolicNet
from repro.symbolic.reach import SymbolicResult, analyze, reach

__all__ = ["SymbolicNet", "SymbolicResult", "reach", "analyze"]
