"""Boolean encoding of safe Petri nets for symbolic reachability.

One Boolean variable per place (safe nets are exactly the nets whose
markings are bit-vectors), with the standard interleaved current/next
variable scheme.  The transition relation is kept *partitioned* — one small
relation per transition — so image computation uses per-transition
relational products instead of one monolithic relation (the same regime SMV
operates in for asynchronous models).

The encoding guards each transition with "output places empty" (except
self-loops): on a safe net this never excludes real behaviour, and it keeps
the symbolic state space bit-identical to the explicit one even on nets
where a firing would violate safety (the explicit engine raises there).
"""

from __future__ import annotations

from repro.bdd.manager import BddManager
from repro.bdd.ordering import force_order
from repro.net.petrinet import Marking, PetriNet

__all__ = ["SymbolicNet"]


class SymbolicNet:
    """A safe net compiled to BDDs.

    Attributes
    ----------
    mgr:
        The dedicated :class:`BddManager` (levels: interleaved
        current/next per place, possibly permuted by the FORCE heuristic).
    current / nxt:
        Per place index, the BDD *level* of its current/next variable.
    relations:
        Per transition index, the BDD of its transition relation over
        current and next variables (including frame conditions).
    enabled_any:
        BDD over current variables: "some transition is enabled";
        its negation characterizes deadlocked markings.
    """

    def __init__(self, net: PetriNet, *, use_force_order: bool = True) -> None:
        self.net = net
        self.mgr = BddManager()
        self._monolithic: int | None = None

        order = self._place_order(use_force_order)
        # position of place p in the chosen order -> interleaved levels
        self.current: list[int] = [0] * net.num_places
        self.nxt: list[int] = [0] * net.num_places
        for position, p in enumerate(order):
            self.current[p] = 2 * position
            self.nxt[p] = 2 * position + 1
        self.mgr.declare(2 * net.num_places)

        self.relations: list[int] = [
            self._transition_relation(t) for t in range(net.num_transitions)
        ]
        self.enabled_any = self.mgr.or_all(
            self._enabled_predicate(t) for t in range(net.num_transitions)
        )

    # ------------------------------------------------------------------
    def _place_order(self, use_force_order: bool) -> list[int]:
        if not use_force_order:
            return list(range(self.net.num_places))
        hyperedges = [
            sorted(self.net.pre_places[t] | self.net.post_places[t])
            for t in range(self.net.num_transitions)
        ]
        return force_order(self.net.num_places, hyperedges)

    def _enabled_predicate(self, t: int) -> int:
        """Current-variable BDD: transition ``t`` is enabled (Def. 2.3)."""
        mgr = self.mgr
        node = mgr.and_all(mgr.var(self.current[p]) for p in self.net.pre_places[t])
        return node

    def _transition_relation(self, t: int) -> int:
        """Relation ``enabled ∧ effect ∧ frame`` for one transition."""
        mgr = self.mgr
        net = self.net
        pre = net.pre_places[t]
        post = net.post_places[t]
        conjuncts: list[int] = []
        for p in range(net.num_places):
            cur = self.current[p]
            nxt = self.nxt[p]
            if p in pre and p in post:
                # Self-loop: token required and kept.
                conjuncts.append(mgr.var(cur))
                conjuncts.append(mgr.var(nxt))
            elif p in pre:
                conjuncts.append(mgr.var(cur))
                conjuncts.append(mgr.nvar(nxt))
            elif p in post:
                # Safe-net guard: output place must be empty before firing.
                conjuncts.append(mgr.nvar(cur))
                conjuncts.append(mgr.var(nxt))
            else:
                # Frame: place unchanged.
                conjuncts.append(
                    mgr.iff(mgr.var(cur), mgr.var(nxt))
                )
        return mgr.and_all(conjuncts)

    def monolithic_relation(self) -> int:
        """The single disjunctive transition relation (1998-SMV style).

        Built lazily and cached: ``⋁_t rel_t``.  Using it for image
        computation (see ``reach(..., partitioned=False)``) reproduces the
        blow-up regime the paper observed for SMV on asynchronous nets,
        where the disjunction of frame conditions destroys structure.
        """
        if self._monolithic is None:
            self._monolithic = self.mgr.or_all(self.relations)
        return self._monolithic

    # ------------------------------------------------------------------
    def encode_marking(self, marking: Marking) -> int:
        """Characteristic function of a single marking (current vars)."""
        mgr = self.mgr
        literals = []
        for p in range(self.net.num_places):
            if p in marking:
                literals.append(mgr.var(self.current[p]))
            else:
                literals.append(mgr.nvar(self.current[p]))
        return mgr.and_all(literals)

    def decode_model(self, model: dict[int, bool]) -> Marking:
        """Marking from a current-variable assignment."""
        return frozenset(
            p
            for p in range(self.net.num_places)
            if model.get(self.current[p], False)
        )

    def current_levels(self) -> frozenset[int]:
        """All current-variable levels (for quantification)."""
        return frozenset(self.current)

    def next_to_current(self) -> dict[int, int]:
        """Renaming map next-level -> current-level (order preserving)."""
        return {self.nxt[p]: self.current[p] for p in range(self.net.num_places)}
