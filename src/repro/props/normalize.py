"""Canonical form for properties: the cache-key and routing backbone.

:func:`normalize` rewrites a property into a canonical normal form:

* negations are pushed to the leaves (``!reachable(p)`` becomes
  ``invariant(!p)`` and vice versa; ``!deadlock`` and ``!invariant(safe)``
  stay, they have no dual here);
* place-bound comparisons fold to marked/unmarked literals under the
  1-safe contract every analyzer already enforces (``p >= 1`` is ``p``,
  ``p <= 0`` is ``!p``, ``p <= 3`` is ``true``, ``p >= 2`` is ``false``);
* ``&``/``|`` are flattened, deduplicated, constant-folded,
  contradiction-checked and sorted by rendered text;
* ``invariant(a) & invariant(b)`` merges into ``invariant(a & b)`` and
  ``reachable(a) | reachable(b)`` into ``reachable(a | b)``, so the
  portfolio answers one search instead of two.

The rewrite is idempotent (property-tested) and meaning-preserving, so
:func:`canonical_text` is a stable identity for "the same question" —
:func:`property_hash` of it keys the result cache, meaning syntactic
variants of one query warm each other's cache entries.
"""

from __future__ import annotations

import hashlib

from repro.props.ast import (
    And,
    Bottom,
    Bound,
    Invariant,
    Marked,
    Not,
    Or,
    Predicate,
    PropAnd,
    PropFalse,
    PropNot,
    PropOr,
    Property,
    PropertyError,
    PropTrue,
    Reachable,
    Safe,
    Top,
)

__all__ = [
    "canonical_text",
    "normalize",
    "normalize_predicate",
    "property_hash",
]


# ---------------------------------------------------------------------------
# Predicate layer


def _fold_bound(bound: Bound) -> Predicate:
    """Interpret a token-count comparison on a 1-safe net."""
    place, op, k = bound.place, bound.op, bound.k
    if op == "<=":
        return Top() if k >= 1 else Not(Marked(place))
    if op == ">=":
        if k == 0:
            return Top()
        return Marked(place) if k == 1 else Bottom()
    if op == "=":
        if k == 0:
            return Not(Marked(place))
        return Marked(place) if k == 1 else Bottom()
    raise PropertyError(f"unknown bound operator {op!r}")


def _nnf(pred: Predicate, negated: bool) -> Predicate:
    if isinstance(pred, Top):
        return Bottom() if negated else Top()
    if isinstance(pred, Bottom):
        return Top() if negated else Bottom()
    if isinstance(pred, Bound):
        return _nnf(_fold_bound(pred), negated)
    if isinstance(pred, (Marked, Safe)):
        return Not(pred) if negated else pred
    if isinstance(pred, Not):
        return _nnf(pred.operand, not negated)
    if isinstance(pred, And):
        parts = tuple(_nnf(op, negated) for op in pred.operands)
        return _assemble(parts, is_and=not negated)
    if isinstance(pred, Or):
        parts = tuple(_nnf(op, negated) for op in pred.operands)
        return _assemble(parts, is_and=negated)
    raise PropertyError(f"unknown predicate node {pred!r}")


def _assemble(parts: tuple[Predicate, ...], *, is_and: bool) -> Predicate:
    """Flatten, constant-fold, dedupe, contradiction-check and sort."""
    absorbing, neutral = (Bottom, Top) if is_and else (Top, Bottom)
    flat: list[Predicate] = []
    for part in parts:
        if isinstance(part, And if is_and else Or):
            flat.extend(part.operands)
        else:
            flat.append(part)
    seen: set[str] = set()
    kept: list[Predicate] = []
    for part in flat:
        if isinstance(part, absorbing):
            return absorbing()
        if isinstance(part, neutral):
            continue
        text = part.text()
        if text not in seen:
            seen.add(text)
            kept.append(part)
    # In NNF, negation wraps only atoms — a literal and its complement
    # in the same conjunction (disjunction) collapse the whole node.
    for part in kept:
        complement = (
            part.operand.text() if isinstance(part, Not) else f"!{part.text()}"
        )
        if complement in seen:
            return absorbing()
    if not kept:
        return neutral()
    if len(kept) == 1:
        return kept[0]
    kept.sort(key=lambda p: p.text())
    return And(tuple(kept)) if is_and else Or(tuple(kept))


def normalize_predicate(pred: Predicate) -> Predicate:
    """Canonical negation normal form of a marking predicate."""
    return _nnf(pred, False)


# ---------------------------------------------------------------------------
# Property layer


def _norm_prop(prop: Property, negated: bool) -> Property:
    if isinstance(prop, PropTrue):
        return PropFalse() if negated else PropTrue()
    if isinstance(prop, PropFalse):
        return PropTrue() if negated else PropFalse()
    if isinstance(prop, Invariant) and isinstance(prop.pred, Safe):
        # invariant(safe) has no reachability dual; its negation stays
        # an opaque literal for the planner to decide.
        return PropNot(prop) if negated else prop
    if isinstance(prop, Reachable):
        pred = normalize_predicate(
            Not(prop.pred) if negated else prop.pred
        )
        return _atom(Invariant(pred) if negated else Reachable(pred))
    if isinstance(prop, Invariant):
        pred = normalize_predicate(
            Not(prop.pred) if negated else prop.pred
        )
        return _atom(Reachable(pred) if negated else Invariant(pred))
    if isinstance(prop, PropNot):
        return _norm_prop(prop.operand, not negated)
    if isinstance(prop, PropAnd):
        parts = tuple(_norm_prop(op, negated) for op in prop.operands)
        return _assemble_prop(parts, is_and=not negated)
    if isinstance(prop, PropOr):
        parts = tuple(_norm_prop(op, negated) for op in prop.operands)
        return _assemble_prop(parts, is_and=negated)
    # Deadlock (and anything else atomic): irreducible.
    return PropNot(prop) if negated else prop


def _atom(prop: Property) -> Property:
    """Constant-fold a reachability/invariant atom after normalization."""
    if isinstance(prop, Reachable):
        if isinstance(prop.pred, Bottom):
            return PropFalse()
        if isinstance(prop.pred, Top):
            # The initial marking always exists, so `reachable(true)` holds.
            return PropTrue()
    if isinstance(prop, Invariant):
        if isinstance(prop.pred, Top):
            return PropTrue()
        if isinstance(prop.pred, Bottom):
            return PropFalse()
    return prop


def _assemble_prop(parts: tuple[Property, ...], *, is_and: bool) -> Property:
    absorbing, neutral = (
        (PropFalse, PropTrue) if is_and else (PropTrue, PropFalse)
    )
    flat: list[Property] = []
    for part in parts:
        if isinstance(part, PropAnd if is_and else PropOr):
            flat.extend(part.operands)
        else:
            flat.append(part)
    # invariant(a) & invariant(b) == invariant(a & b);
    # reachable(a) | reachable(b) == reachable(a | b).
    mergeable = Invariant if is_and else Reachable
    merged_preds: list[Predicate] = []
    rest: list[Property] = []
    for part in flat:
        if isinstance(part, mergeable) and not isinstance(part.pred, Safe):
            merged_preds.append(part.pred)
        else:
            rest.append(part)
    if len(merged_preds) > 1:
        joined = And(tuple(merged_preds)) if is_and else Or(tuple(merged_preds))
        rest.append(_atom(mergeable(normalize_predicate(joined))))
    elif merged_preds:
        rest.append(_atom(mergeable(merged_preds[0])))
    seen: set[str] = set()
    kept: list[Property] = []
    for part in rest:
        if isinstance(part, absorbing):
            return absorbing()
        if isinstance(part, neutral):
            continue
        text = part.text()
        if text not in seen:
            seen.add(text)
            kept.append(part)
    for part in kept:
        complement = (
            part.operand.text()
            if isinstance(part, PropNot)
            else f"!{part._atom_text()}"
        )
        if complement in seen:
            return absorbing()
    if not kept:
        return neutral()
    if len(kept) == 1:
        return kept[0]
    kept.sort(key=lambda p: p.text())
    return PropAnd(tuple(kept)) if is_and else PropOr(tuple(kept))


def normalize(prop: Property) -> Property:
    """Canonical, meaning-preserving normal form of a property."""
    return _norm_prop(prop, False)


def canonical_text(prop: Property) -> str:
    """The canonical rendering — the property's stable identity."""
    return normalize(prop).text()


def property_hash(prop: Property) -> str:
    """SHA-256 of the canonical text (the cache-key ingredient)."""
    return hashlib.sha256(canonical_text(prop).encode("utf-8")).hexdigest()
