"""First-class property layer: one query language for every analyzer.

``repro.props`` is the single vocabulary for *what is being verified*.
A query like ``reachable(eat0 & eat1) | deadlock`` parses to an AST
(:mod:`~repro.props.ast`), normalizes to a canonical form whose text is
the cache key (:mod:`~repro.props.normalize`), compiles into per-state
predicates / DNF constraint cubes (:mod:`~repro.props.compile`), and is
screened against each analyzer's declared preservation fragment
(:mod:`~repro.props.compat`) before any state is explored.

The planner (:mod:`repro.props.decide`, imported explicitly to avoid an
import cycle with the engine) ties the layers together: structural fast
verdicts first, then the compatible engine portfolio.
"""

from repro.props.ast import (
    And,
    Bottom,
    Bound,
    Deadlock,
    Invariant,
    Marked,
    Not,
    Or,
    Predicate,
    PropAnd,
    PropFalse,
    PropNot,
    PropOr,
    Property,
    PropertyError,
    PropTrue,
    Reachable,
    Safe,
    Top,
    UnsupportedPropertyError,
    atomic_properties,
    is_atomic,
    places_of,
)
from repro.props.compat import (
    FRAGMENTS,
    decides,
    filter_methods,
    fragment_of,
    supports,
    unsupported_reason,
)
from repro.props.compile import check_places, dnf_literals, predicate_fn
from repro.props.eval import (
    HOLDS_KEY,
    PROPERTY_KEY,
    as_property,
    engine_property,
    holds_of,
    property_extras,
    run_property,
)
from repro.props.normalize import (
    canonical_text,
    normalize,
    normalize_predicate,
    property_hash,
)
from repro.props.parse import parse_predicate, parse_property

__all__ = [
    "FRAGMENTS",
    "HOLDS_KEY",
    "PROPERTY_KEY",
    "And",
    "Bottom",
    "Bound",
    "Deadlock",
    "Invariant",
    "Marked",
    "Not",
    "Or",
    "Predicate",
    "PropAnd",
    "PropFalse",
    "PropNot",
    "PropOr",
    "PropTrue",
    "Property",
    "PropertyError",
    "Reachable",
    "Safe",
    "Top",
    "UnsupportedPropertyError",
    "as_property",
    "atomic_properties",
    "canonical_text",
    "check_places",
    "decides",
    "dnf_literals",
    "engine_property",
    "filter_methods",
    "fragment_of",
    "holds_of",
    "is_atomic",
    "normalize",
    "normalize_predicate",
    "parse_predicate",
    "parse_property",
    "places_of",
    "predicate_fn",
    "property_extras",
    "property_hash",
    "run_property",
    "supports",
    "unsupported_reason",
]
