"""Compile predicates into executable forms.

Three targets, one source AST:

* :func:`predicate_fn` — a closure over ``frozenset[str]`` marking names,
  the form the explicit explorers' goal observers evaluate per state;
* :func:`dnf_literals` — disjunctive normal form as (marked, unmarked)
  tuples, the form the GPO screening algebra and the symbolic engine's
  constraint BDDs consume (:class:`repro.gpo.safety.MarkingConstraint`
  is built from exactly these pairs);
* :func:`check_places` — early validation that every named place exists,
  so a typo fails at parse time instead of as a vacuously false query.

``safe`` predicates compile to none of these — they are decided by the
structural certificate and the bounded safety walk, never per-state.
"""

from __future__ import annotations

from typing import Callable

from repro.net.petrinet import PetriNet
from repro.props.ast import (
    And,
    Bottom,
    Bound,
    Marked,
    Not,
    Or,
    Predicate,
    Property,
    PropertyError,
    Safe,
    Top,
    places_of,
)
from repro.props.normalize import normalize_predicate

__all__ = ["check_places", "dnf_literals", "predicate_fn"]

#: Cap on the number of DNF disjuncts before giving up (the screening
#: engines would otherwise pay an exponential constraint list).
DNF_LIMIT = 64


def check_places(net: PetriNet, prop: Property) -> None:
    """Raise :class:`PropertyError` when the property names unknown places."""
    unknown = [p for p in places_of(prop) if p not in net.place_index]
    if unknown:
        raise PropertyError(
            f"unknown place(s) {', '.join(repr(p) for p in unknown)} "
            f"for net {net.name!r}"
        )


def predicate_fn(
    net: PetriNet, pred: Predicate
) -> Callable[[frozenset[str]], bool]:
    """A fast evaluator of ``pred`` over marking *names*.

    The predicate is normalized first, so bounds are already folded and
    negation sits on atoms.  ``safe`` cannot be evaluated on a single
    marking snapshot here (the explorers enforce 1-safety themselves) and
    is rejected.
    """
    normalized = normalize_predicate(pred)

    def build(
        node: Predicate,
    ) -> Callable[[frozenset[str]], bool]:
        if isinstance(node, Top):
            return lambda names: True
        if isinstance(node, Bottom):
            return lambda names: False
        if isinstance(node, Marked):
            place = node.place
            return lambda names: place in names
        if isinstance(node, Not):
            inner = build(node.operand)
            return lambda names: not inner(names)
        if isinstance(node, And):
            parts = tuple(build(op) for op in node.operands)
            return lambda names: all(fn(names) for fn in parts)
        if isinstance(node, Or):
            parts = tuple(build(op) for op in node.operands)
            return lambda names: any(fn(names) for fn in parts)
        if isinstance(node, (Safe, Bound)):
            raise PropertyError(
                f"predicate atom {node.text()!r} cannot be evaluated "
                "per-marking"
            )
        raise PropertyError(f"unknown predicate node {node!r}")

    return build(normalized)


def dnf_literals(
    pred: Predicate,
) -> tuple[tuple[tuple[str, ...], tuple[str, ...]], ...] | None:
    """Disjunctive normal form as ``(marked, unmarked)`` place tuples.

    Returns ``None`` when the expansion would exceed :data:`DNF_LIMIT`
    disjuncts or the predicate contains ``safe`` — callers fall back to
    an inconclusive screen or another engine.  An empty tuple means the
    predicate is unsatisfiable (``false``); a disjunct with empty sides
    means it is trivially true.
    """
    normalized = normalize_predicate(pred)

    def expand(
        node: Predicate,
    ) -> list[tuple[frozenset[str], frozenset[str]]] | None:
        if isinstance(node, Bottom):
            return []
        if isinstance(node, Top):
            return [(frozenset(), frozenset())]
        if isinstance(node, Marked):
            return [(frozenset({node.place}), frozenset())]
        if isinstance(node, Not):
            if isinstance(node.operand, Marked):
                return [(frozenset(), frozenset({node.operand.place}))]
            return None  # NNF guarantees this does not happen
        if isinstance(node, Or):
            out: list[tuple[frozenset[str], frozenset[str]]] = []
            for operand in node.operands:
                sub = expand(operand)
                if sub is None:
                    return None
                out.extend(sub)
                if len(out) > DNF_LIMIT:
                    return None
            return out
        if isinstance(node, And):
            acc: list[tuple[frozenset[str], frozenset[str]]] = [
                (frozenset(), frozenset())
            ]
            for operand in node.operands:
                sub = expand(operand)
                if sub is None:
                    return None
                acc = [
                    (m1 | m2, u1 | u2)
                    for (m1, u1) in acc
                    for (m2, u2) in sub
                ]
                if len(acc) > DNF_LIMIT:
                    return None
            # Drop contradictory cubes (a place both marked and unmarked).
            return [(m, u) for (m, u) in acc if not (m & u)]
        return None  # Safe / Bound: not per-marking decidable

    cubes = expand(normalized)
    if cubes is None:
        return None
    deduped: dict[
        tuple[tuple[str, ...], tuple[str, ...]], None
    ] = {}
    for marked, unmarked in cubes:
        deduped[(tuple(sorted(marked)), tuple(sorted(unmarked)))] = None
    return tuple(deduped)
