"""Structural fast verdicts: decide properties without exploring states.

Consulted by the planner (and ``gpo query``) before any search is
spawned.  Everything here is a theorem about the net's structure, so a
verdict is exact and exhaustive at zero explored states:

* ``deadlock`` refuted by the siphon–trap condition
  (:func:`repro.static.siphons.deadlock_freedom_precheck`);
* ``invariant(safe)`` proved by the P-invariant safety certificate
  (:func:`repro.static.safety.certify_safety`);
* ``reachable(p)`` / ``invariant(p)`` decided at the initial marking
  when it already (dis)satisfies ``p``;
* ``invariant(p)`` proved by P-invariant counting: a "bad cube" of
  ``!p`` needing places whose invariant weights sum past the conserved
  token count is unreachable (the generalized mutual-exclusion
  argument).

Anything not decided returns ``None`` and falls through to the engine
portfolio.  Compound properties combine leaf verdicts with Kleene
three-valued logic, so one refuted conjunct settles the conjunction
structurally even when its siblings are undecidable here.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.stats import AnalysisResult
from repro.net.petrinet import PetriNet
from repro.props.ast import (
    Deadlock,
    Invariant,
    Not,
    Predicate,
    PropAnd,
    PropFalse,
    PropNot,
    PropOr,
    Property,
    PropTrue,
    Reachable,
    Safe,
)
from repro.props.compile import dnf_literals, predicate_fn
from repro.props.eval import property_extras
from repro.search.witness import DeadlockWitness

__all__ = ["structural_verdict"]


def _initial_names(net: PetriNet) -> frozenset[str]:
    return net.marking_names(net.initial_marking)


def _cube_unreachable(
    net: PetriNet, marked: tuple[str, ...]
) -> bool:
    """Is "all of ``marked`` simultaneously hold tokens" impossible?

    Sound by invariant counting: every P-invariant ``y >= 0`` satisfies
    ``y·m = y·m0`` on reachable markings, so a marking holding tokens on
    all of ``marked`` needs ``sum(y(p) for p in marked) <= y·m0``.
    """
    if not marked:
        return False
    indices = [net.place_id(p) for p in marked]
    basis = net.static_analysis().p_invariants
    m0 = net.initial_marking
    for invariant in basis.invariants:
        value = invariant.value(m0)
        needed = sum(
            (invariant.weights[p] for p in indices), start=Fraction(0)
        )
        if needed > value:
            return True
    return False


def _invariant_proof(net: PetriNet, pred: Predicate) -> bool:
    """Structurally prove ``invariant(pred)`` (False means "unknown")."""
    cubes = dnf_literals(Not(pred))
    if cubes is None:
        return False
    return all(_cube_unreachable(net, marked) for marked, _ in cubes)


def _leaf_verdict(
    net: PetriNet, prop: Property
) -> tuple[bool | None, DeadlockWitness | None, str | None]:
    """(holds, witness, certificate-name) for one atomic property."""
    if isinstance(prop, PropTrue):
        return True, None, "constant"
    if isinstance(prop, PropFalse):
        return False, None, "constant"
    if isinstance(prop, Deadlock):
        if net.static_analysis().deadlock_freedom() == "deadlock-free":
            return False, None, "siphon-trap"
        return None, None, None
    if isinstance(prop, Invariant) and isinstance(prop.pred, Safe):
        if net.static_analysis().safety_certificate.certified:
            return True, None, "p-invariant-safety"
        return None, None, None
    if isinstance(prop, Reachable):
        fn = predicate_fn(net, prop.pred)
        if fn(_initial_names(net)):
            witness = DeadlockWitness(
                marking=_initial_names(net), trace=(), label="goal"
            )
            return True, witness, "initial-marking"
        if _invariant_proof(net, Not(prop.pred)):
            return False, None, "p-invariant-counting"
        return None, None, None
    if isinstance(prop, Invariant):
        fn = predicate_fn(net, prop.pred)
        if not fn(_initial_names(net)):
            witness = DeadlockWitness(
                marking=_initial_names(net), trace=(), label="violation"
            )
            return False, witness, "initial-marking"
        if _invariant_proof(net, prop.pred):
            return True, None, "p-invariant-counting"
        return None, None, None
    return None, None, None


def _verdict(
    net: PetriNet, prop: Property
) -> tuple[bool | None, DeadlockWitness | None, list[str]]:
    if isinstance(prop, PropNot):
        holds, witness, certs = _verdict(net, prop.operand)
        return (None if holds is None else not holds), witness, certs
    if isinstance(prop, (PropAnd, PropOr)):
        is_and = isinstance(prop, PropAnd)
        votes: list[bool | None] = []
        witness: DeadlockWitness | None = None
        certs: list[str] = []
        for operand in prop.operands:
            sub_holds, sub_witness, sub_certs = _verdict(net, operand)
            votes.append(sub_holds)
            certs.extend(sub_certs)
            if sub_holds is (False if is_and else True):
                witness = sub_witness
                break
        if is_and:
            holds: bool | None = (
                False
                if False in votes
                else (True if all(v is True for v in votes) else None)
            )
        else:
            holds = (
                True
                if True in votes
                else (False if all(v is False for v in votes) else None)
            )
        return holds, witness, certs
    holds, witness, cert = _leaf_verdict(net, prop)
    return holds, witness, [cert] if cert is not None else []


def structural_verdict(
    net: PetriNet, prop: Property
) -> AnalysisResult | None:
    """An exact zero-state verdict for ``prop``, or ``None``.

    ``prop`` must already be normalized (the planner normalizes once).
    The returned result uses ``analyzer="static"`` and carries the
    certificates that closed the case in ``extras["certificates"]``.
    """
    holds, witness, certs = _verdict(net, prop)
    if holds is None:
        return None
    extras = property_extras(prop, holds)
    extras["certificates"] = sorted(set(certs))
    return AnalysisResult(
        analyzer="static",
        net_name=net.name,
        states=0,
        edges=0,
        deadlock=False,
        time_seconds=0.0,
        witness=witness,
        exhaustive=True,
        extras=extras,
    )
