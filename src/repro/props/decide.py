"""The property planner: structural verdicts first, then the portfolio.

This is the engine behind ``gpo query`` (and the top-level
:func:`repro.query`): given a net and a property, decide it as cheaply
as possible —

1. **Structural layer** (:mod:`repro.props.static`): P-invariant
   counting, the safety certificate and the siphon–trap condition can
   settle many questions at zero explored states;
2. **Safety walk**: the ``invariant(safe)`` question is decided by the
   structural certificate or the bounded dynamic 1-safety check
   (:func:`repro.net.check_safe`), never by an engine method;
3. **Engine portfolio** (:mod:`repro.engine.portfolio`): the remaining
   atomic questions race the compatible analyzers —
   incompatible method/property pairs are dropped up front with the
   declared reason, screen-only analyzers can win only by refuting.

Compound properties decompose leaf-by-leaf with short-circuiting
three-valued logic, so ``reachable(a) | deadlock`` stops at the first
established disjunct.

This module imports the engine and therefore must not be imported from
``repro.props.__init__`` (the engine's analyzers import the property
layer); reach it as ``repro.props.decide``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import AnalysisResult, DeadlockWitness
from repro.engine.cache import ResultCache
from repro.engine.events import EventSink
from repro.engine.jobs import Budget
from repro.engine.portfolio import DEFAULT_PORTFOLIO, run_race
from repro.net.petrinet import PetriNet
from repro.net.validation import check_safe
from repro.props.ast import Invariant, Property, Safe
from repro.props.compile import check_places
from repro.props.eval import (
    as_property,
    holds_of,
    needs_decomposition,
    property_extras,
    run_property,
)
from repro.props.static import structural_verdict

__all__ = ["Decision", "decide"]


@dataclass
class Decision:
    """Outcome of the planner on one (net, property) question."""

    prop: Property
    result: AnalysisResult
    #: Methods excluded from engine races with the declared reason.
    dropped: tuple[tuple[str, str], ...] = ()

    @property
    def holds(self) -> bool | None:
        """Three-valued verdict: True / False / None (undecided)."""
        return holds_of(self.prop, self.result)

    @property
    def conclusive(self) -> bool:
        return self.holds is not None

    def describe(self) -> str:
        """Multi-line human-readable summary (CLI output)."""
        lines = [f"property: {self.prop.text()}", self.result.describe()]
        if self.result.witness is not None:
            lines.append(str(self.result.witness))
        for method, reason in self.dropped:
            lines.append(f"[compat] {method} dropped: {reason}")
        return "\n".join(lines)


def _safety_walk(
    net: PetriNet, *, max_states: int | None, prop: Property
) -> AnalysisResult:
    """Decide ``invariant(safe)`` by the bounded dynamic 1-safety check.

    (The structural certificate was already consulted by the static
    layer; reaching here means it did not apply.)
    """
    verdict = check_safe(
        net, max_states=max_states if max_states is not None else 100_000
    )
    holds = {"safe": True, "unsafe": False}.get(verdict.status)
    witness = None
    if holds is False and verdict.violation is not None:
        witness = DeadlockWitness(
            marking=frozenset(), trace=(), label=f"unsafe: {verdict.violation}"
        )
    extras = property_extras(prop, holds)
    extras["engine"] = "safety-walk"
    return AnalysisResult(
        analyzer="safety-walk",
        net_name=net.name,
        states=verdict.states,
        edges=0,
        deadlock=False,
        time_seconds=0.0,
        witness=witness,
        exhaustive=holds is not None,
        extras=extras,
    )


def _inconclusive(net: PetriNet, prop: Property) -> AnalysisResult:
    return AnalysisResult(
        analyzer="planner",
        net_name=net.name,
        states=0,
        edges=0,
        deadlock=False,
        time_seconds=0.0,
        exhaustive=False,
        extras=property_extras(prop, None),
    )


def decide(
    net: PetriNet,
    prop: "Property | str",
    *,
    methods: "tuple[str, ...] | list[str] | None" = None,
    budget: Budget | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: EventSink | None = None,
    use_static: bool = True,
    reduce: str = "off",
) -> Decision:
    """Decide ``prop`` on ``net`` as cheaply as possible.

    Raises :class:`~repro.props.ast.PropertyError` on parse errors and
    unknown places; never raises on inconclusiveness — the returned
    :class:`Decision` carries ``holds=None`` instead.

    ``reduce`` applies the :mod:`repro.reduce` structural pre-pass to
    every engine race; the rule subset is chosen per-leaf from the
    property's preservation needs, and places the property observes are
    never removed.  The structural layer and the safety walk always see
    the original net — their exact arithmetic is already cheap.
    """
    normalized = as_property(prop)
    check_places(net, normalized)
    if budget is None:
        budget = Budget()
    if use_static:
        static = structural_verdict(net, normalized)
        if static is not None:
            return Decision(prop=normalized, result=static)

    portfolio = tuple(methods) if methods else DEFAULT_PORTFOLIO
    dropped: dict[str, str] = {}

    def leaf_runner(leaf: Property) -> AnalysisResult:
        if use_static and needs_decomposition(normalized):
            static = structural_verdict(net, leaf)
            if static is not None:
                return static
        if isinstance(leaf, Invariant) and isinstance(leaf.pred, Safe):
            return _safety_walk(net, max_states=budget.max_states, prop=leaf)
        outcome = run_race(
            net,
            methods=portfolio,
            budget=budget,
            jobs=jobs,
            cache=cache,
            events=events,
            query=leaf.text(),
            reduce=reduce,
        )
        dropped.update(dict(outcome.dropped))
        if outcome.winner is not None:
            return outcome.winner.result
        for ran in reversed(outcome.results):
            if ran.ran:
                return ran.result
        return _inconclusive(net, leaf)

    result = run_property(
        normalized, leaf_runner, analyzer="planner", net_name=net.name
    )
    return Decision(
        prop=normalized, result=result, dropped=tuple(dropped.items())
    )
