"""Text parser for the property language.

The grammar (both levels share the connectives ``!`` > ``&`` > ``|``,
tightest first; parentheses group)::

    property  := pterm ('|' pterm)*
    pterm     := pfactor ('&' pfactor)*
    pfactor   := '!' pfactor | '(' property ')' | patom
    patom     := 'deadlock' | 'true' | 'false' | 'safe'
               | 'reachable' '(' predicate ')'
               | 'invariant' '(' predicate ')'

    predicate := term ('|' term)*
    term      := factor ('&' factor)*
    factor    := '!' factor | '(' predicate ')' | atom
    atom      := 'true' | 'false' | 'safe'
               | PLACE | PLACE ('<=' | '>=' | '=' | '==') INT

``safe`` at the property level is sugar for ``invariant(safe)``.  Place
names follow the net formats: letters, digits, ``_``, ``.``, ``'`` and
``-`` (transitions like ``takeR'0`` motivated the apostrophe); the six
keywords are reserved.  Parsing and :meth:`~repro.props.ast.Property.text`
round-trip exactly — the hypothesis suite holds them to it.
"""

from __future__ import annotations

import re

from repro.props.ast import (
    And,
    Bottom,
    Bound,
    Deadlock,
    Invariant,
    Marked,
    Not,
    Or,
    Predicate,
    PropAnd,
    PropFalse,
    PropNot,
    PropOr,
    Property,
    PropertyError,
    PropTrue,
    Reachable,
    Safe,
    Top,
)

__all__ = ["parse_predicate", "parse_property"]

_KEYWORDS = frozenset(
    {"deadlock", "reachable", "invariant", "safe", "true", "false"}
)

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<op><=|>=|==|=)"
    r"|(?P<punct>[()&|!])"
    r"|(?P<int>\d+(?![A-Za-z_.'\-]))"
    r"|(?P<ident>[A-Za-z0-9_][A-Za-z0-9_.'\-]*)"
    r")"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.end() == match.start():
            rest = text[pos:].lstrip()
            if not rest:
                break
            raise PropertyError(
                f"cannot tokenize property at {rest[:20]!r}"
            )
        pos = match.end()
        for kind in ("op", "punct", "int", "ident"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PropertyError(
                f"unexpected end of property in {self.text!r}"
            )
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        token = self.peek()
        if token is None or token[1] != value:
            got = token[1] if token is not None else "end of input"
            raise PropertyError(
                f"expected {value!r}, got {got!r} in {self.text!r}"
            )
        self.pos += 1

    def done(self) -> None:
        token = self.peek()
        if token is not None:
            raise PropertyError(
                f"trailing input {token[1]!r} in {self.text!r}"
            )

    # -- property level -------------------------------------------------
    def property_(self) -> Property:
        operands = [self.pterm()]
        while (token := self.peek()) is not None and token[1] == "|":
            self.take()
            operands.append(self.pterm())
        return operands[0] if len(operands) == 1 else PropOr(tuple(operands))

    def pterm(self) -> Property:
        operands = [self.pfactor()]
        while (token := self.peek()) is not None and token[1] == "&":
            self.take()
            operands.append(self.pfactor())
        return operands[0] if len(operands) == 1 else PropAnd(tuple(operands))

    def pfactor(self) -> Property:
        token = self.peek()
        if token is not None and token[1] == "!":
            self.take()
            return PropNot(self.pfactor())
        if token is not None and token[1] == "(":
            self.take()
            inner = self.property_()
            self.expect(")")
            return inner
        return self.patom()

    def patom(self) -> Property:
        kind, value = self.take()
        if kind != "ident":
            raise PropertyError(
                f"expected a property atom, got {value!r} in {self.text!r}"
            )
        if value == "deadlock":
            return Deadlock()
        if value == "true":
            return PropTrue()
        if value == "false":
            return PropFalse()
        if value == "safe":
            return Invariant(Safe())
        if value in ("reachable", "invariant"):
            self.expect("(")
            pred = self.predicate()
            self.expect(")")
            return Reachable(pred) if value == "reachable" else Invariant(pred)
        raise PropertyError(
            f"unknown property atom {value!r} in {self.text!r} "
            "(expected deadlock, reachable(...), invariant(...), safe, "
            "true or false)"
        )

    # -- predicate level ------------------------------------------------
    def predicate(self) -> Predicate:
        operands = [self.term()]
        while (token := self.peek()) is not None and token[1] == "|":
            self.take()
            operands.append(self.term())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def term(self) -> Predicate:
        operands = [self.factor()]
        while (token := self.peek()) is not None and token[1] == "&":
            self.take()
            operands.append(self.factor())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def factor(self) -> Predicate:
        token = self.peek()
        if token is not None and token[1] == "!":
            self.take()
            return Not(self.factor())
        if token is not None and token[1] == "(":
            self.take()
            inner = self.predicate()
            self.expect(")")
            return inner
        return self.atom()

    def atom(self) -> Predicate:
        kind, value = self.take()
        if kind not in ("ident", "int"):
            raise PropertyError(
                f"expected a place or constant, got {value!r} in {self.text!r}"
            )
        if value == "true":
            return Top()
        if value == "false":
            return Bottom()
        if value == "safe":
            return Safe()
        if value in _KEYWORDS:
            raise PropertyError(
                f"keyword {value!r} cannot be used as a place name"
            )
        token = self.peek()
        if token is not None and token[0] == "op":
            op = self.take()[1]
            op = "=" if op == "==" else op
            kind, bound = self.take()
            if kind != "int":
                raise PropertyError(
                    f"expected an integer bound after {value!r} {op}, "
                    f"got {bound!r}"
                )
            return Bound(place=value, op=op, k=int(bound))
        return Marked(place=value)


def _check_safe_placement(prop: Property) -> None:
    """``safe`` is only decidable as the whole body of ``invariant``."""

    def bad_pred(pred: Predicate, *, allow_top_level: bool) -> bool:
        if isinstance(pred, Safe):
            return not allow_top_level
        if isinstance(pred, Not):
            return bad_pred(pred.operand, allow_top_level=False)
        if isinstance(pred, (And, Or)):
            return any(
                bad_pred(op, allow_top_level=False) for op in pred.operands
            )
        return False

    def walk(node: Property) -> None:
        if isinstance(node, Invariant):
            if bad_pred(node.pred, allow_top_level=True):
                raise PropertyError(
                    "'safe' may only appear as the entire predicate of "
                    "invariant(safe)"
                )
        elif isinstance(node, Reachable):
            if bad_pred(node.pred, allow_top_level=False):
                raise PropertyError(
                    "'safe' is not allowed inside reachable(...); "
                    "use invariant(safe)"
                )
        elif isinstance(node, PropNot):
            walk(node.operand)
        elif isinstance(node, (PropAnd, PropOr)):
            for operand in node.operands:
                walk(operand)

    walk(prop)


def parse_property(text: str) -> Property:
    """Parse ``text`` into a :class:`~repro.props.ast.Property`.

    Raises :class:`~repro.props.ast.PropertyError` on malformed input.
    """
    if not text or not text.strip():
        raise PropertyError("empty property")
    parser = _Parser(text)
    prop = parser.property_()
    parser.done()
    _check_safe_placement(prop)
    return prop


def parse_predicate(text: str) -> Predicate:
    """Parse ``text`` as a bare marking predicate (used by ``gpo reach``)."""
    if not text or not text.strip():
        raise PropertyError("empty predicate")
    parser = _Parser(text)
    pred = parser.predicate()
    parser.done()
    if _contains_safe(pred):
        raise PropertyError(
            "'safe' may only appear as the predicate of invariant(safe)"
        )
    return pred


def _contains_safe(pred: Predicate) -> bool:
    if isinstance(pred, Safe):
        return True
    if isinstance(pred, Not):
        return _contains_safe(pred.operand)
    if isinstance(pred, (And, Or)):
        return any(_contains_safe(op) for op in pred.operands)
    return False
