"""Analyzer/property compatibility declarations — the preservation matrix.

A reduced search answers fewer questions than it visits states for: the
stubborn-set reduction preserves *deadlocks only* (Valmari), and the GPO
exploration's scenario screen can *refute* an invariant (every mapped
marking is genuinely reachable) but never prove one (the reduction may
skip intermediate markings).  This module is the single place those
facts are declared, so the portfolio, the serve protocol and the CLI all
filter analyzer/property pairs the same way instead of silently
answering the wrong question.

Fragments: ``deadlock`` | ``reachable`` | ``invariant`` | ``safety``
(the ``invariant(safe)`` 1-safety question, decided by the structural
certificate and the bounded safety walk, not by any engine method) |
``constant`` (``true``/``false``).  Compound properties require every
atomic leaf to be supported.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.props.ast import (
    Deadlock,
    Invariant,
    PropFalse,
    Property,
    PropertyError,
    PropTrue,
    Reachable,
    Safe,
    atomic_properties,
)

__all__ = [
    "FRAGMENTS",
    "REDUCTION_LEVELS",
    "decides",
    "filter_methods",
    "fragment_of",
    "reduction_level",
    "supports",
    "unsupported_reason",
]

#: Per-analyzer supported fragments.  A listed fragment means the
#: analyzer accepts the question and its conclusive answers are sound;
#: it does not promise conclusiveness (see :data:`_SCREEN_ONLY`).
FRAGMENTS: Mapping[str, frozenset[str]] = {
    "full": frozenset({"deadlock", "reachable", "invariant", "constant"}),
    "stubborn": frozenset({"deadlock", "constant"}),
    "symbolic": frozenset({"deadlock", "reachable", "invariant", "constant"}),
    "gpo": frozenset({"deadlock", "reachable", "invariant", "constant"}),
    "unfolding": frozenset({"deadlock", "reachable", "invariant", "constant"}),
    "timed": frozenset({"deadlock", "reachable", "invariant", "constant"}),
    "parallel": frozenset({"deadlock", "constant"}),
}

#: Fragments where the analyzer only *screens*: a hit (reachable
#: witness / invariant violation) is sound and conclusive, but a clean
#: run proves nothing — the portfolio must not stop on its negatives.
_SCREEN_ONLY: Mapping[str, frozenset[str]] = {
    "gpo": frozenset({"reachable", "invariant"}),
}

_REASONS: Mapping[str, str] = {
    "stubborn": "the stubborn-set reduction preserves deadlocks only",
    "parallel": (
        "the sharded explorer keeps visited sets, not the edge structure "
        "reachability witnesses need; it answers the deadlock question only"
    ),
}

#: Contract assumed for analyzers registered at runtime (plugins, test
#: doubles) that predate the property layer: they take the historical
#: deadlock question and nothing else.
_LEGACY_FRAGMENTS: frozenset[str] = frozenset({"deadlock", "constant"})


def fragment_of(prop: Property) -> str:
    """The fragment name of one *atomic* property."""
    if isinstance(prop, Deadlock):
        return "deadlock"
    if isinstance(prop, Invariant):
        return "safety" if isinstance(prop.pred, Safe) else "invariant"
    if isinstance(prop, Reachable):
        return "reachable"
    if isinstance(prop, (PropTrue, PropFalse)):
        return "constant"
    raise PropertyError(f"not an atomic property: {prop.text()!r}")


def _fragments_needed(prop: Property) -> frozenset[str]:
    return frozenset(fragment_of(leaf) for leaf in atomic_properties(prop))


def supports(method: str, prop: Property) -> bool:
    """Can ``method`` soundly work on every atomic leaf of ``prop``?"""
    allowed = FRAGMENTS.get(method, _LEGACY_FRAGMENTS)
    return _fragments_needed(prop) <= allowed


def decides(method: str, prop: Property) -> bool:
    """Can ``method`` (budget permitting) produce a conclusive verdict
    either way?  False for screen-only fragments (GPO on reachability:
    a hit concludes, a clean screen does not)."""
    if not supports(method, prop):
        return False
    screened = _SCREEN_ONLY.get(method, frozenset())
    return not (_fragments_needed(prop) & screened)


def unsupported_reason(method: str, prop: Property) -> str | None:
    """Why ``method`` cannot take ``prop`` — or ``None`` when it can."""
    allowed = FRAGMENTS.get(method)
    if allowed is None:
        missing = sorted(_fragments_needed(prop) - _LEGACY_FRAGMENTS)
        if not missing:
            return None
        return (
            f"analyzer {method!r} is not in the preservation matrix; "
            "it is assumed to answer the deadlock question only"
        )
    missing = sorted(_fragments_needed(prop) - allowed)
    if not missing:
        return None
    if "safety" in missing:
        return (
            "invariant(safe) is decided structurally (certificate + "
            "bounded walk), not by an engine method"
        )
    return _REASONS.get(
        method,
        f"analyzer {method!r} does not preserve: {', '.join(missing)}",
    )


#: Structural-reduction preservation levels, weakest guarantee last.
#: The rule subsets of :mod:`repro.reduce` nest in this order
#: (``count`` ⊂ ``reachability`` ⊂ ``deadlock``): a level further right
#: admits more rules but preserves less of the original behaviour.
REDUCTION_LEVELS: tuple[str, ...] = ("count", "reachability", "deadlock")

#: Fragment → strongest reduction level whose rules still answer it.
#: Deadlock questions tolerate the agglomerations; reachability and
#: invariant questions need every surviving marking's projection intact
#: (no internal-sequence contraction); the 1-safety question compares
#: token counts place by place, so only marking-bijective rules apply.
_FRAGMENT_REDUCTION: Mapping[str, str] = {
    "deadlock": "deadlock",
    "constant": "deadlock",
    "reachable": "reachability",
    "invariant": "reachability",
    "safety": "count",
}


def reduction_level(prop: Property) -> str:
    """The strongest reduction level sound for every leaf of ``prop``.

    Compound properties take the most restrictive level any leaf
    demands — the reduction runs once for the whole property, so the
    rule subset must be sound for all of it.
    """
    levels = {
        _FRAGMENT_REDUCTION[fragment_of(leaf)]
        for leaf in atomic_properties(prop)
    }
    for level in REDUCTION_LEVELS:
        if level in levels:
            return level
    return "deadlock"


def filter_methods(
    methods: Iterable[str], prop: Property
) -> tuple[tuple[str, ...], tuple[tuple[str, str], ...]]:
    """Split ``methods`` into (compatible, dropped-with-reason) for ``prop``.

    Order is preserved; the dropped half carries the human-readable
    reason the portfolio and the CLI report instead of silently running
    an analyzer on a question it cannot answer.
    """
    kept: list[str] = []
    dropped: list[tuple[str, str]] = []
    for method in methods:
        reason = unsupported_reason(method, prop)
        if reason is None:
            kept.append(method)
        else:
            dropped.append((method, reason))
    return tuple(kept), tuple(dropped)
