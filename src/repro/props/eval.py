"""Three-valued property evaluation shared by every analyzer.

An analyzer answers the atomic questions (``deadlock``,
``reachable(p)``, ``invariant(p)``) natively; boolean combinations are
decomposed here with Kleene three-valued logic — ``None`` meaning "this
run was not conclusive" (bounded search, screening miss).  A conjunction
short-circuits on the first refuted conjunct, a disjunction on the first
established disjunct, so compound queries pay only for the leaves that
matter.

Verdict convention: a property run records ``extras["property"]`` (the
canonical text) and ``extras["property_holds"]`` (``True`` / ``False`` /
``None``) on its :class:`~repro.analysis.stats.AnalysisResult`.  The
native deadlock question keeps its historical representation
(``result.deadlock`` + ``exhaustive``) — :func:`holds_of` reads both
forms, and ``prop=None`` / ``prop="deadlock"`` runs stay byte-identical
to the pre-property-layer output.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.stats import AnalysisResult
from repro.props.ast import (
    Deadlock,
    Invariant,
    PropAnd,
    PropFalse,
    PropNot,
    PropOr,
    Property,
    PropertyError,
    PropTrue,
    Reachable,
    Safe,
    UnsupportedPropertyError,
)
from repro.props.normalize import normalize
from repro.props.parse import parse_property

__all__ = [
    "HOLDS_KEY",
    "PROPERTY_KEY",
    "as_property",
    "engine_property",
    "holds_of",
    "needs_decomposition",
    "property_extras",
    "reject_safe",
    "run_property",
]

#: Extras key holding the canonical property text of a property run.
PROPERTY_KEY = "property"
#: Extras key holding the three-valued verdict of a property run.
HOLDS_KEY = "property_holds"


def as_property(prop: "Property | str") -> Property:
    """Accept an AST node or query text; always return a normalized AST."""
    if isinstance(prop, str):
        prop = parse_property(prop)
    return normalize(prop)


def engine_property(prop: "Property | str | None") -> Property | None:
    """Canonicalize an analyzer's ``prop`` argument.

    ``None`` and the native ``deadlock`` question both map to ``None`` —
    the analyzer then runs its historical deadlock path unchanged (same
    extras, same cache entries, same Table 1 bytes).
    """
    if prop is None:
        return None
    normalized = as_property(prop)
    if isinstance(normalized, Deadlock):
        return None
    return normalized


def reject_safe(method: str, prop: Property) -> None:
    """Engine methods cannot decide ``invariant(safe)``; fail loudly."""
    if isinstance(prop, Invariant) and isinstance(prop.pred, Safe):
        raise UnsupportedPropertyError(
            method,
            prop,
            "1-safety is decided structurally (certificate + bounded "
            "walk); use the planner or `gpo check`",
        )


def needs_decomposition(prop: Property) -> bool:
    """True when :func:`run_property` must drive this node (constants
    and boolean combinations); False for the atomic search questions."""
    return not isinstance(prop, (Deadlock, Reachable, Invariant))


def holds_of(prop: Property, result: AnalysisResult) -> bool | None:
    """The three-valued verdict of one analyzer run for ``prop``."""
    if PROPERTY_KEY in result.extras:
        holds = result.extras.get(HOLDS_KEY)
        return None if holds is None else bool(holds)
    # Legacy deadlock representation: a found deadlock is a definite
    # "yes"; a clean search decides only when exhaustive.
    if result.deadlock:
        return True
    return False if result.exhaustive else None


def property_extras(prop: Property, holds: bool | None) -> dict[str, Any]:
    """The uniform extras a property run attaches to its result."""
    return {PROPERTY_KEY: prop.text(), HOLDS_KEY: holds}


def _constant_result(
    prop: Property, *, analyzer: str, net_name: str
) -> AnalysisResult:
    holds = isinstance(prop, PropTrue)
    return AnalysisResult(
        analyzer=analyzer,
        net_name=net_name,
        states=0,
        edges=0,
        deadlock=False,
        time_seconds=0.0,
        exhaustive=True,
        extras=property_extras(prop, holds),
    )


def run_property(
    prop: Property,
    runner: Callable[[Property], AnalysisResult],
    *,
    analyzer: str,
    net_name: str,
) -> AnalysisResult:
    """Decompose a compound property over one analyzer's atomic runs.

    ``runner`` answers one atomic property (it is typically the
    analyzer's own ``analyze`` partially applied).  Sub-runs are
    combined with three-valued logic, short-circuiting; the packaged
    result aggregates their state/edge/time costs and keeps the witness
    of the deciding leaf.
    """
    if isinstance(prop, (PropTrue, PropFalse)):
        return _constant_result(prop, analyzer=analyzer, net_name=net_name)
    if isinstance(prop, (Deadlock, Reachable, Invariant)):
        return runner(prop)
    if isinstance(prop, PropNot):
        sub = run_property(
            prop.operand, runner, analyzer=analyzer, net_name=net_name
        )
        inner = holds_of(prop.operand, sub)
        holds = None if inner is None else not inner
        return _package(prop, holds, [sub], sub.witness, analyzer, net_name)
    if isinstance(prop, (PropAnd, PropOr)):
        is_and = isinstance(prop, PropAnd)
        subs: list[AnalysisResult] = []
        votes: list[bool | None] = []
        witness = None
        for operand in prop.operands:
            sub = run_property(
                operand, runner, analyzer=analyzer, net_name=net_name
            )
            subs.append(sub)
            vote = holds_of(operand, sub)
            votes.append(vote)
            if vote is (False if is_and else True):
                witness = sub.witness
                break
        if is_and:
            holds: bool | None = (
                False
                if False in votes
                else (True if all(v is True for v in votes) else None)
            )
        else:
            holds = (
                True
                if True in votes
                else (False if all(v is False for v in votes) else None)
            )
        if witness is None and holds is not None:
            for sub in subs:
                if sub.witness is not None:
                    witness = sub.witness
                    break
        return _package(prop, holds, subs, witness, analyzer, net_name)
    raise PropertyError(f"unknown property node {prop!r}")


def _package(
    prop: Property,
    holds: bool | None,
    subs: list[AnalysisResult],
    witness: Any,
    analyzer: str,
    net_name: str,
) -> AnalysisResult:
    extras: dict[str, Any] = property_extras(prop, holds)
    extras["subproperties"] = [
        {
            "property": sub.extras.get(PROPERTY_KEY, "deadlock"),
            "holds": holds_of(prop, sub),
            "states": sub.states,
        }
        for sub in subs
    ]
    return AnalysisResult(
        analyzer=analyzer,
        net_name=net_name,
        states=sum(sub.states for sub in subs),
        edges=sum(sub.edges for sub in subs),
        deadlock=False,
        time_seconds=sum(sub.time_seconds for sub in subs),
        witness=witness,
        exhaustive=all(sub.exhaustive for sub in subs),
        extras=extras,
    )
