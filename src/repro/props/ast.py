"""Property-language AST: predicates over markings, properties over nets.

The language has two levels.  A *predicate* describes a single marking of
a 1-safe net: place atoms (``eat0`` — the place holds a token), bound
comparisons (``eat0 >= 1``, ``buf <= 0``), the ``safe`` atom (every place
holds at most one token — decidable only by the safety checkers), the
constants ``true`` / ``false`` and the boolean connectives ``!``, ``&``,
``|``.  A *property* asks a question about the whole reachable behaviour:

* ``deadlock`` — some reachable marking enables no transition;
* ``reachable(<pred>)`` — some reachable marking satisfies the predicate;
* ``invariant(<pred>)`` — every reachable marking satisfies it;
* boolean combinations of the above with the same ``!``/``&``/``|``.

Every node renders itself back to text via :meth:`text`; the parser and
the printer round-trip exactly (property-tested), which is what makes the
canonical form usable as a cache-key ingredient.  Nodes are frozen
dataclasses, so structural equality and hashing come for free.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "And",
    "Bottom",
    "Bound",
    "Deadlock",
    "Invariant",
    "Marked",
    "Not",
    "Or",
    "Predicate",
    "PropAnd",
    "PropFalse",
    "PropNot",
    "PropOr",
    "PropTrue",
    "Property",
    "PropertyError",
    "Reachable",
    "Safe",
    "Top",
    "UnsupportedPropertyError",
    "atomic_properties",
    "is_atomic",
    "places_of",
]


class PropertyError(ValueError):
    """A malformed, unparsable or unsupported property."""


class UnsupportedPropertyError(PropertyError):
    """An analyzer was asked a question outside its preserved fragment."""

    def __init__(self, method: str, prop: "Property", reason: str) -> None:
        super().__init__(
            f"analyzer {method!r} cannot decide {prop.text()!r}: {reason}"
        )
        self.method = method
        self.prop = prop
        self.reason = reason


# ---------------------------------------------------------------------------
# Predicates (evaluated on one marking)


@dataclass(frozen=True)
class Predicate:
    """Base class for marking predicates."""

    def text(self) -> str:
        raise NotImplementedError

    def _atom_text(self) -> str:
        """Rendering inside a tighter-binding context (parenthesized
        unless the node is atomic)."""
        return self.text()


@dataclass(frozen=True)
class Top(Predicate):
    """``true`` — satisfied by every marking."""

    def text(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Predicate):
    """``false`` — satisfied by no marking."""

    def text(self) -> str:
        return "false"


@dataclass(frozen=True)
class Marked(Predicate):
    """``place`` — the named place holds a token."""

    place: str

    def text(self) -> str:
        return self.place


@dataclass(frozen=True)
class Bound(Predicate):
    """``place <op> k`` — a token-count comparison (``<=``, ``>=``, ``=``).

    On the 1-safe nets this system analyzes every bound folds to a marked
    /unmarked literal or a constant (see :mod:`repro.props.normalize`);
    the surface form exists so queries can be written in the net-agnostic
    style of the model-checking-contest formula languages.
    """

    place: str
    op: str  # "<=", ">=" or "="
    k: int

    def text(self) -> str:
        return f"{self.place} {self.op} {self.k}"

    def _atom_text(self) -> str:
        return f"({self.text()})"


@dataclass(frozen=True)
class Safe(Predicate):
    """``safe`` — every place holds at most one token.

    Only meaningful as the entire predicate of ``invariant(safe)`` (the
    1-safety question ``gpo check`` answers); the parser rejects it
    anywhere else.
    """

    def text(self) -> str:
        return "safe"


@dataclass(frozen=True)
class Not(Predicate):
    """``!p``."""

    operand: Predicate

    def text(self) -> str:
        return f"!{self.operand._atom_text()}"


@dataclass(frozen=True)
class And(Predicate):
    """``p & q & ...`` (n-ary, always >= 2 operands)."""

    operands: tuple[Predicate, ...]

    def text(self) -> str:
        return " & ".join(
            f"({op.text()})" if isinstance(op, Or) else op._atom_text()
            for op in self.operands
        )

    def _atom_text(self) -> str:
        return f"({self.text()})"


@dataclass(frozen=True)
class Or(Predicate):
    """``p | q | ...`` (n-ary, always >= 2 operands)."""

    operands: tuple[Predicate, ...]

    def text(self) -> str:
        return " | ".join(op._atom_text() for op in self.operands)

    def _atom_text(self) -> str:
        return f"({self.text()})"


# ---------------------------------------------------------------------------
# Properties (evaluated on the reachable behaviour)


@dataclass(frozen=True)
class Property:
    """Base class for net-level properties."""

    def text(self) -> str:
        raise NotImplementedError

    def _atom_text(self) -> str:
        return self.text()


@dataclass(frozen=True)
class PropTrue(Property):
    """``true`` at the property level (normal-form constant)."""

    def text(self) -> str:
        return "true"


@dataclass(frozen=True)
class PropFalse(Property):
    """``false`` at the property level (normal-form constant)."""

    def text(self) -> str:
        return "false"


@dataclass(frozen=True)
class Deadlock(Property):
    """``deadlock`` — some reachable marking enables no transition.

    This is the paper's Table 1 question; it *holds* when a deadlock
    exists (matching ``AnalysisResult.deadlock``).
    """

    def text(self) -> str:
        return "deadlock"


@dataclass(frozen=True)
class Reachable(Property):
    """``reachable(p)`` — some reachable marking satisfies ``p``."""

    pred: Predicate

    def text(self) -> str:
        return f"reachable({self.pred.text()})"


@dataclass(frozen=True)
class Invariant(Property):
    """``invariant(p)`` — every reachable marking satisfies ``p``."""

    pred: Predicate

    def text(self) -> str:
        return f"invariant({self.pred.text()})"


@dataclass(frozen=True)
class PropNot(Property):
    """``!P``."""

    operand: Property

    def text(self) -> str:
        return f"!{self.operand._atom_text()}"


@dataclass(frozen=True)
class PropAnd(Property):
    """``P & Q & ...`` (n-ary, always >= 2 operands)."""

    operands: tuple[Property, ...]

    def text(self) -> str:
        return " & ".join(
            f"({op.text()})" if isinstance(op, PropOr) else op._atom_text()
            for op in self.operands
        )

    def _atom_text(self) -> str:
        return f"({self.text()})"


@dataclass(frozen=True)
class PropOr(Property):
    """``P | Q | ...`` (n-ary, always >= 2 operands)."""

    operands: tuple[Property, ...]

    def text(self) -> str:
        return " | ".join(op._atom_text() for op in self.operands)

    def _atom_text(self) -> str:
        return f"({self.text()})"


# ---------------------------------------------------------------------------
# Structural helpers


def is_atomic(prop: Property) -> bool:
    """True for the leaf questions an analyzer answers in one run."""
    return isinstance(
        prop, (Deadlock, Reachable, Invariant, PropTrue, PropFalse)
    )


def atomic_properties(prop: Property) -> tuple[Property, ...]:
    """Every atomic leaf of a (possibly compound) property, in order."""
    if is_atomic(prop):
        return (prop,)
    if isinstance(prop, PropNot):
        return atomic_properties(prop.operand)
    if isinstance(prop, (PropAnd, PropOr)):
        out: list[Property] = []
        for operand in prop.operands:
            out.extend(atomic_properties(operand))
        return tuple(out)
    raise PropertyError(f"unknown property node {prop!r}")


def _pred_places(pred: Predicate, out: list[str]) -> None:
    if isinstance(pred, Marked):
        out.append(pred.place)
    elif isinstance(pred, Bound):
        out.append(pred.place)
    elif isinstance(pred, Not):
        _pred_places(pred.operand, out)
    elif isinstance(pred, (And, Or)):
        for operand in pred.operands:
            _pred_places(operand, out)


def places_of(prop: Property) -> tuple[str, ...]:
    """Every place name mentioned by the property, in first-use order."""
    out: list[str] = []
    for leaf in atomic_properties(prop):
        if isinstance(leaf, (Reachable, Invariant)):
            _pred_places(leaf.pred, out)
    seen: set[str] = set()
    unique: list[str] = []
    for name in out:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return tuple(unique)
