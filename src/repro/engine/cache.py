"""On-disk result cache keyed by canonical structural hashes.

Repeated ``table1`` / ``figures`` runs re-verify identical nets with
identical budgets; this cache makes them incremental.  The key is the
SHA-256 of :meth:`VerificationJob.cache_key_material`, which is built on
``PetriNet.canonical_hash()`` — a *structural* identity, stable across
place/transition declaration order — plus the method, query and budget.

Entries are small JSON files (one per result) under ``root/<k[:2]>/<k>.json``
so the cache is transparent, diffable and safe to prune with ``rm``.
Only results an analyzer actually completed (``status == "ok"``) are
stored; killed/crashed outcomes are transient and must be re-run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.analysis.stats import AnalysisResult, DeadlockWitness
from repro.engine.jobs import VerificationJob

__all__ = [
    "ResultCache",
    "default_cache_root",
    "result_from_dict",
    "result_to_dict",
]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "GPO_CACHE_DIR"

#: Bump when the serialized format changes; old entries are then ignored.
FORMAT_VERSION = 1


def default_cache_root() -> Path:
    """The cache directory: ``$GPO_CACHE_DIR`` or ``.gpo-cache`` in cwd."""
    return Path(os.environ.get(CACHE_DIR_ENV, ".gpo-cache"))


def result_to_dict(result: AnalysisResult) -> dict[str, Any]:
    """JSON-safe dict form of an :class:`AnalysisResult`."""
    witness = None
    if result.witness is not None:
        witness = {
            "marking": sorted(result.witness.marking),
            "trace": list(result.witness.trace),
            "label": result.witness.label,
        }
    return {
        "analyzer": result.analyzer,
        "net_name": result.net_name,
        "states": result.states,
        "edges": result.edges,
        "deadlock": result.deadlock,
        "time_seconds": result.time_seconds,
        "witness": witness,
        "exhaustive": result.exhaustive,
        "extras": result.extras,
    }


def result_from_dict(payload: dict[str, Any]) -> AnalysisResult:
    """Inverse of :func:`result_to_dict`."""
    witness = None
    if payload.get("witness") is not None:
        w = payload["witness"]
        witness = DeadlockWitness(
            marking=frozenset(w["marking"]),
            trace=tuple(w["trace"]),
            label=w.get("label", "deadlock"),
        )
    return AnalysisResult(
        analyzer=payload["analyzer"],
        net_name=payload["net_name"],
        states=payload["states"],
        edges=payload["edges"],
        deadlock=payload["deadlock"],
        time_seconds=payload["time_seconds"],
        witness=witness,
        exhaustive=payload["exhaustive"],
        extras=dict(payload.get("extras", {})),
    )


class ResultCache:
    """Content-addressed store of completed :class:`AnalysisResult` values.

    >>> import tempfile
    >>> from repro.models import choice_net
    >>> from repro.engine.jobs import VerificationJob, execute_job
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     cache = ResultCache(tmp)
    ...     job = VerificationJob(net=choice_net(), method="gpo")
    ...     cache.get(job) is None
    ...     cache.put(job, execute_job(job))
    ...     cache.get(job).deadlock
    True
    True
    """

    #: Process-wide sequence making concurrent writers' temp names unique
    #: even when two threads store the same key at the same instant.
    _tmp_seq = itertools.count()

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self._stats_lock = threading.Lock()

    def key(self, job: VerificationJob) -> str:
        """Hex cache key of a job."""
        material = job.cache_key_material().encode("utf-8")
        return hashlib.sha256(material).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _count(self, *, hit: bool) -> None:
        with self._stats_lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def get(self, job: VerificationJob) -> AnalysisResult | None:
        """Look up a prior result; returns ``None`` on miss or corruption.

        The read path is lock-free: entries only ever appear via an
        atomic :func:`os.replace`, so a reader sees either no file or a
        complete one — never a torn entry — and corrupt/foreign payloads
        degrade to a miss rather than an exception.

        A hit patches ``net_name`` to the requesting net's name (the key
        is structural, so two identically-structured nets with different
        names share the entry).
        """
        path = self._path(self.key(job))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != FORMAT_VERSION:
                self._count(hit=False)
                return None
            result = result_from_dict(payload["result"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._count(hit=False)
            return None
        result.net_name = job.net.name
        result.extras.setdefault("cache", "hit")
        self._count(hit=True)
        return result

    def put(self, job: VerificationJob, result: AnalysisResult) -> None:
        """Store a completed result (atomically, via write-then-rename).

        Safe under concurrent writers: the temp name embeds pid, thread
        id and a process-wide sequence number, so simultaneous stores of
        the same key never collide, and the last rename simply wins with
        an equivalent entry.
        """
        key = self.key(job)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": FORMAT_VERSION,
            "key": key,
            "job": job.label,
            "result": result_to_dict(result),
        }
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident():x}"
            f".{next(self._tmp_seq)}"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, default=str)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
