"""Parallel portfolio verification engine.

The execution layer between the analyzers and the experiment harness:

* :mod:`repro.engine.jobs` — :class:`VerificationJob` / :class:`JobResult`
  specs and budgeted in-process execution (:func:`execute_job`);
* :mod:`repro.engine.pool` — a ``multiprocessing`` worker pool running
  each analyzer in its own process with hard wall-clock preemption;
* :mod:`repro.engine.portfolio` — race several analyzers on one net and
  keep the first conclusive verdict (SMPT-style portfolio solving);
* :mod:`repro.engine.cache` — an on-disk result cache keyed by canonical
  structural hashes, making repeated experiment runs incremental;
* :mod:`repro.engine.events` — JSONL lifecycle events (queued / started /
  finished / killed / cache_hit) for observability.
"""

from repro.engine.cache import ResultCache, default_cache_root
from repro.engine.events import (
    EventSink,
    JobEvent,
    JsonlEventSink,
    MemoryEventSink,
    NullEventSink,
    read_events,
)
from repro.engine.jobs import (
    ANALYZERS,
    Budget,
    JobResult,
    VerificationJob,
    execute_job,
    is_conclusive,
)
from repro.engine.pool import WorkerPool, run_jobs
from repro.engine.portfolio import DEFAULT_PORTFOLIO, RaceOutcome, run_race

__all__ = [
    "ANALYZERS",
    "Budget",
    "DEFAULT_PORTFOLIO",
    "EventSink",
    "JobEvent",
    "JobResult",
    "JsonlEventSink",
    "MemoryEventSink",
    "NullEventSink",
    "RaceOutcome",
    "ResultCache",
    "VerificationJob",
    "WorkerPool",
    "default_cache_root",
    "execute_job",
    "is_conclusive",
    "read_events",
    "run_jobs",
    "run_race",
]
