"""Portfolio verification: race several analyzers, keep the first answer.

The paper's Table 1 shows that no single analyzer dominates — the BDD
engine wins on RW, GPO wins everywhere its reductions apply, explicit
search wins on tiny instances.  Like SMPT's portfolio of reachability
methods, :func:`run_race` starts several analyzers on the same net in
isolated worker processes, returns as soon as one produces a *conclusive*
verdict (a deadlock found, or an exhaustive deadlock-free search) and
terminates the losers.

With ``jobs=1`` the race degenerates to a **deterministic sequential
fallback**: methods run one at a time in the order given, stopping at the
first conclusive result — useful for reproducible CI runs and machines
without spare cores.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.cache import ResultCache
from repro.engine.events import EventSink, NullEventSink
from repro.engine.jobs import (
    Budget,
    JobResult,
    VerificationJob,
    instrumentation_of,
    is_conclusive,
)
from repro.engine.pool import WorkerHandle, WorkerPool, _mp_context
from repro.net.petrinet import PetriNet
from repro.obs import names
from repro.obs.context import current_context, new_trace_context, use_context
from repro.obs.tracer import current_tracer
from repro.props.compat import filter_methods
from repro.props.eval import as_property

__all__ = ["DEFAULT_PORTFOLIO", "RaceOutcome", "run_race"]

#: Default portfolio, cheapest-reduction-first.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("gpo", "symbolic", "stubborn", "full")


@dataclass
class RaceOutcome:
    """Result of racing a portfolio of analyzers on one net."""

    net_name: str
    methods: tuple[str, ...]
    winner: JobResult | None
    results: list[JobResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    query: str = "deadlock"
    #: Methods removed before the race because their reduction does not
    #: preserve the queried property, with the declared reason.
    dropped: tuple[tuple[str, str], ...] = ()

    @property
    def conclusive(self) -> bool:
        return self.winner is not None

    def describe(self) -> str:
        """Multi-line human-readable summary (CLI output)."""
        lines = []
        for outcome in self.results:
            marker = (
                "*"
                if self.winner is not None
                and outcome.job.method == self.winner.job.method
                else " "
            )
            lines.append(
                f" {marker} {outcome.job.method:<9} [{outcome.status}] "
                f"{outcome.result.verdict}  states={outcome.result.states}  "
                f"time={outcome.wall_seconds:.3f}s"
            )
        for method, reason in self.dropped:
            lines.append(f"   {method:<9} [dropped] {reason}")
        verdict = (
            self.winner.result.verdict if self.winner else "INCONCLUSIVE"
        )
        query_note = "" if self.query == "deadlock" else f" [{self.query}]"
        header = (
            f"race on {self.net_name}{query_note}: {verdict} "
            f"(wall={self.wall_seconds:.3f}s, methods={','.join(self.methods)})"
        )
        return "\n".join([header, *lines])


def run_race(
    net: PetriNet,
    *,
    methods: Sequence[str] = DEFAULT_PORTFOLIO,
    budget: Budget | None = None,
    jobs: int = 2,
    cache: ResultCache | None = None,
    events: EventSink | None = None,
    query: str = "deadlock",
    reduce: str = "off",
    shards: int | None = None,
) -> RaceOutcome:
    """Race ``methods`` on ``net``; first conclusive verdict wins.

    ``jobs`` bounds how many analyzers run concurrently.  ``jobs=1``
    selects the deterministic sequential fallback.  Methods that never
    started because the race was already decided are reported with
    ``status="skipped"`` entries omitted (only started/cached jobs appear
    in ``results``).

    ``query`` is a :mod:`repro.props` property.  Methods whose reduction
    does not preserve the queried fragments (per
    :func:`repro.props.compat.filter_methods`) are dropped up front and
    reported in ``RaceOutcome.dropped`` — e.g. stubborn never races a
    ``reachable`` query.  Screen-only methods (GPO on reachability) stay
    in: their hits are conclusive wins, their clean screens simply never
    win the race.

    ``reduce`` (``"off"`` | ``"auto"`` | ``"aggressive"``) runs the
    structural reduction pre-pass once, up front, so every raced method
    explores the same reduced net; each job's result carries the trace
    and maps its witness back to the original (see
    :mod:`repro.reduce`).

    ``shards`` (``gpo race --shards N``) enters the sharded parallel
    explorer (:mod:`repro.search.parallel`) in the race as an extra
    ``"parallel"`` entry — it answers the deadlock question only, so
    the compat filter drops it from property races with a reason like
    any other method.  The shard count rides the job's budget extras,
    keeping cache keys distinct per shard count.
    """
    if budget is None:
        budget = Budget()
    prop = as_property(query)
    canonical = prop.text()
    method_list = list(methods)
    if shards is not None and shards > 1 and "parallel" not in method_list:
        method_list.append("parallel")
    kept, dropped = filter_methods(method_list, prop)
    sink = events if events is not None else NullEventSink()
    parallel_budget = budget
    if shards is not None and shards > 1:
        parallel_budget = Budget(
            max_states=budget.max_states,
            max_seconds=budget.max_seconds,
            extra={**budget.extra, "shards": shards},
        )
    job_specs = [
        VerificationJob(
            net=net,
            method=m,
            budget=parallel_budget if m == "parallel" else budget,
            query=canonical,
            reduce=reduce,
        )
        for m in kept
    ]
    if reduce != "off" and job_specs:
        # Warm the memoized fixpoint in-process: the parallel path pickles
        # jobs to workers (each would redo the reduction), but cache-key
        # computation and the sequential path reuse this one run.
        job_specs[0].reduction()
    started_at = time.perf_counter()
    tracer = current_tracer()
    # A race is one logical request: mint a trace context when the caller
    # (the serve daemon, a profiled run) did not already install one, so
    # the race's spans and lifecycle events share one trace_id.
    ctx = current_context()
    if ctx is None and tracer.enabled:
        ctx = new_trace_context()
    with use_context(ctx):
        with tracer.span(
            names.SPAN_RACE, net=net.name, methods=",".join(kept), jobs=jobs
        ) as race_span:
            if jobs <= 1:
                outcome = _race_sequential(job_specs, cache, sink)
            else:
                outcome = _race_parallel(job_specs, jobs, cache, sink)
            winner, results = outcome
            race_span.set(
                winner=winner.job.method if winner is not None else None,
                conclusive=winner is not None,
            )
    return RaceOutcome(
        net_name=net.name,
        methods=kept,
        winner=winner,
        results=results,
        wall_seconds=time.perf_counter() - started_at,
        query=canonical,
        dropped=dropped,
    )


def _race_sequential(
    job_specs: list[VerificationJob],
    cache: ResultCache | None,
    events: EventSink,
) -> tuple[JobResult | None, list[JobResult]]:
    """Run methods one at a time, stop at the first conclusive verdict."""
    pool = WorkerPool(1, cache=cache, events=events)
    results: list[JobResult] = []
    for job in job_specs:
        outcome = pool.run_one(job)
        results.append(outcome)
        if outcome.ran and is_conclusive(outcome.result):
            return outcome, results
    return None, results


def _race_parallel(
    job_specs: list[VerificationJob],
    jobs: int,
    cache: ResultCache | None,
    events: EventSink,
) -> tuple[JobResult | None, list[JobResult]]:
    """Start up to ``jobs`` workers; kill survivors once one concludes."""
    context = _mp_context()
    pending = list(job_specs)
    running: list[WorkerHandle] = []
    results: list[JobResult] = []
    winner: JobResult | None = None
    for job in job_specs:
        events.record("queued", job)
    try:
        while pending or running:
            while winner is None and pending and len(running) < jobs:
                job = pending.pop(0)
                cached = cache.get(job) if cache is not None else None
                if cached is not None:
                    events.record("cache_hit", job)
                    outcome = JobResult(
                        job=job, result=cached, status="cached"
                    )
                    results.append(outcome)
                    if is_conclusive(cached):
                        winner = outcome
                    continue
                handle = WorkerHandle(job, context)
                events.record("started", job, pid=handle.process.pid)
                running.append(handle)
            if winner is not None:
                pending.clear()
                for handle in running:
                    cancelled = handle.kill(status="cancelled")
                    events.record(
                        "cancelled",
                        cancelled.job,
                        wall_seconds=cancelled.wall_seconds,
                        pid=cancelled.worker_pid,
                    )
                    results.append(cancelled)
                running.clear()
                break
            progressed = False
            for handle in list(running):
                outcome = handle.poll()
                if outcome is None:
                    continue
                progressed = True
                running.remove(handle)
                results.append(outcome)
                _log_terminal(events, outcome)
                if (
                    outcome.status == "ok"
                    and cache is not None
                ):
                    cache.put(outcome.job, outcome.result)
                if (
                    winner is None
                    and outcome.ran
                    and is_conclusive(outcome.result)
                ):
                    winner = outcome
            if not progressed and running:
                time.sleep(0.02)
    finally:
        for handle in running:
            handle.kill(status="cancelled")
    return winner, results


def _log_terminal(events: EventSink, outcome: JobResult) -> None:
    kind = {
        "ok": "finished",
        "error": "crashed",
        "killed": "killed",
        "cancelled": "cancelled",
    }.get(outcome.status, "finished")
    events.record(
        kind,
        outcome.job,
        wall_seconds=outcome.wall_seconds,
        peak_rss_kb=outcome.peak_rss_kb,
        pid=outcome.worker_pid,
        detail=outcome.result.verdict
        if outcome.status == "ok"
        else outcome.error,
        stats=instrumentation_of(outcome.result) or None
        if outcome.status == "ok"
        else None,
    )
