"""Process-isolated execution of verification jobs with hard preemption.

Every job runs :func:`repro.engine.jobs.execute_job` in its **own**
``multiprocessing`` process.  The cooperative deadlines threaded through
the exploration loops normally fire first; the pool is the backstop for
analyzers stuck in a non-cooperating region (or a pathological input): a
worker still alive ``kill_grace`` seconds past its ``max_seconds`` budget
is terminated and reported as a non-exhaustive result with
``extras["aborted"]`` — never an exception, never a hung harness.

Worker crashes (``UnsafeNetError``, MemoryError, even ``os._exit``) are
likewise absorbed into ``status="error"`` results, so one bad instance
cannot take down a whole Table 1 run.

The pool also integrates the result cache (:mod:`repro.engine.cache`) and
emits lifecycle events (:mod:`repro.engine.events`) for every job.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing.connection import Connection
from typing import Sequence

from repro.analysis.stats import AnalysisResult
from repro.engine.cache import ResultCache
from repro.engine.events import EventSink, NullEventSink
from repro.engine.jobs import (
    JobResult,
    VerificationJob,
    execute_job,
    instrumentation_of,
)
from repro.obs import names
from repro.obs.flight import FLIGHT
from repro.obs.memory import peak_rss_kb
from repro.obs.tracer import current_tracer

__all__ = ["WorkerPool", "run_jobs"]

#: Seconds past the cooperative deadline before the hard kill (the
#: acceptance bar is "killed within ~1s of its deadline").
DEFAULT_KILL_GRACE = 0.5

#: Scheduler poll interval in seconds.
DEFAULT_POLL_INTERVAL = 0.02

#: Most recent flight-recorder records attached to an aborted result.
_FLIGHT_DUMP_LIMIT = 64


def _flight_dump(worker_records: list[dict] | None = None) -> list[dict]:
    """Recent diagnostics for a dead worker's ``extras["flight"]``.

    The worker's own ring (when it died politely enough to ship it)
    topped up with the parent's recent records, newest last, capped so a
    crash report stays a report and not a log.
    """
    records = list(worker_records or [])
    if len(records) < _FLIGHT_DUMP_LIMIT:
        parent = FLIGHT.snapshot(_FLIGHT_DUMP_LIMIT - len(records))
        records = parent + records
    return records[-_FLIGHT_DUMP_LIMIT:]


def _worker_main(conn: Connection, job: VerificationJob) -> None:
    """Worker-process entry: run the job, ship the result (or the error).

    When tracing is on, the forked worker inherits the ambient tracer;
    its spans are drained and shipped alongside the result, so the
    parent can merge them into the one trace (span ids embed the pid,
    so there are no collisions).
    """
    tracer = current_tracer()
    tracer.child_reset()
    try:
        result = execute_job(job)
        conn.send(("ok", result, peak_rss_kb(), tracer.drain()))
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silent
        try:
            # Ship the worker's flight-recorder ring alongside the error:
            # the moments *before* the failure are the diagnosis.
            conn.send(
                ("error", type(exc).__name__, str(exc), FLIGHT.snapshot())
            )
        except Exception:  # pragma: no cover - result not picklable
            pass
    finally:
        conn.close()


def _mp_context():
    """Prefer ``fork`` (cheap, inherits registered analyzers) when available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _aborted_result(
    job: VerificationJob, wall: float, note: str, **extras: object
) -> AnalysisResult:
    """Synthesized non-exhaustive result for killed/crashed workers."""
    return AnalysisResult(
        analyzer=job.method,
        net_name=job.net.name,
        states=0,
        edges=0,
        deadlock=False,
        time_seconds=wall,
        exhaustive=False,
        extras={"aborted": note, **extras},
    )


class WorkerHandle:
    """One live worker process and the bookkeeping to preempt it."""

    def __init__(self, job: VerificationJob, context) -> None:
        self.job = job
        self._tracer = current_tracer()
        # Free (unstacked) span covering the job's whole process lifetime;
        # opened before the fork so the worker's own spans are recorded
        # with ids that cannot collide with it, closed by whichever of the
        # four terminal paths reaps the worker.
        self.span = self._tracer.start(
            names.SPAN_JOB,
            job=job.label,
            method=job.method,
            net=job.net.name,
        )
        recv, send = context.Pipe(duplex=False)
        self._recv = recv
        self.process = context.Process(
            target=_worker_main, args=(send, job), daemon=True
        )
        # Fork with the job span attached as the innermost open span, so
        # the worker's analyze span parents to it in the merged trace.
        with self._tracer.attach(self.span):
            self.process.start()
        # The parent's copy of the send end must be closed so EOF is
        # observable if the worker dies without sending.
        send.close()
        self.started = time.perf_counter()

    @property
    def wall(self) -> float:
        return time.perf_counter() - self.started

    @property
    def deadline_exceeded(self) -> bool:
        """Past the hard-preemption point (budget + grace)?"""
        max_seconds = self.job.budget.max_seconds
        if max_seconds is None:
            return False
        return self.wall > max_seconds + DEFAULT_KILL_GRACE

    def poll(self) -> JobResult | None:
        """Non-blocking check: a finished/crashed/overdue worker yields a
        :class:`JobResult`, a still-running one yields ``None``."""
        if self._recv.poll(0):
            try:
                message = self._recv.recv()
            except EOFError:
                return self._reap_crash()
            return self._finish(message)
        if not self.process.is_alive():
            return self._reap_crash()
        if self.deadline_exceeded:
            return self.kill(status="killed")
        return None

    def _finish(self, message: tuple) -> JobResult:
        wall = self.wall
        pid = self.process.pid
        self.process.join()
        self._recv.close()
        if message[0] == "ok":
            _, result, rss, *rest = message
            if rest:
                # Spans the worker drained before exiting — merge them
                # into the parent's trace.
                self._tracer.adopt(rest[0])
            self.span.end(status="ok", pid=pid, peak_rss_kb=rss)
            return JobResult(
                job=self.job,
                result=result,
                status="ok",
                wall_seconds=wall,
                peak_rss_kb=rss,
                worker_pid=pid,
            )
        _, error_type, error_msg, *rest = message
        error = f"{error_type}: {error_msg}"
        self.span.end(status="error", pid=pid, error=error)
        FLIGHT.note(
            "worker_error", job=self.job.label, pid=pid, error=error
        )
        return JobResult(
            job=self.job,
            result=_aborted_result(
                self.job,
                wall,
                "worker error",
                error=error,
                flight=_flight_dump(rest[0] if rest else None),
            ),
            status="error",
            wall_seconds=wall,
            worker_pid=pid,
            error=error,
        )

    def _reap_crash(self) -> JobResult:
        wall = self.wall
        pid = self.process.pid
        self.process.join()
        self._recv.close()
        error = f"worker died (exit code {self.process.exitcode})"
        self.span.end(status="crashed", pid=pid, error=error)
        FLIGHT.note(
            "worker_crash", job=self.job.label, pid=pid, error=error
        )
        return JobResult(
            job=self.job,
            result=_aborted_result(
                self.job, wall, "worker crash", error=error,
                flight=_flight_dump(),
            ),
            status="error",
            wall_seconds=wall,
            worker_pid=pid,
            error=error,
        )

    def kill(self, *, status: str = "killed") -> JobResult:
        """Terminate the worker now (SIGTERM, then SIGKILL) and report it."""
        wall = self.wall
        pid = self.process.pid
        self.process.terminate()
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - SIGTERM ignored
            self.process.kill()
            self.process.join()
        self._recv.close()
        max_seconds = self.job.budget.max_seconds
        note = (
            f"> {max_seconds:.0f}s (hard preemption)"
            if status == "killed" and max_seconds is not None
            else "race lost"
            if status == "cancelled"
            else "terminated"
        )
        self.span.end(status=status, pid=pid, detail=note)
        FLIGHT.note(
            "worker_" + status, job=self.job.label, pid=pid, detail=note
        )
        return JobResult(
            job=self.job,
            result=_aborted_result(
                self.job, wall, note,
                flight=_flight_dump(),
                **{status: True},
            ),
            status=status,
            wall_seconds=wall,
            worker_pid=pid,
        )


class WorkerPool:
    """Run verification jobs in isolated processes, at most ``max_workers``
    at a time, with caching and lifecycle events.

    ``max_workers=1`` still isolates each job in a process (so hard
    preemption works) but runs them strictly in submission order.
    """

    def __init__(
        self,
        max_workers: int = 1,
        *,
        cache: ResultCache | None = None,
        events: EventSink | None = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> None:
        self.max_workers = max(1, max_workers)
        self.cache = cache
        self.events = events if events is not None else NullEventSink()
        self.poll_interval = poll_interval
        self._context = _mp_context()

    # ------------------------------------------------------------------
    # Re-entrant single-job API: long-lived callers (the ``repro.serve``
    # daemon) interleave submissions, polls and cancellations of many
    # jobs against one warm pool instead of batching through :meth:`run`.
    # Every method takes an optional per-call ``events`` sink so each
    # job's lifecycle can be routed to its own buffer (the pool-wide
    # sink remains the default).
    # ------------------------------------------------------------------
    def try_cache(
        self, job: VerificationJob, *, events: EventSink | None = None
    ) -> JobResult | None:
        """Serve ``job`` from the result cache, or ``None`` on a miss."""
        if self.cache is None:
            return None
        result = self.cache.get(job)
        if result is None:
            return None
        (events or self.events).record(
            "cache_hit", job, detail=self.cache.key(job)[:16]
        )
        return JobResult(
            job=job, result=result, status="cached", wall_seconds=0.0
        )

    def submit(
        self, job: VerificationJob, *, events: EventSink | None = None
    ) -> WorkerHandle:
        """Start ``job`` in its own worker process without blocking.

        The caller owns the returned handle: poll it until it yields a
        :class:`JobResult`, then pass that through :meth:`finalize`.
        Capacity is the caller's concern — the pool does not queue here.
        """
        handle = WorkerHandle(job, self._context)
        (events or self.events).record("started", job, pid=handle.process.pid)
        return handle

    def cancel(
        self, handle: WorkerHandle, *, events: EventSink | None = None
    ) -> JobResult:
        """Hard-preempt a running handle and record the cancellation."""
        return self.finalize(handle.kill(status="cancelled"), events=events)

    def finalize(
        self, outcome: JobResult, *, events: EventSink | None = None
    ) -> JobResult:
        """Store a completed result in the cache and emit its terminal event."""
        return self._finalize(outcome, events=events)

    # ------------------------------------------------------------------
    def run_one(self, job: VerificationJob) -> JobResult:
        """Run a single job (convenience wrapper around :meth:`run`)."""
        return self.run([job])[0]

    def run(self, jobs: Sequence[VerificationJob]) -> list[JobResult]:
        """Run all jobs; the result list is parallel to the input order."""
        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[int] = list(range(len(jobs)))
        running: dict[int, WorkerHandle] = {}
        for job in jobs:
            self.events.record("queued", job)
        try:
            while pending or running:
                while pending and len(running) < self.max_workers:
                    index = pending.pop(0)
                    job = jobs[index]
                    cached = self.try_cache(job)
                    if cached is not None:
                        results[index] = cached
                        continue
                    running[index] = self.submit(job)
                progressed = False
                for index, handle in list(running.items()):
                    outcome = handle.poll()
                    if outcome is None:
                        continue
                    del running[index]
                    results[index] = self._finalize(outcome)
                    progressed = True
                if not progressed and running:
                    time.sleep(self.poll_interval)
        finally:
            # Only reached with live workers when an exception is unwinding
            # (e.g. KeyboardInterrupt): never leave orphan processes behind.
            for handle in running.values():
                handle.kill(status="cancelled")
        return results  # type: ignore[return-value]  # every slot is filled

    # ------------------------------------------------------------------
    def _finalize(
        self, outcome: JobResult, *, events: EventSink | None = None
    ) -> JobResult:
        job = outcome.job
        sink = events or self.events
        if outcome.status == "ok":
            if self.cache is not None:
                self.cache.put(job, outcome.result)
            sink.record(
                "finished",
                job,
                wall_seconds=outcome.wall_seconds,
                peak_rss_kb=outcome.peak_rss_kb,
                pid=outcome.worker_pid,
                detail=outcome.result.verdict,
                stats=instrumentation_of(outcome.result) or None,
            )
        elif outcome.status == "error":
            sink.record(
                "crashed",
                job,
                wall_seconds=outcome.wall_seconds,
                pid=outcome.worker_pid,
                detail=outcome.error,
            )
        else:  # killed / cancelled
            sink.record(
                outcome.status,
                job,
                wall_seconds=outcome.wall_seconds,
                pid=outcome.worker_pid,
                detail=outcome.result.extras.get("aborted"),
            )
        return outcome


def run_jobs(
    jobs: Sequence[VerificationJob],
    *,
    max_workers: int = 1,
    cache: ResultCache | None = None,
    events: EventSink | None = None,
) -> list[JobResult]:
    """One-shot convenience: run jobs through a fresh :class:`WorkerPool`."""
    pool = WorkerPool(max_workers, cache=cache, events=events)
    return pool.run(jobs)
