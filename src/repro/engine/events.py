"""Structured per-job lifecycle events, emitted as JSON lines.

Every job that flows through the execution engine produces a small stream
of :class:`JobEvent` records — ``queued``, ``cache_hit``, ``started``,
``finished``, ``killed``, ``cancelled``, ``crashed`` — so long experiment
runs can be observed, replayed and mined without parsing human-readable
tables.  Sinks are deliberately tiny: a JSONL file writer for real runs,
an in-memory list for tests, and a null sink as the default.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, TextIO

from repro.obs.context import current_context
from repro.obs.exporters import JsonlWriter
from repro.obs.flight import FLIGHT

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "JobEvent",
    "EventSink",
    "JsonlEventSink",
    "MemoryEventSink",
    "NullEventSink",
]

#: Version stamped into every serialized event (the ``v`` key).  Bump on
#: breaking schema changes; readers ignore keys they do not know, so
#: adding fields does not require a bump.  History: **v2** stamps the
#: ``trace_id`` of the ambient :class:`repro.obs.context.TraceContext`
#: into every event, so JSONL event streams join the span timeline of
#: the same request on one key (bumped because the key is load-bearing
#: for correlation, not because old readers break).
EVENT_SCHEMA_VERSION = 2

#: Recognized event kinds, in the order a healthy job emits them.
EVENT_KINDS = (
    "queued",
    "cache_hit",
    "started",
    "finished",
    "killed",
    "cancelled",
    "crashed",
)


@dataclass
class JobEvent:
    """One lifecycle event of one verification job.

    ``wall_seconds`` and ``peak_rss_kb`` are only present on terminal
    events (finished/killed/cancelled/crashed); ``detail`` carries a short
    free-form note (abort reason, error message, cache key); ``stats``
    carries the search-core instrumentation counters of a finished run
    (see :data:`repro.obs.names.INSTRUMENTATION_FIELDS`); ``trace_id``
    (schema v2) is the request correlation key shared with the span
    timeline, present whenever a trace context was active.
    """

    kind: str
    job: str
    method: str
    net: str
    timestamp: float
    wall_seconds: float | None = None
    peak_rss_kb: int | None = None
    pid: int | None = None
    detail: str | None = None
    stats: dict | None = None
    trace_id: str | None = None

    def payload(self) -> dict[str, Any]:
        """JSON-ready dict: ``None`` fields omitted, schema version added."""
        out: dict[str, Any] = {
            k: v for k, v in asdict(self).items() if v is not None
        }
        out["v"] = EVENT_SCHEMA_VERSION
        return out

    def to_json(self) -> str:
        """Render as one compact JSON line (no trailing newline)."""
        return json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )


class EventSink:
    """Base sink; subclasses override :meth:`emit`."""

    def emit(self, event: JobEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def record(
        self,
        kind: str,
        job: "object",
        *,
        wall_seconds: float | None = None,
        peak_rss_kb: int | None = None,
        pid: int | None = None,
        detail: str | None = None,
        stats: dict | None = None,
        trace_id: str | None = None,
    ) -> None:
        """Convenience: build a :class:`JobEvent` from a VerificationJob.

        ``trace_id`` defaults to the ambient trace context's, so every
        event recorded while a request is in scope joins its trace; the
        built event is also fed to the always-on flight recorder
        regardless of which sink it lands in (even the null sink), which
        is what makes crash dumps useful with observability off.
        """
        if trace_id is None:
            ctx = current_context()
            trace_id = ctx.trace_id if ctx is not None else None
        event = JobEvent(
            kind=kind,
            job=job.label,  # type: ignore[attr-defined]
            method=job.method,  # type: ignore[attr-defined]
            net=job.net.name,  # type: ignore[attr-defined]
            timestamp=time.time(),
            wall_seconds=wall_seconds,
            peak_rss_kb=peak_rss_kb,
            pid=pid,
            detail=detail,
            stats=stats,
            trace_id=trace_id,
        )
        FLIGHT.record(event.payload())
        self.emit(event)

    def close(self) -> None:
        """Release any underlying resource (default: nothing)."""


class NullEventSink(EventSink):
    """Discards every event (the default when observability is off)."""

    def emit(self, event: JobEvent) -> None:
        pass


class MemoryEventSink(EventSink):
    """Collects events in a list — the test-suite's sink."""

    def __init__(self) -> None:
        self.events: list[JobEvent] = []

    def emit(self, event: JobEvent) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        """The event kinds seen, in emission order."""
        return [e.kind for e in self.events]


class JsonlEventSink(EventSink):
    """Appends one JSON line per event to a file (or an open stream).

    Lines are flushed immediately so a crash of the harness itself leaves
    a usable log behind.
    """

    def __init__(self, target: str | Path | TextIO) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: TextIO = open(path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        # One serialization code path for line-oriented JSON: the same
        # writer the tracer's JSONL trace exporter uses.
        self._writer = JsonlWriter(self._stream)

    def emit(self, event: JobEvent) -> None:
        self._writer.write(event.payload())

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_EVENT_FIELDS = frozenset(f.name for f in fields(JobEvent))


def read_events(path: str | Path) -> list[JobEvent]:
    """Parse a JSONL event log back into :class:`JobEvent` records.

    Unknown keys (the ``v`` schema-version stamp, fields added by newer
    writers) are dropped, so old logs and new readers interoperate in
    both directions.
    """
    events: list[JobEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = {
                k: v
                for k, v in json.loads(line).items()
                if k in _EVENT_FIELDS
            }
            events.append(JobEvent(**data))
    return events


__all__.append("read_events")
__all__.append("EVENT_KINDS")
