"""Verification job specifications and in-process execution.

A :class:`VerificationJob` bundles everything needed to run one analyzer
on one net — the net itself, the method name, a resource :class:`Budget`
and the query being decided — in a picklable form, so jobs can be shipped
to worker processes (:mod:`repro.engine.pool`), raced against each other
(:mod:`repro.engine.portfolio`) and used as cache keys
(:mod:`repro.engine.cache`).

:func:`execute_job` is the single place that maps a budget onto each
analyzer's keyword arguments and converts budget overruns into
non-exhaustive :class:`~repro.analysis.stats.AnalysisResult` values
(mirroring the paper's "> 24 hours" entries).  The historical
``repro.harness.runner.run_analyzer`` API is a thin wrapper around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis import analyze as full_analyze
from repro.analysis.stats import (
    AnalysisResult,
    ExplorationLimitReached,
    TimeLimitReached,
    stopwatch,
)
from repro.gpo import analyze as gpo_analyze
from repro.net.petrinet import PetriNet
from repro.obs.names import INSTRUMENTATION_FIELDS
from repro.props.ast import Deadlock, Property, UnsupportedPropertyError, places_of
from repro.props.compat import reduction_level, unsupported_reason
from repro.props.eval import HOLDS_KEY, PROPERTY_KEY, as_property
from repro.props.normalize import property_hash
from repro.props.parse import parse_property
from repro.reduce.engine import MODES as REDUCE_MODES
from repro.reduce.engine import Reduction, reduce_net
from repro.reduce.trace import BackMapError, back_map_witness
from repro.search.parallel import analyze_parallel
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze
from repro.unfolding import analyze as unfolding_analyze

__all__ = [
    "ANALYZERS",
    "Budget",
    "JobResult",
    "VerificationJob",
    "execute_job",
    "instrumentation_of",
    "is_conclusive",
    "query_token",
]

#: Registered analyzers: name -> callable(net, **kwargs) -> AnalysisResult.
ANALYZERS: dict[str, Callable[..., AnalysisResult]] = {
    "full": full_analyze,
    "stubborn": stubborn_analyze,
    "symbolic": symbolic_analyze,
    "gpo": gpo_analyze,
    "unfolding": unfolding_analyze,
    # Sharded level-synchronized BFS; shard count / inner semantics ride
    # ``Budget.extra`` (e.g. ``{"shards": 4, "inner": "stubborn"}``).
    "parallel": analyze_parallel,
}


@dataclass(frozen=True)
class Budget:
    """Resource budget applied to one analyzer run.

    ``max_states`` limits explicit explorers (full/stubborn/gpo, and the
    unfolding's event count); ``max_seconds`` limits wall time — enforced
    cooperatively inside every exploration loop, and by hard process
    preemption when the run goes through :class:`repro.engine.pool.WorkerPool`.
    ``None`` disables the corresponding limit.
    """

    max_states: int | None = 200_000
    max_seconds: float | None = 120.0
    extra: dict[str, Any] = field(default_factory=dict)

    def cache_token(self) -> str:
        """Stable string form of the budget for cache keys."""
        extra = ",".join(f"{k}={self.extra[k]!r}" for k in sorted(self.extra))
        return f"states={self.max_states};seconds={self.max_seconds};{extra}"


def query_token(query: str) -> str:
    """Stable cache token for a query string.

    The canonical property hash, so semantically equal queries
    (``reachable(a&b)`` vs ``reachable(b & a)``) share cache entries.
    Unparseable text falls back to the raw string — the job will fail at
    execution, but the key stays total.
    """
    try:
        return property_hash(parse_property(query))
    except ValueError:
        return f"raw:{query}"


@dataclass(frozen=True)
class VerificationJob:
    """One unit of verification work: run ``method`` on ``net``.

    Jobs are immutable and picklable; ``query`` is the property being
    decided, in the :mod:`repro.props` query language (``"deadlock"``,
    the paper's Table 1 question, is the default).
    """

    net: PetriNet
    method: str = "gpo"
    budget: Budget = field(default_factory=Budget)
    query: str = "deadlock"
    reduce: str = "off"

    @property
    def label(self) -> str:
        """Short human-readable identifier used in logs and events."""
        return f"{self.net.name}/{self.method}"

    def reduction(self) -> Reduction | None:
        """The structural reduction this job runs under, or ``None``.

        Memoized on the net instance, so the cache-key computation and
        the execution (and every method racing on the same net) share
        one fixpoint run.  ``None`` when reduction is off or the query
        does not parse — the job then runs (and fails) on the original
        net, keeping the key total.
        """
        if self.reduce == "off":
            return None
        try:
            prop = as_property(self.query)
        except ValueError:
            return None
        return reduce_net(
            self.net,
            level=reduction_level(prop),
            mode=self.reduce,
            protect=places_of(prop),
        )

    def cache_key_material(self) -> str:
        """The text whose hash keys the on-disk result cache.

        Built on the net's canonical structural hash, so declaration order
        does not fragment the cache, and on the *canonical property hash*
        of the query, so textual variants of one property share entries
        while different properties on the same net never collide.  The
        structural safety certificate is deliberately *not* part of the
        key: it is a deterministic function of exactly the structure and
        initial marking the canonical hash already covers, so equal
        hashes imply equal certificates and adding it could only fragment
        the cache, never disambiguate it.

        Reduced jobs use ``v3`` material stamping the reduce mode, the
        reduced net's canonical hash and the trace hash: results that
        rode different reductions never share an entry, and unreduced
        keys stay byte-identical to v2 (no cache invalidation for the
        default path).
        """
        lines = [
            "v2",
            self.net.canonical_hash(),
            f"method={self.method}",
            f"property={query_token(self.query)}",
            self.budget.cache_token(),
        ]
        if self.reduce != "off":
            lines[0] = "v3"
            lines.append(f"reduce={self.reduce}")
            reduction = self.reduction()
            if reduction is None:
                lines.append("reduced=unparsed")
            else:
                lines.append(f"reduced={reduction.net.canonical_hash()}")
                lines.append(f"trace={reduction.trace.trace_hash()}")
        return "\n".join(lines)


@dataclass
class JobResult:
    """Outcome of one job, as observed by the execution engine.

    ``status`` is one of:

    * ``"ok"`` — the analyzer ran to completion (possibly reporting a
      non-exhaustive, budget-bounded result);
    * ``"cached"`` — served from the result cache without recomputation;
    * ``"killed"`` — hard-preempted by the worker pool at its deadline;
    * ``"cancelled"`` — terminated because a portfolio race was already
      decided by another analyzer;
    * ``"error"`` — the worker raised (e.g. ``UnsafeNetError``) or died.
    """

    job: VerificationJob
    result: AnalysisResult
    status: str = "ok"
    wall_seconds: float = 0.0
    peak_rss_kb: int | None = None
    worker_pid: int | None = None
    error: str | None = None

    @property
    def ran(self) -> bool:
        """True when the analyzer actually produced its own result."""
        return self.status in ("ok", "cached")


def instrumentation_of(result: AnalysisResult) -> dict[str, Any]:
    """The search-core instrumentation counters present in ``extras``.

    Every driver-based analyzer records the uniform counters
    (:data:`repro.obs.names.INSTRUMENTATION_FIELDS`); analyzers without
    an explicit search (symbolic) contribute nothing.  Used to attach a
    ``stats`` payload to the ``finished`` JSONL event of each job.
    """
    return {
        key: result.extras[key]
        for key in INSTRUMENTATION_FIELDS
        if key in result.extras
    }


def is_conclusive(result: AnalysisResult | None) -> bool:
    """Does this result decide the question it was asked?

    Property runs carry a three-valued verdict in
    ``extras["property_holds"]`` — conclusive iff it is not ``None``.
    Legacy deadlock runs: a deadlock found in a bounded search is still a
    definite "yes"; a deadlock-free verdict is only definite when the
    search was exhaustive.
    """
    if result is None:
        return False
    if PROPERTY_KEY in result.extras:
        return result.extras.get(HOLDS_KEY) is not None
    return result.deadlock or result.exhaustive


def execute_job(job: VerificationJob) -> AnalysisResult:
    """Run one job in-process under its budget; never raises on overruns.

    On overrun the returned result has ``exhaustive=False``, ``states``
    equal to the progress actually made when the analyzer gave up (the
    budget number when the analyzer does not report progress) and an
    ``extras["aborted"]`` note.
    """
    try:
        fn = ANALYZERS[job.method]
    except KeyError:
        raise ValueError(
            f"unknown analyzer {job.method!r}; expected one of "
            f"{sorted(ANALYZERS)}"
        ) from None
    if job.reduce not in REDUCE_MODES:
        raise ValueError(
            f"unknown reduce mode {job.reduce!r}; expected one of "
            f"{REDUCE_MODES}"
        )
    # PropertyError is a ValueError, so malformed queries reject the job
    # the same way unknown analyzers do.
    prop: Property | None = as_property(job.query)
    if isinstance(prop, Deadlock):
        # The native question: run the historical analyzer path unchanged
        # (same extras, same Table 1 bytes).
        prop = None
    else:
        reason = unsupported_reason(job.method, prop)
        if reason is not None:
            raise UnsupportedPropertyError(job.method, prop, reason)
    # Structural reduction pre-pass: the analyzer explores the reduced
    # net, and the answer is mapped back below before anyone sees it.
    reduction = job.reduction()
    net = job.net if reduction is None else reduction.net

    budget = job.budget
    kwargs: dict[str, Any] = dict(budget.extra)
    if prop is not None:
        kwargs["prop"] = prop
    if job.method == "symbolic":
        # No explicit state count to bound; wall clock only.
        if budget.max_seconds is not None:
            kwargs.setdefault("max_seconds", budget.max_seconds)
    else:
        if job.method == "unfolding":
            if budget.max_states is not None:
                kwargs.setdefault("max_events", budget.max_states)
        elif budget.max_states is not None:
            kwargs.setdefault("max_states", budget.max_states)
        if budget.max_seconds is not None:
            kwargs.setdefault("max_seconds", budget.max_seconds)

    with stopwatch() as elapsed:
        try:
            result = fn(net, **kwargs)
            if not result.exhaustive:
                # Some analyzers absorb the budget internally (the full
                # explorer returns a bounded graph); normalize the marker.
                result.extras.setdefault(
                    "aborted", f"> {budget.max_states} states"
                )
            return _attach_reduction(job, reduction, result)
        except ExplorationLimitReached as overrun:
            aborted: dict[str, Any] = {"aborted": f"> {overrun.limit} states"}
            states = (
                overrun.states_explored
                if overrun.states_explored is not None
                else overrun.limit
            )
        except TimeLimitReached as overrun:
            aborted = {"aborted": f"> {overrun.seconds:.0f}s"}
            states = overrun.states_explored or 0
    return _attach_reduction(
        job,
        reduction,
        AnalysisResult(
            analyzer=job.method,
            net_name=job.net.name,
            states=states,
            edges=0,
            deadlock=False,
            time_seconds=elapsed[0],
            exhaustive=False,
            extras=aborted,
        ),
    )


def _attach_reduction(
    job: VerificationJob,
    reduction: Reduction | None,
    result: AnalysisResult,
) -> AnalysisResult:
    """Stamp reduction provenance and map the witness back, if any.

    Every reduced result carries ``extras["reduce"]`` (sizes, rule
    counts, the full trace) so the cache, the JSONL event stream and the
    serve wire format all return original-net provenance.  A witness
    found on the reduced net is translated — and replay- or
    dead-verified — on the original; a mapping failure is recorded
    rather than silently shipping a reduced-net witness as original.
    """
    if reduction is None:
        return result
    extras = reduction.stats_extras()
    if result.witness is not None and reduction.reduced:
        try:
            result.witness = back_map_witness(
                job.net, reduction.trace, result.witness
            )
        except BackMapError as exc:
            extras["replay_error"] = str(exc)
    result.extras["reduce"] = extras
    return result
