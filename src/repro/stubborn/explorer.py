"""Reduced reachability exploration with stubborn sets.

This is the paper's "SPIN+PO" column: the state space explored when, in
every marking, only the enabled part of one stubborn set is fired.  All
deadlocks of the full graph are preserved (Valmari [14], Godefroid-Wolper
[9]); the number of stored states is what Table 1 reports.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.graph import ReachabilityGraph
from repro.analysis.reachability import extract_witness
from repro.analysis.stats import (
    AnalysisResult,
    Deadline,
    ExplorationLimitReached,
    stopwatch,
)
from repro.net.petrinet import Marking, PetriNet
from repro.net.structure import StructuralInfo
from repro.stubborn.stubborn import SeedStrategy, stubborn_enabled

__all__ = ["explore_reduced", "analyze"]


def explore_reduced(
    net: PetriNet,
    *,
    strategy: SeedStrategy = "best",
    max_states: int | None = None,
    max_seconds: float | None = None,
    stop_at_first_deadlock: bool = False,
    info: StructuralInfo | None = None,
) -> ReachabilityGraph[Marking]:
    """Build the stubborn-set reduced reachability graph (BFS order)."""
    if info is None:
        info = StructuralInfo(net)
    deadline = Deadline.of(max_seconds)
    graph: ReachabilityGraph[Marking] = ReachabilityGraph(net.initial_marking)
    queue: deque[Marking] = deque([net.initial_marking])
    while queue:
        marking = queue.popleft()
        if deadline is not None:
            deadline.check(graph.num_states)
        to_fire = stubborn_enabled(net, info, marking, strategy=strategy)
        if not to_fire:
            graph.mark_deadlock(marking)
            if stop_at_first_deadlock:
                return graph
            continue
        for t in to_fire:
            successor = net.fire(t, marking)
            is_new = successor not in graph
            graph.add_edge(marking, net.transitions[t], successor)
            if is_new:
                if max_states is not None and graph.num_states > max_states:
                    raise ExplorationLimitReached(
                        max_states, graph.num_states
                    )
                queue.append(successor)
    return graph


def analyze(
    net: PetriNet,
    *,
    strategy: SeedStrategy = "best",
    max_states: int | None = None,
    max_seconds: float | None = None,
    want_witness: bool = True,
) -> AnalysisResult:
    """Run stubborn-set reduced analysis, packaged uniformly.

    The reported deadlock verdict is equivalent to the full analysis; the
    reported ``states`` count is the size of the *reduced* graph.  Budget
    overruns (state or wall-clock) propagate as exceptions; the harness
    runner converts them into non-exhaustive results.
    """
    with stopwatch() as elapsed:
        graph = explore_reduced(
            net, strategy=strategy, max_states=max_states,
            max_seconds=max_seconds,
        )
    witness = None
    if graph.deadlocks and want_witness:
        witness = extract_witness(net, graph)
    return AnalysisResult(
        analyzer="stubborn",
        net_name=net.name,
        states=graph.num_states,
        edges=graph.num_edges,
        deadlock=bool(graph.deadlocks),
        time_seconds=elapsed[0],
        witness=witness,
        extras={"strategy": strategy},
    )
