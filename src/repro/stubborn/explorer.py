"""Reduced reachability exploration with stubborn sets.

This is the paper's "SPIN+PO" column: the state space explored when, in
every marking, only the enabled part of one stubborn set is fired.  All
deadlocks of the full graph are preserved (Valmari [14], Godefroid-Wolper
[9]); the number of stored states is what Table 1 reports.

The exploration itself runs on the generic driver in
:mod:`repro.search.core`.  Two interchangeable spaces supply the reduced
successor rule: :class:`KernelStubbornSpace` (default) carries packed
integer markings from :class:`repro.net.kernel.MarkingKernel` with
incremental enabled-set maintenance, and :class:`StubbornSpace` is the
frozenset reference path (``use_kernel=False``).  Both measure the
reduction ratio (fired / enabled transitions) and produce byte-identical
reduced graphs.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable

from repro.analysis.stats import AnalysisResult, stopwatch
from repro.net.petrinet import Marking, PetriNet
from repro.net.structure import StructuralInfo
from repro.obs import names
from repro.obs.record import record_result
from repro.obs.tracer import current_tracer
from repro.props.ast import Property, UnsupportedPropertyError
from repro.props.compat import unsupported_reason
from repro.props.eval import (
    engine_property,
    needs_decomposition,
    run_property,
)
from repro.search.core import (
    SearchContext,
    SearchOutcome,
    abort_note,
    raise_if_bounded,
)
from repro.search.core import explore as _drive
from repro.search.graph import ReachabilityGraph
from repro.search.observers import TracingObserver
from repro.search.witness import extract_witness
from repro.stubborn.stubborn import (
    SeedStrategy,
    _enabled_part,
    stubborn_enabled,
    stubborn_enabled_mask,
)

__all__ = [
    "KernelStubbornSpace",
    "StubbornSpace",
    "explore_reduced",
    "analyze",
]


class StubbornSpace:
    """Stubborn-set reduced successors as a :class:`SearchSpace`.

    Reference (frozenset) path.  In every marking only the enabled part
    of one stubborn set fires.  ``enabled_total`` / ``fired_total``
    accumulate the full and reduced enabled-set sizes over all expanded
    states, giving the reduction ratio reported in the instrumentation
    extras.
    """

    uses_kernel = False

    def __init__(
        self,
        net: PetriNet,
        *,
        strategy: SeedStrategy = "best",
        info: StructuralInfo | None = None,
    ) -> None:
        self.net = net
        self.kernel = net.kernel()
        self.strategy = strategy
        # Retained for API compatibility; the conflict relation now lives
        # in the kernel's precompiled closure tables.
        self.info = info
        self.enabled_total = 0
        self.fired_total = 0
        self.set_seconds = 0.0
        self._closure_base = self.kernel.stat_closure_iterations
        self._memo_marking: Marking | None = None
        self._memo_fire: list[int] = []
        # Null instrument unless a tracer is active at construction time;
        # observing on it is a no-op method call per expanded state.
        self._set_sizes = current_tracer().metrics.histogram(
            names.STUBBORN_SET_SIZE
        )

    def _to_fire(self, marking: Marking) -> list[int]:
        if marking is not self._memo_marking:
            enabled = self.net.enabled_transitions(marking)
            begin = perf_counter()
            to_fire = stubborn_enabled(
                self.net,
                self.info,
                marking,
                strategy=self.strategy,
                enabled=enabled,
            )
            self.set_seconds += perf_counter() - begin
            self.enabled_total += len(enabled)
            self.fired_total += len(to_fire)
            self._set_sizes.observe(len(to_fire))
            self._memo_fire = to_fire
            self._memo_marking = marking
        return self._memo_fire

    def initial(self) -> Marking:
        return self.net.initial_marking

    def is_deadlock(self, marking: Marking) -> bool:
        return not self._to_fire(marking)

    def successors(
        self, marking: Marking, ctx: SearchContext[Marking]
    ) -> Iterable[tuple[str, Marking]]:
        net = self.net
        for t in self._to_fire(marking):
            yield net.transitions[t], net._fire_enabled(t, marking)

    def instrumentation(self) -> dict[str, object]:
        """Reduction ratio plus stubborn-phase counters.

        ``stubborn_closure_iterations`` counts transitions processed by
        the closure fixpoint (the bench-kernel breakdown divides it by
        wall time); ``stubborn_set_seconds`` is the time spent choosing
        sets, so expansion time is the search total minus it.
        """
        if not self.enabled_total:
            return {}
        return {
            names.STUBBORN_RATIO: round(
                self.fired_total / self.enabled_total, 3
            ),
            names.STUBBORN_CLOSURE_ITERATIONS: (
                self.kernel.stat_closure_iterations - self._closure_base
            ),
            names.STUBBORN_SET_SECONDS: round(self.set_seconds, 6),
        }


class KernelStubbornSpace:
    """The same reduction on packed integer markings (the fast path).

    States are ``int`` bitmasks; each stored state's full enabled set is
    maintained incrementally as a transition bitmask (only the
    transitions touching the fired preset/postset are re-tested), and the
    stubborn closure runs on the kernel's precompiled masks.  Produces
    the same fired sets — and hence the same reduced graph — as
    :class:`StubbornSpace`.
    """

    uses_kernel = True

    def __init__(
        self,
        net: PetriNet,
        *,
        strategy: SeedStrategy = "best",
        info: StructuralInfo | None = None,
    ) -> None:
        self.net = net
        self.kernel = net.kernel()
        self.strategy = strategy
        # Retained for API compatibility; the conflict relation now lives
        # in the kernel's precompiled closure tables.
        self.info = info
        self.enabled_total = 0
        self.fired_total = 0
        self.set_seconds = 0.0
        self._closure_base = self.kernel.stat_closure_iterations
        self._enabled_masks: dict[int, int] = {
            self.kernel.initial: self.kernel.enabled_mask(self.kernel.initial)
        }
        self._memo_bits: int | None = None
        self._memo_fire: list[int] = []
        # Null instrument unless a tracer is active at construction time;
        # observing on it is a no-op method call per expanded state.
        tracer = current_tracer()
        self._set_sizes = tracer.metrics.histogram(names.STUBBORN_SET_SIZE)
        # When no tracer is active at construction, skip the span wrapper
        # per marking and call the seed loop directly (same fired lists;
        # the wrapper only adds the ``stubborn/set`` span).
        self._spans = tracer.enabled

    def decode(self, bits: int) -> Marking:
        """Frozenset view of a packed state (report boundary)."""
        return self.kernel.decode(bits)

    def _to_fire(self, bits: int) -> list[int]:
        if bits != self._memo_bits:
            mask = self._enabled_masks[bits]
            begin = perf_counter()
            if self._spans or not mask:
                to_fire = stubborn_enabled_mask(
                    self.kernel, bits, mask, strategy=self.strategy
                )
            else:
                to_fire = _enabled_part(self.kernel, bits, self.strategy, mask)
            self.set_seconds += perf_counter() - begin
            self.enabled_total += mask.bit_count()
            self.fired_total += len(to_fire)
            if self._spans:
                self._set_sizes.observe(len(to_fire))
            self._memo_fire = to_fire
            self._memo_bits = bits
        return self._memo_fire

    def initial(self) -> int:
        return self.kernel.initial

    def is_deadlock(self, bits: int) -> bool:
        return not self._to_fire(bits)

    def successors(
        self, bits: int, ctx: SearchContext[int]
    ) -> list[tuple[str, int]]:
        kernel = self.kernel
        fire = kernel.fire_enabled
        update = kernel.update_enabled_mask
        labels = self.net.transitions
        masks = self._enabled_masks
        enabled = masks[bits]
        out: list[tuple[str, int]] = []
        append = out.append
        for t in self._to_fire(bits):
            successor = fire(t, bits)
            if successor not in masks:
                masks[successor] = update(enabled, t, successor)
            append((labels[t], successor))
        return out

    def instrumentation(self) -> dict[str, object]:
        """Reduction ratio plus stubborn-phase counters.

        ``stubborn_closure_iterations`` counts transitions processed by
        the closure fixpoint (the bench-kernel breakdown divides it by
        wall time); ``stubborn_set_seconds`` is the time spent choosing
        sets, so expansion time is the search total minus it.
        """
        if not self.enabled_total:
            return {}
        return {
            names.STUBBORN_RATIO: round(
                self.fired_total / self.enabled_total, 3
            ),
            names.STUBBORN_CLOSURE_ITERATIONS: (
                self.kernel.stat_closure_iterations - self._closure_base
            ),
            names.STUBBORN_SET_SECONDS: round(self.set_seconds, 6),
        }


def _stubborn_space(
    net: PetriNet,
    *,
    strategy: SeedStrategy,
    info: StructuralInfo | None,
    use_kernel: bool,
) -> StubbornSpace | KernelStubbornSpace:
    if use_kernel:
        return KernelStubbornSpace(net, strategy=strategy, info=info)
    return StubbornSpace(net, strategy=strategy, info=info)


def _decoded_graph(
    outcome: SearchOutcome, space: StubbornSpace | KernelStubbornSpace
) -> ReachabilityGraph[Marking]:
    """The outcome's graph over classical markings (decode boundary)."""
    if isinstance(space, KernelStubbornSpace):
        return outcome.graph.map_states(space.decode)
    return outcome.graph


def explore_reduced(
    net: PetriNet,
    *,
    strategy: SeedStrategy = "best",
    max_states: int | None = None,
    max_seconds: float | None = None,
    stop_at_first_deadlock: bool = False,
    info: StructuralInfo | None = None,
    use_kernel: bool = True,
) -> ReachabilityGraph[Marking]:
    """Build the stubborn-set reduced reachability graph (BFS order).

    Raises on budget overruns like the full ``explore``; ``analyze`` uses
    the driver's partial results instead.  The returned graph always
    carries classical frozenset markings; with ``use_kernel`` (the
    default) the exploration runs on packed integers and is decoded here.
    """
    space = _stubborn_space(
        net, strategy=strategy, info=info, use_kernel=use_kernel
    )
    outcome = _drive(
        space,
        order="bfs",
        max_states=max_states,
        max_seconds=max_seconds,
        stop_at_first_deadlock=stop_at_first_deadlock,
    )
    raise_if_bounded(outcome, max_states=max_states, max_seconds=max_seconds)
    return _decoded_graph(outcome, space)


def analyze(
    net: PetriNet,
    *,
    strategy: SeedStrategy = "best",
    max_states: int | None = None,
    max_seconds: float | None = None,
    want_witness: bool = True,
    use_kernel: bool = True,
    prop: "Property | str | None" = None,
) -> AnalysisResult:
    """Run stubborn-set reduced analysis, packaged uniformly.

    The reported deadlock verdict is equivalent to the full analysis; the
    reported ``states`` count is the size of the *reduced* graph.  Budget
    overruns (state or wall-clock) are absorbed into a bounded,
    non-exhaustive result carrying the real progress made, exactly like
    the other analyzers.  ``use_kernel`` selects the packed-integer fast
    path (default) or the frozenset reference path; both report identical
    counts (``extras["kernel"]`` records which one ran).

    The stubborn-set reduction preserves *deadlocks only* (its compat
    declaration in :mod:`repro.props.compat`): ``prop`` may be ``None``,
    ``deadlock``, a constant, or a boolean combination of those; any
    ``reachable``/``invariant`` leaf raises
    :class:`~repro.props.ast.UnsupportedPropertyError` — the reduced
    graph genuinely cannot answer the question.
    """
    goal_prop = engine_property(prop)
    if goal_prop is not None and needs_decomposition(goal_prop):
        return run_property(
            goal_prop,
            lambda leaf: analyze(
                net,
                strategy=strategy,
                max_states=max_states,
                max_seconds=max_seconds,
                want_witness=want_witness,
                use_kernel=use_kernel,
                prop=leaf,
            ),
            analyzer="stubborn",
            net_name=net.name,
        )
    if goal_prop is not None:
        raise UnsupportedPropertyError(
            "stubborn",
            goal_prop,
            unsupported_reason("stubborn", goal_prop)
            or "the stubborn-set reduction preserves deadlocks only",
        )
    tracer = current_tracer()
    with tracer.span(
        names.SPAN_ANALYZE, analyzer="stubborn", net=net.name
    ) as root:
        space = _stubborn_space(
            net, strategy=strategy, info=None, use_kernel=use_kernel
        )
        # Consult the structural certificate before exploring: when it
        # holds, UnsafeNetError is provably unreachable during the search.
        with tracer.span(names.SPAN_CERTIFICATE):
            certified = net.static_analysis().safety_certificate.certified
        observers = (TracingObserver(tracer),) if tracer.enabled else ()
        with stopwatch() as elapsed:
            outcome = _drive(
                space,
                order="bfs",
                max_states=max_states,
                max_seconds=max_seconds,
                observers=observers,
            )
        graph = outcome.graph
        witness = None
        if graph.deadlocks and want_witness:
            decode = (
                space.decode
                if isinstance(space, KernelStubbornSpace)
                else None
            )
            with tracer.span(names.SPAN_WITNESS):
                witness = extract_witness(net, graph, decode=decode)
        extras: dict[str, object] = {"strategy": strategy}
        extras.update(outcome.stats.as_extras())
        extras.update(space.instrumentation())
        extras[names.SAFETY_CERTIFIED] = certified
        note = abort_note(
            outcome.stop_reason, max_states=max_states, max_seconds=max_seconds
        )
        if note is not None:
            extras[names.ABORTED] = note
        result = AnalysisResult(
            analyzer="stubborn",
            net_name=net.name,
            states=graph.num_states,
            edges=graph.num_edges,
            deadlock=bool(graph.deadlocks),
            time_seconds=elapsed[0],
            witness=witness,
            exhaustive=outcome.exhaustive,
            extras=extras,
        )
        root.set(states=result.states, edges=result.edges)
    record_result(result)
    return result
