"""Partial-order reduction baseline: stubborn/persistent sets (paper §2.3).

Stands in for "SPIN extended with the Partial-Order Package" in the
reproduction of Table 1.
"""

from repro.stubborn.explorer import analyze, explore_reduced
from repro.stubborn.stubborn import stubborn_enabled, stubborn_set

__all__ = ["analyze", "explore_reduced", "stubborn_enabled", "stubborn_set"]
