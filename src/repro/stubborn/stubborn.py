"""Stubborn / persistent set computation for safe Petri nets.

Implements the deadlock-preserving stubborn sets of Valmari's "A Stubborn
Attack on State Explosion" [14] in the insertion-algorithm formulation, the
same theory SPIN's partial-order package [8, 9] implements for deadlock
detection.  In each explored marking only the *enabled members* of one
stubborn set are fired; all deadlocks of the full reachability graph remain
reachable in the reduced graph.

A set ``S`` of transitions is (deadlock-preserving) stubborn in marking
``m`` when:

* **D1** — for every *disabled* ``t ∈ S`` there is an unmarked input place
  ``p`` (the *scapegoat*) with all producers of ``p`` in ``S``: outside
  transitions cannot enable ``t`` without going through ``S``;
* **D2** — for every *enabled* ``t ∈ S`` every transition that may disable
  ``t`` is in ``S``; in a Petri net only transitions sharing an input place
  with ``t`` (its *conflicters*, Def. 2.2) can disable it;
* **key** — ``S`` contains at least one enabled transition.

The closure establishes D1/D2 by construction, and any enabled seed
provides the key transition.  Because every conflicter of an enabled member
is inside ``S``, the enabled part of ``S`` is exactly the "maximal set of
conflicting transitions" the paper's Section 2.3 fires — when no disabled
transition sneaks into the closure.  When one does, its producers get pulled
in, possibly growing the set up to all of ``T`` (no reduction), which is
precisely the degenerate behaviour the paper reports for the RW benchmark.

There is exactly **one** closure implementation:
:meth:`~repro.net.kernel.MarkingKernel.stubborn_closure`, a bitmask
fixpoint over the kernel's precompiled ``conflicters_mask`` /
``scapegoat_plan`` tables.  The historical frozenset-marking entry points
(``stubborn_set`` / ``stubborn_enabled``) are thin adapters that pack the
marking and run the same masks — the twins that used to duplicate the
worklist logic are gone, and with them the drift risk their docstrings
warned about.  The closure is a least fixpoint whose result *set* does not
depend on worklist order (the scapegoat choice is deterministic per
marking), so the fired lists — and therefore the reduced graph — are
byte-identical to the historical path.
"""

from __future__ import annotations

from repro.net.kernel import MarkingKernel, iter_bits
from repro.net.petrinet import Marking, PetriNet
from repro.net.structure import StructuralInfo
from repro.obs import names
from repro.obs.tracer import current_tracer

__all__ = [
    "stubborn_set",
    "stubborn_enabled",
    "stubborn_set_kernel",
    "stubborn_enabled_kernel",
    "stubborn_enabled_mask",
    "SeedStrategy",
]

#: Strategies for choosing the seed transition of the closure.
SeedStrategy = str  # "first" | "best"


def stubborn_set(
    net: PetriNet,
    info: StructuralInfo | None,
    marking: Marking,
    seed: int,
) -> set[int]:
    """Close ``{seed}`` under rules D1/D2; ``seed`` must be enabled.

    Frozenset-marking adapter over the kernel closure.  ``info`` is
    accepted for API compatibility but unused: the conflict relation now
    lives in the kernel's precompiled ``conflicters_mask`` table (built
    from the same per-place consumer sets ``StructuralInfo`` uses).
    """
    kernel = net.kernel()
    bits = kernel.encode(marking)
    assert kernel.is_enabled(seed, bits), "stubborn seed must be enabled"
    return set(iter_bits(kernel.stubborn_closure(bits, 1 << seed)))


def stubborn_set_kernel(
    kernel: MarkingKernel,
    info: StructuralInfo | None,
    bits: int,
    seed: int,
) -> set[int]:
    """Packed-marking adapter over the kernel closure (same set)."""
    assert kernel.is_enabled(seed, bits), "stubborn seed must be enabled"
    return set(iter_bits(kernel.stubborn_closure(bits, 1 << seed)))


def stubborn_enabled(
    net: PetriNet,
    info: StructuralInfo | None,
    marking: Marking,
    *,
    strategy: SeedStrategy = "best",
    enabled: list[int] | None = None,
) -> list[int]:
    """The enabled part of a chosen stubborn set in ``marking``.

    Frozenset-marking adapter: packs the marking once and runs the same
    mask fixpoint as :func:`stubborn_enabled_kernel`.

    Returns the transitions to fire from this state.  Empty iff the marking
    is a deadlock.  Pass ``enabled`` when the caller already computed
    ``net.enabled_transitions(marking)`` (the explorer does, to measure the
    reduction ratio without recomputing).  ``strategy``:

    * ``"first"`` — close from the first enabled transition (fast);
    * ``"best"`` — close from every enabled seed, fire the set whose
      enabled part is smallest (stronger reduction; this is what allows the
      explorer to follow one interleaving in Figure 1 and one conflict pair
      at a time in Figure 2).
    """
    if enabled is None:
        enabled = net.enabled_transitions(marking)
    if not enabled:
        return []
    kernel = net.kernel()
    enabled_mask = 0
    for t in enabled:
        enabled_mask |= 1 << t
    return stubborn_enabled_mask(
        kernel, kernel.encode(marking), enabled_mask, strategy=strategy
    )


def stubborn_enabled_kernel(
    kernel: MarkingKernel,
    info: StructuralInfo | None,
    bits: int,
    *,
    strategy: SeedStrategy = "best",
    enabled: list[int] | None = None,
    enabled_mask: int | None = None,
) -> list[int]:
    """Packed-marking twin of :func:`stubborn_enabled` (same core).

    ``enabled_mask`` is the full enabled set of ``bits`` as a transition
    bitmask, when the caller maintains it anyway (the kernel explorer
    does, incrementally); it only unlocks the precomputed closure fast
    path and never changes the fired list.
    """
    if enabled is None:
        enabled = kernel.enabled_transitions(bits)
    if not enabled:
        return []
    if enabled_mask is None:
        enabled_mask = 0
        for t in enabled:
            enabled_mask |= 1 << t
    return stubborn_enabled_mask(kernel, bits, enabled_mask, strategy=strategy)


def stubborn_enabled_mask(
    kernel: MarkingKernel,
    bits: int,
    enabled_mask: int,
    *,
    strategy: SeedStrategy = "best",
) -> list[int]:
    """Mask-native entry point: fired list straight from bitmasks.

    ``enabled_mask`` must be the exact enabled set of ``bits``.  This is
    the hot-path form the kernel explorer calls per expanded marking;
    the list/frozenset entry points above funnel into it.
    """
    if not enabled_mask:
        return []
    tracer = current_tracer()
    if tracer.enabled:
        # Per-marking span; only taken when tracing is on, so the bare
        # hot path costs one attribute check.
        with tracer.span(
            names.SPAN_STUBBORN_SET, enabled=enabled_mask.bit_count()
        ) as sp:
            fired = _enabled_part(kernel, bits, strategy, enabled_mask)
            sp.set(fired=len(fired))
            return fired
    return _enabled_part(kernel, bits, strategy, enabled_mask)


def _enabled_part(
    kernel: MarkingKernel,
    bits: int,
    strategy: SeedStrategy,
    enabled_mask: int,
) -> list[int]:
    """Seed-strategy loop shared by both marking views.

    Seeds are tried in ascending transition order, exactly as the
    historical list loop did.  The ``"best"`` dedup is the historical one
    in mask form: seeds inside an already-computed closure yield the same
    closure or a subset, so stripping each computed closure from the
    remaining seed pool (``todo &= ~chosen``) skips precisely the seeds
    the old ``seen``-set test skipped.  The fired list of a closure is
    the ascending bits of ``closure & enabled_mask``; sizes are compared
    as popcounts and only the winner is materialized.
    """
    closure = kernel.stubborn_closure
    if strategy == "first":
        chosen = closure(bits, enabled_mask & -enabled_mask, enabled_mask)
        return list(iter_bits(chosen & enabled_mask))
    if strategy != "best":
        raise ValueError(f"unknown seed strategy {strategy!r}")

    best_mask = 0
    best_count = 0
    todo = enabled_mask
    while todo:
        seed_bit = todo & -todo
        chosen = closure(bits, seed_bit, enabled_mask)
        todo &= ~chosen
        fired_mask = chosen & enabled_mask
        count = fired_mask.bit_count()
        if not best_count or count < best_count:
            best_mask = fired_mask
            best_count = count
            if count == 1:
                break
    assert best_count
    fired = []
    while best_mask:
        low = best_mask & -best_mask
        fired.append(low.bit_length() - 1)
        best_mask ^= low
    return fired
