"""Stubborn / persistent set computation for safe Petri nets.

Implements the deadlock-preserving stubborn sets of Valmari's "A Stubborn
Attack on State Explosion" [14] in the insertion-algorithm formulation, the
same theory SPIN's partial-order package [8, 9] implements for deadlock
detection.  In each explored marking only the *enabled members* of one
stubborn set are fired; all deadlocks of the full reachability graph remain
reachable in the reduced graph.

A set ``S`` of transitions is (deadlock-preserving) stubborn in marking
``m`` when:

* **D1** — for every *disabled* ``t ∈ S`` there is an unmarked input place
  ``p`` (the *scapegoat*) with all producers of ``p`` in ``S``: outside
  transitions cannot enable ``t`` without going through ``S``;
* **D2** — for every *enabled* ``t ∈ S`` every transition that may disable
  ``t`` is in ``S``; in a Petri net only transitions sharing an input place
  with ``t`` (its *conflicters*, Def. 2.2) can disable it;
* **key** — ``S`` contains at least one enabled transition.

The closure below establishes D1/D2 by construction, and any enabled seed
provides the key transition.  Because every conflicter of an enabled member
is inside ``S``, the enabled part of ``S`` is exactly the "maximal set of
conflicting transitions" the paper's Section 2.3 fires — when no disabled
transition sneaks into the closure.  When one does, its producers get pulled
in, possibly growing the set up to all of ``T`` (no reduction), which is
precisely the degenerate behaviour the paper reports for the RW benchmark.
"""

from __future__ import annotations

from repro.net.kernel import MarkingKernel
from repro.net.petrinet import Marking, PetriNet
from repro.net.structure import StructuralInfo
from repro.obs import names
from repro.obs.tracer import current_tracer

__all__ = [
    "stubborn_set",
    "stubborn_enabled",
    "stubborn_set_kernel",
    "stubborn_enabled_kernel",
    "SeedStrategy",
]

#: Strategies for choosing the seed transition of the closure.
SeedStrategy = str  # "first" | "best"


def stubborn_set(
    net: PetriNet,
    info: StructuralInfo,
    marking: Marking,
    seed: int,
) -> set[int]:
    """Close ``{seed}`` under rules D1/D2; ``seed`` must be enabled.

    Reference (frozenset-marking) implementation;
    :func:`stubborn_set_kernel` is the bitmask twin and must stay
    step-for-step equivalent to it.
    """
    assert net.is_enabled(seed, marking), "stubborn seed must be enabled"
    stubborn: set[int] = set()
    worklist: list[int] = [seed]
    while worklist:
        t = worklist.pop()
        if t in stubborn:
            continue
        stubborn.add(t)
        if net.is_enabled(t, marking):
            # D2: pull in everything that can disable t.
            for u in info.conflicters(t):
                if u not in stubborn:
                    worklist.append(u)
        else:
            # D1: pick a scapegoat place and pull in its producers.
            scapegoat = _choose_scapegoat(net, marking, t)
            for u in net.pre_transitions[scapegoat]:
                if u not in stubborn:
                    worklist.append(u)
    return stubborn


def _choose_scapegoat(net: PetriNet, marking: Marking, t: int) -> int:
    """Unmarked input place of a disabled ``t`` with fewest producers.

    Any unmarked input place is sound; fewer producers keeps the closure
    (and hence the fired set) small.
    """
    best: int | None = None
    best_producers = -1
    for p in net.pre_places[t]:
        if p in marking:
            continue
        producers = len(net.pre_transitions[p])
        if best is None or producers < best_producers:
            best = p
            best_producers = producers
    assert best is not None, "disabled transition must have an unmarked input"
    return best


def stubborn_set_kernel(
    kernel: MarkingKernel,
    info: StructuralInfo,
    bits: int,
    seed: int,
) -> set[int]:
    """Bitmask twin of :func:`stubborn_set` over a packed marking.

    Identical closure, identical worklist order, identical scapegoat
    tie-breaks (the scapegoat scan iterates the *same* ``pre_places``
    frozenset), so the resulting set — and therefore the reduced graph —
    matches the reference path exactly.
    """
    net = kernel.net
    pre_mask = kernel.pre_mask
    assert bits & pre_mask[seed] == pre_mask[seed], (
        "stubborn seed must be enabled"
    )
    stubborn: set[int] = set()
    worklist: list[int] = [seed]
    while worklist:
        t = worklist.pop()
        if t in stubborn:
            continue
        stubborn.add(t)
        if bits & pre_mask[t] == pre_mask[t]:
            # D2: pull in everything that can disable t.
            for u in info.conflicters(t):
                if u not in stubborn:
                    worklist.append(u)
        else:
            # D1: pick a scapegoat place and pull in its producers.
            scapegoat = _choose_scapegoat_kernel(net, bits, t)
            for u in net.pre_transitions[scapegoat]:
                if u not in stubborn:
                    worklist.append(u)
    return stubborn


def _choose_scapegoat_kernel(net: PetriNet, bits: int, t: int) -> int:
    """Bitmask twin of :func:`_choose_scapegoat` (same iteration order)."""
    best: int | None = None
    best_producers = -1
    for p in net.pre_places[t]:
        if (bits >> p) & 1:
            continue
        producers = len(net.pre_transitions[p])
        if best is None or producers < best_producers:
            best = p
            best_producers = producers
    assert best is not None, "disabled transition must have an unmarked input"
    return best


def stubborn_enabled(
    net: PetriNet,
    info: StructuralInfo,
    marking: Marking,
    *,
    strategy: SeedStrategy = "best",
    enabled: list[int] | None = None,
) -> list[int]:
    """The enabled part of a chosen stubborn set in ``marking``.

    Reference (frozenset-marking) implementation;
    :func:`stubborn_enabled_kernel` is the packed-marking fast path.

    Returns the transitions to fire from this state.  Empty iff the marking
    is a deadlock.  Pass ``enabled`` when the caller already computed
    ``net.enabled_transitions(marking)`` (the explorer does, to measure the
    reduction ratio without recomputing).  ``strategy``:

    * ``"first"`` — close from the first enabled transition (fast);
    * ``"best"`` — close from every enabled seed, fire the set whose
      enabled part is smallest (stronger reduction; this is what allows the
      explorer to follow one interleaving in Figure 1 and one conflict pair
      at a time in Figure 2).
    """
    if enabled is None:
        enabled = net.enabled_transitions(marking)
    if not enabled:
        return []
    tracer = current_tracer()
    if tracer.enabled:
        # Per-marking span; only taken when tracing is on, so the bare
        # hot path costs one attribute check.
        with tracer.span(names.SPAN_STUBBORN_SET, enabled=len(enabled)) as sp:
            fired = _enabled_part(net, info, marking, strategy, enabled)
            sp.set(fired=len(fired))
            return fired
    return _enabled_part(net, info, marking, strategy, enabled)


def _enabled_part(
    net: PetriNet,
    info: StructuralInfo,
    marking: Marking,
    strategy: SeedStrategy,
    enabled: list[int],
) -> list[int]:
    if strategy == "first":
        chosen = stubborn_set(net, info, marking, enabled[0])
        return [t for t in enabled if t in chosen]
    if strategy != "best":
        raise ValueError(f"unknown seed strategy {strategy!r}")

    best: list[int] | None = None
    enabled_set = set(enabled)
    seen_seeds: set[int] = set()
    for seed in enabled:
        if seed in seen_seeds:
            continue
        chosen = stubborn_set(net, info, marking, seed)
        fired = [t for t in enabled if t in chosen]
        # Seeds inside an already-computed set yield the same closure or a
        # subset; skipping them is a cheap but effective dedup.
        seen_seeds |= chosen & enabled_set
        if best is None or len(fired) < len(best):
            best = fired
            if len(best) == 1:
                break
    assert best is not None
    return best


def stubborn_enabled_kernel(
    kernel: MarkingKernel,
    info: StructuralInfo,
    bits: int,
    *,
    strategy: SeedStrategy = "best",
    enabled: list[int] | None = None,
) -> list[int]:
    """Packed-marking twin of :func:`stubborn_enabled`.

    Same seed order, same closures, same best-set tie-breaks — the
    differential test-suite asserts the fired lists are identical to the
    reference path on every explored marking.
    """
    if enabled is None:
        enabled = kernel.enabled_transitions(bits)
    if not enabled:
        return []
    tracer = current_tracer()
    if tracer.enabled:
        # Per-marking span; only taken when tracing is on, so the bare
        # hot path costs one attribute check.
        with tracer.span(names.SPAN_STUBBORN_SET, enabled=len(enabled)) as sp:
            fired = _enabled_part_kernel(kernel, info, bits, strategy, enabled)
            sp.set(fired=len(fired))
            return fired
    return _enabled_part_kernel(kernel, info, bits, strategy, enabled)


def _enabled_part_kernel(
    kernel: MarkingKernel,
    info: StructuralInfo,
    bits: int,
    strategy: SeedStrategy,
    enabled: list[int],
) -> list[int]:
    if strategy == "first":
        chosen = stubborn_set_kernel(kernel, info, bits, enabled[0])
        return [t for t in enabled if t in chosen]
    if strategy != "best":
        raise ValueError(f"unknown seed strategy {strategy!r}")

    best: list[int] | None = None
    enabled_set = set(enabled)
    seen_seeds: set[int] = set()
    for seed in enabled:
        if seed in seen_seeds:
            continue
        chosen = stubborn_set_kernel(kernel, info, bits, seed)
        fired = [t for t in enabled if t in chosen]
        # Same dedup as the reference path: seeds inside an
        # already-computed set yield the same closure or a subset.
        seen_seeds |= chosen & enabled_set
        if best is None or len(fired) < len(best):
            best = fired
            if len(best) == 1:
                break
    assert best is not None
    return best
