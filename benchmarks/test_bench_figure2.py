"""Figure 2 / §3.1: n concurrently marked conflict places.

The second source of state explosion — the one classical partial-order
methods do **not** cure and the paper's contribution does:

* full reachability: 3^n markings;
* PO-reduced ("anticipated") graph: still 2^(n+1) - 1 states (Fig. 2b);
* generalized partial order: 2 states for every n (§3.1's headline).
"""

import pytest

from repro.analysis import explore
from repro.gpo import analyze as gpo_analyze, explore_gpo
from repro.models import conflict_pairs_net
from repro.stubborn import explore_reduced

SIZES = [2, 4, 6, 8, 10]


class TestShape:
    @pytest.mark.parametrize("n", SIZES)
    def test_counts(self, n):
        if n <= 8:
            assert explore(conflict_pairs_net(n)).num_states == 3**n
        assert (
            explore_reduced(conflict_pairs_net(n)).num_states
            == 2 ** (n + 1) - 1
        )
        assert explore_gpo(conflict_pairs_net(n)).graph.num_states == 2

    def test_gpo_covers_all_outcomes(self):
        # The single successor state stands for all 2^n branch outcomes.
        n = 6
        result = gpo_analyze(conflict_pairs_net(n), backend="bdd")
        assert result.extras["scenarios"] == 2**n


@pytest.mark.parametrize("n", [4, 6, 8])
def test_bench_full(benchmark, n):
    benchmark(lambda: explore(conflict_pairs_net(n)))


@pytest.mark.parametrize("n", [4, 6, 8, 10])
def test_bench_reduced(benchmark, n):
    benchmark(lambda: explore_reduced(conflict_pairs_net(n)))


@pytest.mark.parametrize("n", [4, 6, 8, 10])
def test_bench_gpo(benchmark, n):
    result = benchmark(lambda: explore_gpo(conflict_pairs_net(n)))
    assert result.graph.num_states == 2
