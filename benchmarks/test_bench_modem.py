"""Case study bench: the QAM-modem embedded-system model.

Beyond Table 1 — the paper's §5 reports applying the method to embedded
designs such as a QAM modem.  Shapes asserted:

* the interleaved state space grows ~two orders of magnitude per added
  lane (53248 at 2 lanes; past 500k at 3);
* GPO explores a constant 11 GPN states per variant, finding the retrain
  wedge in the buggy revision in milliseconds;
* stubborn sets also scale (the modem is concurrency-heavy), but grow
  with the lane count where GPO does not.
"""

import pytest

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.models import modem
from repro.stubborn import analyze as stubborn_analyze


class TestShape:
    def test_full_explodes_per_lane(self, bench_max_states):
        one = full_analyze(modem(1, bug=True), max_states=bench_max_states)
        two = full_analyze(modem(2, bug=True), max_states=bench_max_states)
        assert one.states == 448
        assert not two.exhaustive or two.states == 53248

    @pytest.mark.parametrize("lanes", [1, 2, 3])
    def test_gpo_constant(self, lanes):
        buggy = gpo_analyze(modem(lanes, bug=True))
        fixed = gpo_analyze(modem(lanes, bug=False))
        assert buggy.states == 11 and buggy.deadlock
        assert fixed.states == 11 and not fixed.deadlock

    def test_stubborn_grows_with_lanes(self, bench_max_states):
        counts = [
            stubborn_analyze(
                modem(lanes, bug=True), max_states=bench_max_states
            ).states
            for lanes in (1, 2, 3)
        ]
        assert counts[0] < counts[1] < counts[2]


@pytest.mark.parametrize("lanes", [1, 2])
def test_bench_full(benchmark, lanes, bench_max_states):
    benchmark(
        lambda: full_analyze(
            modem(lanes, bug=True), max_states=bench_max_states
        )
    )


@pytest.mark.parametrize("lanes", [1, 2, 3])
def test_bench_stubborn(benchmark, lanes, bench_max_states):
    benchmark(
        lambda: stubborn_analyze(
            modem(lanes, bug=True), max_states=bench_max_states
        )
    )


@pytest.mark.parametrize("lanes", [1, 2, 3])
@pytest.mark.parametrize("bug", [True, False])
def test_bench_gpo(benchmark, lanes, bug):
    result = benchmark(lambda: gpo_analyze(modem(lanes, bug=bug)))
    assert result.deadlock == bug
