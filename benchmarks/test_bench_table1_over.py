"""Table 1, OVER rows: the overtake protocol.

Paper shape: full states grow exponentially per car (65 → 519 → 4175 →
33460, ×8/car; our reconstruction grows ×4/car); stubborn sets reduce by
a widening factor; GPO stays constant (paper: 6..9; ours: 2, detecting
the circular-wait deadlock at the first simultaneous firing).
"""

import pytest

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.models import over
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze

SIZES = [2, 3, 4, 5]


class TestShape:
    def test_full_exponential(self, bench_max_states):
        counts = [
            full_analyze(over(n), max_states=bench_max_states).states
            for n in (2, 3, 4)
        ]
        assert counts == [16, 62, 256]
        assert counts[2] / counts[1] > 3.5

    def test_stubborn_widening_reduction(self, bench_max_states):
        fulls = [16, 62, 256]
        reduced = [
            stubborn_analyze(over(n), max_states=bench_max_states).states
            for n in (2, 3, 4)
        ]
        ratios = [f / r for f, r in zip(fulls, reduced)]
        assert ratios[0] < ratios[1] < ratios[2]

    @pytest.mark.parametrize("n", SIZES)
    def test_gpo_constant_and_deadlock(self, n):
        result = gpo_analyze(over(n))
        assert result.states == 2
        assert result.deadlock

    def test_verdicts_agree(self):
        net = over(2)
        assert full_analyze(net).deadlock
        assert stubborn_analyze(net).deadlock
        assert symbolic_analyze(net).deadlock
        assert gpo_analyze(net).deadlock


@pytest.mark.parametrize("n", [2, 3, 4])
def test_bench_full(benchmark, n, bench_max_states):
    benchmark(lambda: full_analyze(over(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", SIZES)
def test_bench_stubborn(benchmark, n, bench_max_states):
    benchmark(lambda: stubborn_analyze(over(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", [2, 3, 4])
def test_bench_symbolic(benchmark, n):
    benchmark(lambda: symbolic_analyze(over(n)))


@pytest.mark.parametrize("n", SIZES)
def test_bench_gpo(benchmark, n):
    result = benchmark(lambda: gpo_analyze(over(n)))
    assert result.deadlock
