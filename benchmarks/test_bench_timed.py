"""Bench for the timed extension (the paper's §5 outlook).

Shapes asserted:

* with ``[0, ∞)`` intervals the state-class graph coincides with the
  classical reachability graph (same counts — no timed overhead beyond
  the DBM bookkeeping);
* real intervals *prune* behaviour: the timed graph of the
  deadline-guarded handshake is smaller than its untimed skeleton and
  deadlock-free while the skeleton deadlocks.
"""

import pytest

from repro.analysis import analyze as full_analyze
from repro.models import nsdp, over
from repro.timed import TimedNetBuilder, TimedPetriNet, analyze as timed_analyze


def guarded_handshake(reply_deadline: int) -> TimedPetriNet:
    """The timed_verification example's net (deadline-parameterized)."""
    b = TimedNetBuilder(f"handshake_d{reply_deadline}")
    b.place("client_idle", marked=True)
    b.place("client_waiting")
    b.place("request")
    b.place("reply")
    b.place("server_idle", marked=True)
    b.place("server_busy")
    b.place("server_flushing")
    b.transition("send_request", interval=(0, 1),
                 inputs=["client_idle"], outputs=["client_waiting", "request"])
    b.transition("receive", interval=(0, 1),
                 inputs=["request", "server_idle"], outputs=["server_busy"])
    b.transition("reply_fast", interval=(0, reply_deadline),
                 inputs=["server_busy"], outputs=["server_idle", "reply"])
    b.transition("start_flush", interval=(10, 12),
                 inputs=["server_busy"], outputs=["server_flushing"])
    b.transition("finish_flush", interval=(0, 1),
                 inputs=["server_flushing", "client_idle"],
                 outputs=["server_idle", "reply", "client_idle"])
    b.transition("get_reply", interval=(0, 2),
                 inputs=["reply", "client_waiting"], outputs=["client_idle"])
    return b.build()


class TestShape:
    @pytest.mark.parametrize("make", [lambda: nsdp(2), lambda: over(2)])
    def test_untimed_wrapper_matches_classical(self, make):
        net = make()
        classical = full_analyze(net)
        timed = timed_analyze(TimedPetriNet.untimed(net))
        assert timed.extras["markings"] == classical.states
        assert timed.deadlock == classical.deadlock

    def test_deadline_prunes_the_false_alarm(self):
        tight = timed_analyze(guarded_handshake(2))
        loose = timed_analyze(guarded_handshake(20))
        assert not tight.deadlock
        assert loose.deadlock
        assert tight.states < loose.states


@pytest.mark.parametrize("n", [2, 3])
def test_bench_untimed_wrapper_nsdp(benchmark, n):
    tpn = TimedPetriNet.untimed(nsdp(n))
    benchmark(lambda: timed_analyze(tpn))


@pytest.mark.parametrize("deadline", [2, 20])
def test_bench_guarded_handshake(benchmark, deadline):
    tpn = guarded_handshake(deadline)
    result = benchmark(lambda: timed_analyze(tpn))
    assert result.deadlock == (deadline == 20)
