"""Figure 1: n concurrently enabled independent transitions.

The first source of state explosion (§2.2) and the classical cure (§2.3):

* full reachability = the 2^n Boolean lattice of markings (all
  interleavings of the n transitions — n! maximal paths);
* partial-order reduction follows one interleaving: n + 1 states;
* generalized analysis fires all n transitions simultaneously: 2 states.
"""

import pytest

from repro.analysis import explore
from repro.gpo import explore_gpo
from repro.models import concurrent_net
from repro.stubborn import explore_reduced

SIZES = [2, 4, 6, 8, 10]


class TestShape:
    @pytest.mark.parametrize("n", SIZES)
    def test_counts(self, n):
        assert explore(concurrent_net(n)).num_states == 2**n
        assert explore_reduced(concurrent_net(n)).num_states == n + 1
        assert explore_gpo(concurrent_net(n)).graph.num_states == 2


@pytest.mark.parametrize("n", [4, 8, 10])
def test_bench_full(benchmark, n):
    benchmark(lambda: explore(concurrent_net(n)))


@pytest.mark.parametrize("n", [4, 8, 10])
def test_bench_reduced(benchmark, n):
    benchmark(lambda: explore_reduced(concurrent_net(n)))


@pytest.mark.parametrize("n", [4, 8, 10])
def test_bench_gpo(benchmark, n):
    result = benchmark(lambda: explore_gpo(concurrent_net(n)))
    assert result.graph.num_states == 2
