"""Table 1, ASAT rows: the asynchronous arbiter tree.

Paper shape: full states explode by ~2 orders of magnitude per doubling
of users (88 → 7822 → 1.58e6); stubborn sets reduce dramatically (the
tree is mostly concurrency, little conflict); GPO stays nearly flat
(8 → 14 → 23; ours 10 → 14 → 18); the net is deadlock-free.
"""

import pytest

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.models import asat
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze


class TestShape:
    def test_full_explosion(self, bench_max_states):
        small = full_analyze(asat(2), max_states=bench_max_states)
        large = full_analyze(asat(4), max_states=bench_max_states)
        assert small.states == 36
        assert large.states == 768
        assert large.states / small.states > 10

    def test_stubborn_strong_reduction(self, bench_max_states):
        # The regime where classical PO shines (paper: 7822 -> 192).
        full = full_analyze(asat(4), max_states=bench_max_states).states
        reduced = stubborn_analyze(asat(4), max_states=bench_max_states).states
        assert reduced * 5 < full

    @pytest.mark.parametrize(
        "n,expected", [(2, 10), (4, 14), (8, 18)]
    )
    def test_gpo_nearly_flat(self, n, expected):
        result = gpo_analyze(asat(n))
        assert result.states == expected
        assert not result.deadlock

    def test_verdict_deadlock_free(self):
        net = asat(2)
        for analyze in (full_analyze, stubborn_analyze, symbolic_analyze, gpo_analyze):
            assert not analyze(net).deadlock


@pytest.mark.parametrize("n", [2, 4])
def test_bench_full(benchmark, n, bench_max_states):
    benchmark(lambda: full_analyze(asat(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", [2, 4, 8])
def test_bench_stubborn(benchmark, n, bench_max_states):
    benchmark(lambda: stubborn_analyze(asat(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", [2, 4])
def test_bench_symbolic(benchmark, n):
    benchmark(lambda: symbolic_analyze(asat(n)))


@pytest.mark.parametrize("n", [2, 4, 8])
def test_bench_gpo(benchmark, n):
    result = benchmark(lambda: gpo_analyze(asat(n)))
    assert not result.deadlock
