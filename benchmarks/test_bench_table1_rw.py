"""Table 1, RW rows: readers and writers.

The paper's highlighted anomaly, reproduced exactly:

* classical partial-order reduction achieves **nothing** — the reduced
  state space equals the complete one (every transition participates in
  one global conflict structure);
* the symbolic engine stays compact (peak BDD nodes grow mildly while
  states grow ×2 per process);
* GPO explores a constant number of GPN states (paper: 2; ours: 4) in
  time growing mildly with n; deadlock-free.
"""

import pytest

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.models import rw
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze

GPO_SIZES = [6, 9, 12, 15]


class TestShape:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_po_reduction_degenerates(self, n, bench_max_states):
        full = full_analyze(rw(n), max_states=bench_max_states)
        reduced = stubborn_analyze(rw(n), max_states=bench_max_states)
        assert full.states == 2**n + n
        assert reduced.states == full.states  # the §4 observation

    def test_symbolic_peak_grows_mildly(self):
        small = symbolic_analyze(rw(4)).extras["peak_bdd_nodes"]
        large = symbolic_analyze(rw(8)).extras["peak_bdd_nodes"]
        # states grow 16x; BDD peak must grow far slower
        assert large / small < 8

    @pytest.mark.parametrize("n", [2, 4, 6, 9])
    def test_gpo_constant_states(self, n):
        result = gpo_analyze(rw(n))
        assert result.states == 4
        assert not result.deadlock

    def test_verdicts_agree(self):
        net = rw(3)
        for analyze in (full_analyze, stubborn_analyze, symbolic_analyze, gpo_analyze):
            assert not analyze(net).deadlock


@pytest.mark.parametrize("n", [6, 9])
def test_bench_full(benchmark, n, bench_max_states):
    benchmark(lambda: full_analyze(rw(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", [6, 9])
def test_bench_stubborn(benchmark, n, bench_max_states):
    benchmark(lambda: stubborn_analyze(rw(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", [6, 9, 12])
def test_bench_symbolic(benchmark, n):
    benchmark(lambda: symbolic_analyze(rw(n)))


@pytest.mark.parametrize("n", GPO_SIZES)
def test_bench_gpo(benchmark, n):
    result = benchmark(lambda: gpo_analyze(rw(n)))
    assert result.states == 4
