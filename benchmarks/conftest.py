"""Shared configuration for the benchmark suite.

Every benchmark asserts the *shape* claims of the paper (who wins, how
counts grow) before timing anything, so a silent regression in an analyzer
cannot hide behind a fast wrong answer.

Budgets: the benchmark defaults keep the suite at a few minutes.  The
full-scale Table 1 (paper sizes, larger budgets) is produced by
``python -m repro table1``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-max-states",
        type=int,
        default=60_000,
        help="state budget for explicit analyzers in benchmarks",
    )


@pytest.fixture(scope="session")
def bench_max_states(request):
    return request.config.getoption("--bench-max-states")
