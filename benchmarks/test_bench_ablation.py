"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. **Symbolic engine configuration** — partitioned transition relations +
   FORCE variable ordering (our default) vs a monolithic relation without
   ordering heuristics.  Finding (recorded in EXPERIMENTS.md): at the
   paper's instance sizes *neither* configuration of a modern ROBDD
   engine reproduces the 1998 SMV blow-up — the monolithic relation even
   shares frame-condition structure our per-transition relations repeat.
   The ablation pins the fixpoint equivalence and lets the timings speak.
2. **GPO family backend** — BDD-backed scenario families vs explicit
   frozensets.  Explicit families carry exponentially many scenarios per
   state; the BDD backend keeps them polynomial on the benchmarks.
3. **Stubborn seed strategy** — "best" (try all seeds, smallest enabled
   part) vs "first"; quantifies what the extra closure work buys.
"""

import pytest

from repro.gpo import analyze as gpo_analyze
from repro.models import conflict_pairs_net, nsdp, rw
from repro.stubborn import explore_reduced
from repro.symbolic import reach
from repro.unfolding import unfold


class TestShape:
    def test_monolithic_and_partitioned_same_fixpoint(self):
        net = nsdp(3)
        modern = reach(net, partitioned=True, use_force_order=True)
        naive = reach(net, partitioned=False, use_force_order=False)
        assert naive.num_states == modern.num_states
        assert naive.iterations == modern.iterations

    def test_force_order_helps(self):
        net = nsdp(4)
        with_force = reach(net, use_force_order=True)
        without = reach(net, use_force_order=False)
        assert with_force.peak_nodes <= without.peak_nodes

    def test_backends_same_answers(self):
        for make in (lambda: nsdp(3), lambda: rw(4)):
            net = make()
            explicit = gpo_analyze(net, backend="explicit")
            bdd = gpo_analyze(net, backend="bdd")
            assert explicit.states == bdd.states
            assert explicit.deadlock == bdd.deadlock

    def test_best_strategy_reduces_more(self):
        net = conflict_pairs_net(6)
        best = explore_reduced(net, strategy="best").num_states
        first = explore_reduced(net, strategy="first").num_states
        assert best <= first

    def test_unfolding_prefix_linear_on_conflict_pairs(self):
        # Where PO-reduced graphs blow up (2^(n+1) - 1 states), the
        # complete prefix stays linear: 2n events — unfoldings and GPO
        # both sidestep the conflict-place explosion, by different means.
        for n in (2, 4, 8):
            prefix = unfold(conflict_pairs_net(n))
            assert prefix.num_events == 2 * n


@pytest.mark.parametrize("n", [4, 8])
def test_bench_unfolding_conflict_pairs(benchmark, n):
    result = benchmark(lambda: unfold(conflict_pairs_net(n)))
    assert result.num_events == 2 * n


@pytest.mark.parametrize("n", [2, 3])
def test_bench_unfolding_nsdp(benchmark, n):
    benchmark(lambda: unfold(nsdp(n)))


@pytest.mark.parametrize("n", [2, 3, 4])
def test_bench_symbolic_modern(benchmark, n):
    benchmark(lambda: reach(nsdp(n), partitioned=True, use_force_order=True))


@pytest.mark.parametrize("n", [2, 3])
def test_bench_symbolic_naive(benchmark, n):
    benchmark(lambda: reach(nsdp(n), partitioned=False, use_force_order=False))


@pytest.mark.parametrize("backend", ["explicit", "bdd"])
def test_bench_gpo_backend_nsdp(benchmark, backend):
    benchmark(lambda: gpo_analyze(nsdp(4), backend=backend))


@pytest.mark.parametrize("backend", ["explicit", "bdd"])
def test_bench_gpo_backend_conflict_pairs(benchmark, backend):
    # 2^10 scenarios: the explicit backend pays linearly in scenarios,
    # the BDD backend logarithmically.
    benchmark(lambda: gpo_analyze(conflict_pairs_net(10), backend=backend))


@pytest.mark.parametrize("strategy", ["best", "first"])
def test_bench_stubborn_strategy(benchmark, strategy):
    benchmark(lambda: explore_reduced(nsdp(4), strategy=strategy))
