"""Table 1, NSDP rows: dining philosophers under all four analyzers.

Paper shape being reproduced (sizes 2..10):

* full states explode ≈ ×17.9 per philosopher pair (18 → 322 → 5778 ...);
* stubborn-set reduction helps but stays exponential;
* GPO explores a *constant* number of GPN states and detects the
  deadlock, with runtime growing roughly linearly in n;
* the symbolic engine completes (see the ablation bench for the
  1998-style configuration that does not).
"""

import pytest

from repro.analysis import analyze as full_analyze
from repro.gpo import analyze as gpo_analyze
from repro.models import nsdp
from repro.stubborn import analyze as stubborn_analyze
from repro.symbolic import analyze as symbolic_analyze

GPO_SIZES = [2, 4, 6, 8, 10]


class TestShape:
    """Assertions protecting the claims the timings below illustrate."""

    def test_full_explosion(self, bench_max_states):
        counts = [
            full_analyze(nsdp(n), max_states=bench_max_states).states
            for n in (2, 3, 4)
        ]
        assert counts == [17, 78, 341]

    def test_stubborn_reduces_but_stays_exponential(self, bench_max_states):
        reduced = [
            stubborn_analyze(nsdp(n), max_states=bench_max_states).states
            for n in (2, 3, 4)
        ]
        full = [17, 78, 341]
        assert all(r <= f for r, f in zip(reduced, full))
        assert reduced[2] / reduced[1] > 3  # still exponential

    @pytest.mark.parametrize("n", GPO_SIZES)
    def test_gpo_constant_states_and_deadlock(self, n):
        result = gpo_analyze(nsdp(n))
        assert result.states == 2
        assert result.deadlock

    def test_all_analyzers_agree_on_verdict(self):
        net = nsdp(3)
        assert full_analyze(net).deadlock
        assert stubborn_analyze(net).deadlock
        assert symbolic_analyze(net).deadlock
        assert gpo_analyze(net).deadlock


@pytest.mark.parametrize("n", [2, 4])
def test_bench_full(benchmark, n, bench_max_states):
    benchmark(lambda: full_analyze(nsdp(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", [2, 4, 6])
def test_bench_stubborn(benchmark, n, bench_max_states):
    benchmark(lambda: stubborn_analyze(nsdp(n), max_states=bench_max_states))


@pytest.mark.parametrize("n", [2, 4, 6])
def test_bench_symbolic(benchmark, n):
    benchmark(lambda: symbolic_analyze(nsdp(n)))


@pytest.mark.parametrize("n", GPO_SIZES)
def test_bench_gpo(benchmark, n):
    result = benchmark(lambda: gpo_analyze(nsdp(n)))
    assert result.states == 2
